"""Tests for the bloom filter and LSM tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.bloom import BloomFilter
from repro.storage.lsm import LsmTree, SSTable
from repro.storage.object_store import ObjectStore


class TestBloomFilter:
    def test_no_false_negatives(self, rng):
        bloom = BloomFilter(capacity=500)
        keys = [f"key-{i}" for i in range(500)]
        for key in keys:
            bloom.add(key)
        assert all(bloom.might_contain(k) for k in keys)

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter(capacity=1000, fp_rate=0.01)
        for i in range(1000):
            bloom.add(f"in-{i}")
        fps = sum(bloom.might_contain(f"out-{i}") for i in range(2000))
        assert fps / 2000 < 0.05  # some slack over the 1% target

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(capacity=10)
        assert not bloom.might_contain("anything")

    def test_serialization_roundtrip(self):
        bloom = BloomFilter(capacity=100)
        for i in range(100):
            bloom.add(f"k{i}")
        again = BloomFilter.from_bytes(bloom.to_bytes())
        assert all(again.might_contain(f"k{i}") for i in range(100))
        assert len(again) == 100

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BloomFilter(0)
        with pytest.raises(ValueError):
            BloomFilter(10, fp_rate=1.5)

    @given(st.sets(st.binary(min_size=1, max_size=20), min_size=1,
                   max_size=100))
    @settings(max_examples=25)
    def test_no_false_negatives_property(self, keys):
        bloom = BloomFilter(capacity=len(keys))
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)


class TestSSTable:
    def test_point_lookup(self):
        table = SSTable([(b"a", b"1"), (b"c", b"3")])
        assert table.get(b"a") == b"1"
        assert table.get(b"b") is None
        assert table.min_key == b"a" and table.max_key == b"c"

    def test_requires_sorted_unique(self):
        with pytest.raises(ValueError):
            SSTable([(b"b", b"1"), (b"a", b"2")])
        with pytest.raises(ValueError):
            SSTable([(b"a", b"1"), (b"a", b"2")])

    def test_serialization_roundtrip(self):
        entries = [(f"k{i:03d}".encode(), f"v{i}".encode())
                   for i in range(50)]
        table = SSTable(entries)
        again = SSTable.from_bytes(table.to_bytes())
        assert list(again.items()) == entries
        assert again.get(b"k025") == b"v25"


class TestLsmTree:
    def test_put_get(self):
        tree = LsmTree(memtable_limit=4)
        tree.put("a", "1")
        assert tree.get("a") == b"1"
        assert tree.get("missing") is None

    def test_overwrite(self):
        tree = LsmTree(memtable_limit=100)
        tree.put("k", "old")
        tree.put("k", "new")
        assert tree.get("k") == b"new"

    def test_delete_tombstone(self):
        tree = LsmTree(memtable_limit=2)  # force flushes
        tree.put("a", "1")
        tree.put("b", "2")  # flush happens here
        tree.delete("a")
        tree.put("c", "3")  # another flush
        assert tree.get("a") is None
        assert "a" not in tree
        assert tree.get("b") == b"2"

    def test_flush_on_limit(self):
        tree = LsmTree(memtable_limit=3)
        for i in range(9):
            tree.put(f"k{i}", f"v{i}")
        assert tree.num_tables == 3
        assert all(tree.get(f"k{i}") == f"v{i}".encode() for i in range(9))

    def test_newest_version_wins_across_tables(self):
        tree = LsmTree(memtable_limit=2)
        tree.put("x", "v1")
        tree.put("pad1", "p")
        tree.put("x", "v2")
        tree.put("pad2", "p")
        assert tree.get("x") == b"v2"

    def test_items_merged_sorted_live(self):
        tree = LsmTree(memtable_limit=3)
        for i in range(10):
            tree.put(f"k{i}", f"v{i}")
        tree.delete("k4")
        items = list(tree.items())
        keys = [k for k, _ in items]
        assert keys == sorted(keys)
        assert b"k4" not in keys
        assert len(tree) == 9

    def test_compaction_preserves_data(self):
        tree = LsmTree(memtable_limit=2)
        for i in range(10):
            tree.put(f"k{i}", f"v{i}")
        tree.delete("k0")
        tree.compact()
        assert tree.num_tables == 1
        assert tree.get("k0") is None
        assert tree.get("k9") == b"v9"

    def test_persistence_and_recovery(self):
        store = ObjectStore()
        tree = LsmTree(memtable_limit=2, store=store, store_prefix="map")
        for i in range(7):
            tree.put(f"k{i}", f"v{i}")
        tree.flush()
        fresh = LsmTree(memtable_limit=2, store=store, store_prefix="map")
        fresh.recover()
        assert all(fresh.get(f"k{i}") == f"v{i}".encode()
                   for i in range(7))

    def test_compaction_cleans_store(self):
        store = ObjectStore()
        tree = LsmTree(memtable_limit=2, store=store, store_prefix="map")
        for i in range(8):
            tree.put(f"k{i}", f"v{i}")
        assert len(store.list("map/")) >= 4
        tree.compact()
        assert len(store.list("map/")) == 1

    def test_tombstone_value_collision_rejected(self):
        tree = LsmTree()
        with pytest.raises(ValueError):
            tree.put("k", b"\x00__tombstone__")

    @given(st.lists(st.tuples(st.sampled_from(["put", "delete"]),
                              st.integers(0, 30),
                              st.integers(0, 5)),
                    max_size=200))
    @settings(max_examples=50)
    def test_model_based_against_dict(self, ops):
        """The LSM tree behaves exactly like a dict under put/delete."""
        tree = LsmTree(memtable_limit=4)
        model: dict[bytes, bytes] = {}
        for op, key_n, val_n in ops:
            key = f"key-{key_n}".encode()
            if op == "put":
                value = f"val-{val_n}".encode()
                tree.put(key, value)
                model[key] = value
            else:
                tree.delete(key)
                model.pop(key, None)
        for key_n in range(31):
            key = f"key-{key_n}".encode()
            assert tree.get(key) == model.get(key)
        assert dict(tree.items()) == model
