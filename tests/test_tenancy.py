"""Tests for the multi-tenant serving layer.

Covers the three tentpole pieces end to end:

* **registry + namespacing** — tenants own ``tenant::collection``
  physical names, resolution authorizes access, state round-trips
  through the checkpoint dict format;
* **QoS quotas** — virtual-time token buckets at the proxy, with
  :class:`QuotaExceeded` distinct from cluster overload and gold-first
  dispatch ordering;
* **fenced rebalancing** — hot-shard detection from per-channel
  telemetry, split/migrate planning, and fenced execution that loses
  no write, duplicates none, and leaves search results hit-for-hit
  identical.
"""

import numpy as np
import pytest

from repro.cluster.manu import ManuCluster
from repro.core.consistency import ConsistencyLevel
from repro.core.schema import CollectionSchema, DataType, FieldSchema
from repro.errors import (
    ClusterStateError,
    FencedWriteError,
    ManuError,
    QuotaExceeded,
    TenantAlreadyExists,
    TenantError,
    TenantNotFound,
)
from repro.storage.object_store import MemoryBackend
from repro.tenancy import (
    AdmissionController,
    Move,
    QosClass,
    TenantDirectory,
    TenantQuota,
    TenantRegistry,
    TokenBucket,
    physical_name,
    split_physical,
)
from repro.tenancy.rebalancer import parse_channel

DIM = 8


def _schema() -> CollectionSchema:
    return CollectionSchema([
        FieldSchema("pk", DataType.INT64, is_primary=True),
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=DIM),
    ])


def _vectors(rng, n):
    return rng.standard_normal((n, DIM)).astype(np.float32)


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=5.0, now_ms=0.0)
        assert bucket.try_acquire(0.0, 5.0)
        assert not bucket.try_acquire(0.0, 1.0)

    def test_refills_on_virtual_time(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=5.0, now_ms=0.0)
        assert bucket.try_acquire(0.0, 5.0)
        # 10 tokens/s -> 1 token per 100 virtual ms.
        assert not bucket.try_acquire(50.0, 1.0)
        assert bucket.try_acquire(100.0, 1.0)

    def test_burst_caps_accumulation(self):
        bucket = TokenBucket(rate_per_s=1000.0, burst=3.0, now_ms=0.0)
        assert bucket.available(60_000.0) == pytest.approx(3.0)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=1.0, burst=0.0)


class TestTenantRegistry:
    def test_create_and_namespace(self):
        registry = TenantRegistry()
        registry.create("acme", qos="gold")
        physical = registry.register_collection("acme", "products")
        assert physical == "acme::products"
        assert registry.resolve("acme", "products") == physical
        assert split_physical(physical) == ("acme", "products")

    def test_duplicate_and_invalid_names(self):
        registry = TenantRegistry()
        registry.create("acme")
        with pytest.raises(TenantAlreadyExists):
            registry.create("acme")
        with pytest.raises(TenantError):
            registry.create("a::b")
        with pytest.raises(TenantError):
            registry.create("")

    def test_cross_tenant_access_rejected(self):
        registry = TenantRegistry()
        registry.create("acme")
        registry.create("evil")
        registry.register_collection("acme", "products")
        with pytest.raises(TenantError):
            registry.resolve("evil", "acme::products")
        with pytest.raises(TenantError):
            registry.resolve("evil", "products")  # not registered

    def test_unknown_tenant_raises(self):
        registry = TenantRegistry()
        with pytest.raises(TenantNotFound):
            registry.get("ghost")
        with pytest.raises(TenantNotFound):
            registry.resolve("ghost", "anything")

    def test_qos_ordering_and_weights(self):
        assert QosClass.GOLD.priority < QosClass.SILVER.priority \
            < QosClass.BRONZE.priority
        assert QosClass.GOLD.default_weight > QosClass.BRONZE.default_weight

    def test_round_trip(self):
        registry = TenantRegistry()
        registry.create("acme", qos="gold",
                        quota=TenantQuota(insert_rows_per_s=100.0,
                                          search_qps=10.0, burst_s=2.0))
        registry.register_collection("acme", "products")
        registry.create("beta", qos="bronze")
        restored = TenantRegistry.from_dict(registry.to_dict())
        assert restored.tenant_names == ["acme", "beta"]
        acme = restored.get("acme")
        assert acme.qos is QosClass.GOLD
        assert acme.quota.search_qps == 10.0
        assert acme.quota.burst_s == 2.0
        assert acme.collections == {"products"}


class TestTenantDirectory:
    def test_fence_epoch_monotone(self):
        directory = TenantDirectory()
        assert directory.fence_epoch("c", 0) == 0
        assert directory.bump_fence("c", 0) == 1
        assert directory.bump_fence("c", 0) == 2
        assert directory.fence_epoch("c", 1) == 0

    def test_bucket_overrides(self):
        directory = TenantDirectory()
        assert directory.bucket_override("c/shard-0") is None
        directory.set_bucket_override("c/shard-0", "logger-1")
        assert directory.bucket_override("c/shard-0") == "logger-1"
        assert directory.clear_overrides_for("logger-1") == ["c/shard-0"]
        assert directory.bucket_override("c/shard-0") is None

    def test_drop_collection_cleans_all_state(self):
        directory = TenantDirectory()
        directory.place_collection("t::c", 2)
        directory.set_bucket_override("t::c/shard-0", "logger-1")
        directory.bump_fence("t::c", 1)
        directory.pin_serving("wal/t::c/shard-0", "qn-0")
        directory.drop_collection("t::c")
        assert directory.num_shards("t::c") == 0
        assert directory.bucket_override("t::c/shard-0") is None
        assert directory.fence_epoch("t::c", 1) == 0
        assert directory.serving_node("wal/t::c/shard-0") is None

    def test_round_trip(self):
        directory = TenantDirectory()
        directory.place_collection("t::c", 2)
        directory.set_bucket_override("t::c/shard-1", "logger-0")
        directory.bump_fence("t::c", 1)
        directory.pin_serving("wal/t::c/shard-1", "qn-2")
        restored = TenantDirectory.from_dict(directory.to_dict())
        assert restored.num_shards("t::c") == 2
        assert restored.bucket_override("t::c/shard-1") == "logger-0"
        assert restored.fence_epoch("t::c", 1) == 1
        assert restored.serving_node("wal/t::c/shard-1") == "qn-2"


class TestAdmissionController:
    def _make(self, clock):
        registry = TenantRegistry()
        registry.create("gold", qos="gold",
                        quota=TenantQuota(search_qps=2.0, burst_s=1.0))
        registry.create("bronze", qos="bronze",
                        quota=TenantQuota(search_qps=2.0, burst_s=1.0))
        registry.create("free", qos="silver")  # unmetered
        return registry, AdmissionController(registry, clock)

    def test_quota_exceeded_is_not_cluster_overload(self):
        _, admission = self._make(lambda: 0.0)
        admission.admit("gold", "search")
        admission.admit("gold", "search")
        with pytest.raises(QuotaExceeded) as excinfo:
            admission.admit("gold", "search")
        # Distinct failure domain: quota rejections must never be
        # mistaken for failover-worthy cluster overload.
        assert not isinstance(excinfo.value, ClusterStateError)
        assert admission.rejections[("gold", "search")] == 1

    def test_unmetered_always_admits(self):
        _, admission = self._make(lambda: 0.0)
        for _ in range(1000):
            admission.admit("free", "search")

    def test_bucket_tracks_quota_change(self):
        registry, admission = self._make(lambda: 0.0)
        admission.admit("gold", "search", units=2.0)
        with pytest.raises(QuotaExceeded):
            admission.admit("gold", "search")
        registry.set_quota("gold", TenantQuota(search_qps=100.0))
        admission.admit("gold", "search", units=50.0)  # fresh bucket

    def test_admission_order_is_qos_then_name(self):
        _, admission = self._make(lambda: 0.0)
        assert admission.admission_order(["bronze", "free", "gold"]) == \
            ["gold", "free", "bronze"]

    def test_priority_exposed(self):
        _, admission = self._make(lambda: 0.0)
        assert admission.priority("gold") == 0
        assert admission.priority("bronze") == 2


class TestTenantProxyIntegration:
    def _cluster(self, **kwargs):
        return ManuCluster(num_query_nodes=2, num_loggers=2, **kwargs)

    def test_namespace_isolation_between_tenants(self):
        cluster = self._cluster()
        rng = np.random.default_rng(7)
        cluster.create_tenant("a")
        cluster.create_tenant("b")
        for tenant, rows in (("a", 12), ("b", 20)):
            physical = cluster.tenant_create_collection(
                tenant, "items", _schema())
            cluster.insert(physical, {
                "pk": list(range(rows)),
                "vector": _vectors(rng, rows)}, tenant=tenant)
        cluster.run_for(300)
        assert cluster.collection_row_count("a::items") == 12
        assert cluster.collection_row_count("b::items") == 20
        # A tenant cannot reach the other's data, by any spelling.
        with pytest.raises(TenantError):
            cluster.search("b::items", _vectors(rng, 1)[0], 1, tenant="a")
        with pytest.raises(TenantError):
            cluster.get("b::items", [0], tenant="a")

    def test_quota_rejection_and_metrics(self):
        cluster = self._cluster()
        rng = np.random.default_rng(8)
        cluster.create_tenant(
            "metered", quota=TenantQuota(search_qps=5.0, burst_s=1.0))
        physical = cluster.tenant_create_collection(
            "metered", "items", _schema())
        cluster.insert(physical, {"pk": list(range(10)),
                                  "vector": _vectors(rng, 10)},
                       tenant="metered")
        cluster.run_for(300)
        served = rejected = 0
        for _ in range(20):
            try:
                cluster.search(physical, _vectors(rng, 1)[0], 1,
                               tenant="metered")
                served += 1
            except QuotaExceeded:
                rejected += 1
        assert served >= 5  # burst capacity honoured
        assert rejected > 0
        rejections = cluster.metrics.counter_family(
            "tenant_quota_rejections_total", ("tenant", "verb"))
        assert rejections.labels(tenant="metered",
                                 verb="search").value == rejected
        requests = cluster.metrics.counter_family(
            "tenant_requests_total", ("tenant", "qos", "verb"))
        assert requests.labels(tenant="metered", qos="silver",
                               verb="search").value == served

    def test_insert_quota_counts_rows(self):
        cluster = self._cluster()
        rng = np.random.default_rng(9)
        cluster.create_tenant(
            "writer", quota=TenantQuota(insert_rows_per_s=50.0,
                                        burst_s=1.0))
        physical = cluster.tenant_create_collection(
            "writer", "items", _schema())
        cluster.insert(physical, {"pk": list(range(50)),
                                  "vector": _vectors(rng, 50)},
                       tenant="writer")
        with pytest.raises(QuotaExceeded):
            cluster.insert(physical, {"pk": [50],
                                      "vector": _vectors(rng, 1)},
                           tenant="writer")
        # Refill restores admission on the virtual clock.
        cluster.run_for(1_000)
        cluster.insert(physical, {"pk": list(range(100, 110)),
                                  "vector": _vectors(rng, 10)},
                       tenant="writer")

    def test_unknown_tenant_rejected_at_the_boundary(self):
        cluster = self._cluster()
        with pytest.raises(TenantNotFound):
            cluster.insert("ghost::c", {"pk": [1]}, tenant="ghost")

    def test_tenant_shard_count_gauge(self):
        cluster = self._cluster()
        cluster.create_tenant("acme")
        cluster.tenant_create_collection("acme", "one", _schema())
        cluster.tenant_create_collection("acme", "two", _schema())
        cluster.sample_telemetry()
        family = cluster.metrics.gauge_family("tenant_shard_count",
                                              ("tenant",))
        assert family.labels(tenant="acme").value == \
            2 * cluster.config.log.num_shards


class TestLoggerFencing:
    def test_stale_logger_handle_is_fenced(self):
        cluster = ManuCluster(num_query_nodes=2, num_loggers=2)
        rng = np.random.default_rng(10)
        cluster.create_collection("c", _schema())
        cluster.insert("c", {"pk": list(range(8)),
                             "vector": _vectors(rng, 8)})
        cluster.run_for(200)
        service = cluster.logger_service
        shard = 0
        old_name = service.owner_name("c", shard)
        stale = service.logger_for_shard("c", shard)
        other = next(n for n in service.logger_names if n != old_name)
        # Fence, then move the bucket: exactly the rebalancer's order.
        cluster.directory.bump_fence("c", shard)
        cluster.directory.set_bucket_override(f"c/shard-{shard}", other)
        assert service.owner_name("c", shard) == other
        with pytest.raises(FencedWriteError):
            stale.publish_delete("c", shard, (0,),
                                 service._mapping("c", shard))
        # The service itself routes to the new owner and keeps working.
        cluster.insert("c", {"pk": [100],
                             "vector": _vectors(rng, 1)})
        cluster.run_for(200)
        assert cluster.collection_row_count("c") == 9

    def test_override_ignored_when_logger_dies(self):
        cluster = ManuCluster(num_query_nodes=2, num_loggers=2)
        cluster.create_collection("c", _schema())
        names = cluster.logger_service.logger_names
        cluster.directory.set_bucket_override("c/shard-0", names[1])
        cluster.fail_logger(names[1])
        # The override was cleared and the ring re-placed the bucket.
        assert cluster.directory.bucket_override("c/shard-0") is None
        assert cluster.logger_service.owner_name("c", 0) == names[0]


class TestRebalancer:
    def _loaded_cluster(self, rng, collections=("a::x", "b::x", "c::x"),
                        rows=48):
        cluster = ManuCluster(num_query_nodes=4, num_loggers=2)
        for name in collections:
            cluster.create_collection(name, _schema())
            cluster.insert(name, {
                "pk": list(range(rows)),
                "vector": _vectors(rng, rows)})
        cluster.run_for(400)
        return cluster

    def test_detects_round_robin_bunching(self):
        rng = np.random.default_rng(11)
        cluster = self._loaded_cluster(rng)
        report = cluster.rebalancer.serving_report()
        # Round-robin placement stacks every collection's shard-k on
        # the same node: with 2 shards and 4 nodes, two nodes idle.
        assert report.imbalance >= 2.0
        moves = cluster.rebalancer.plan_serving()
        assert moves
        assert all(move.scope == "serving" for move in moves)
        assert all(move.kind in ("split", "migrate") for move in moves)

    def test_split_when_bunched_shards_spread(self):
        """Both shards of a collection on one node -> the first move
        that un-bunches them is classified as a split."""

        class Bunched:
            node_names = ["qn-0", "qn-1"]

            def channel_owners(self):
                return {"wal/hot/shard-0": "qn-0",
                        "wal/hot/shard-1": "qn-0"}

            def migrate_channel(self, channel, target):
                return 0

        rng = np.random.default_rng(99)
        cluster = ManuCluster(num_query_nodes=2, num_loggers=2)
        cluster.create_collection("hot", _schema())
        cluster.insert("hot", {"pk": list(range(16)),
                               "vector": _vectors(rng, 16)})
        cluster.run_for(200)
        cluster.rebalancer.serving = Bunched()
        moves = cluster.rebalancer.plan_serving()
        assert moves
        assert moves[0].kind == "split"

    def test_execute_preserves_results_exactly(self):
        rng = np.random.default_rng(12)
        cluster = self._loaded_cluster(rng)
        probes = _vectors(rng, 6)

        def snapshot():
            out = []
            for name in ("a::x", "b::x", "c::x"):
                for probe in probes:
                    result = cluster.search(
                        name, probe, 5,
                        consistency=ConsistencyLevel.STRONG)[0]
                    out.append((name, tuple(result.pks),
                                tuple(np.round(result.distances, 4))))
            return out

        before = snapshot()
        moves = cluster.rebalancer.rebalance()
        assert moves
        cluster.run_for(500)
        after = snapshot()
        assert before == after  # hit-for-hit identical
        balanced = cluster.rebalancer.serving_report()
        assert balanced.imbalance < 2.0

    def test_moves_are_fenced_and_announced(self):
        rng = np.random.default_rng(13)
        cluster = self._loaded_cluster(rng)
        moves = cluster.rebalancer.rebalance()
        assert moves
        for move in moves:
            assert move.epoch >= 1
            assert cluster.directory.fence_epoch(
                move.collection, move.shard) >= move.epoch
        announced = [
            entry.payload.payload["channel"]
            for entry in cluster.broker.read(
                cluster.config.log.coord_channel, 0)
            if getattr(entry.payload, "kind_name", "") == "shard_migrate"]
        assert announced == [move.channel for move in moves]

    def test_serving_move_updates_ownership(self):
        rng = np.random.default_rng(14)
        cluster = self._loaded_cluster(rng)
        owners_before = cluster.query_coord.channel_owners()
        moves = [m for m in cluster.rebalancer.rebalance()
                 if m.scope == "serving"]
        assert moves
        owners_after = cluster.query_coord.channel_owners()
        for move in moves:
            assert owners_before[move.channel] == move.src
            assert owners_after[move.channel] == move.dst
            assert cluster.directory.serving_node(move.channel) == move.dst

    def test_logging_move_loses_no_writes(self):
        rng = np.random.default_rng(15)
        cluster = ManuCluster(num_query_nodes=2, num_loggers=2)
        cluster.create_collection("c", _schema())
        cluster.insert("c", {"pk": list(range(30)),
                             "vector": _vectors(rng, 30)})
        cluster.run_for(300)
        shard = 0
        src = cluster.logger_service.owner_name("c", shard)
        dst = next(n for n in cluster.logger_service.logger_names
                   if n != src)
        move = cluster.rebalancer.execute(Move(
            kind="migrate", scope="logging", collection="c",
            shard=shard, channel=f"wal/c/shard-{shard}", src=src,
            dst=dst, load=1.0))
        assert move.epoch == 1
        # The handoff offset is stamped at fence time: everything the
        # channel held when the bucket moved sits below it.
        assert move.handoff_lsn == cluster.broker.end_offset(move.channel)
        assert cluster.logger_service.owner_name("c", shard) == dst
        # Writes keep landing, routed through the new owner.
        cluster.insert("c", {"pk": list(range(100, 130)),
                             "vector": _vectors(rng, 30)})
        cluster.run_for(300)
        assert cluster.collection_row_count("c") == 60

    def test_parse_channel_inverts_shard_channel(self):
        assert parse_channel("wal/a::x/shard-3") == ("a::x", 3)
        with pytest.raises(ValueError):
            parse_channel("wal/coord")


class TestTenancyPersistence:
    def test_state_survives_cluster_restart(self):
        backend = MemoryBackend()
        rng = np.random.default_rng(16)
        cluster = ManuCluster(num_query_nodes=4, num_loggers=2,
                              store_backend=backend)
        cluster.create_tenant("acme", qos="gold",
                              quota=TenantQuota(search_qps=10.0))
        for logical in ("items", "orders", "users"):
            name = cluster.tenant_create_collection(
                "acme", logical, _schema())
            cluster.insert(name, {"pk": list(range(32)),
                                  "vector": _vectors(rng, 32)},
                           tenant="acme")
        physical = cluster.tenants.resolve("acme", "items")
        cluster.run_for(300)
        moves = cluster.rebalance_tenants()
        assert moves
        fences = {(m.collection, m.shard):
                  cluster.directory.fence_epoch(m.collection, m.shard)
                  for m in moves}

        revived = ManuCluster(num_query_nodes=4, num_loggers=2,
                              store_backend=backend)
        assert revived.tenants.tenant_names == ["acme"]
        info = revived.tenants.get("acme")
        assert info.qos is QosClass.GOLD
        assert info.quota.search_qps == 10.0
        assert revived.tenants.resolve("acme", "items") == physical
        # Fence epochs recover: no shard is ever un-fenced by a crash.
        for (coll, shard), epoch in fences.items():
            assert revived.directory.fence_epoch(coll, shard) == epoch
        assert revived.directory.bucket_overrides == \
            cluster.directory.bucket_overrides


class TestQosDispatchOrder:
    def test_gold_batches_flush_before_bronze(self):
        from repro.config import ManuConfig, QueryConfig
        cluster = ManuCluster(
            config=ManuConfig(query=QueryConfig(batch_window_ms=50.0)),
            num_query_nodes=2, num_loggers=2)
        rng = np.random.default_rng(17)
        cluster.create_tenant("au", qos="gold")
        cluster.create_tenant("zn", qos="bronze")
        order = []
        for tenant in ("au", "zn"):
            physical = cluster.tenant_create_collection(
                tenant, "items", _schema())
            cluster.insert(physical, {"pk": list(range(8)),
                                      "vector": _vectors(rng, 8)},
                           tenant=tenant)
        cluster.run_for(300)
        proxy = cluster.proxies[0]
        # Submit bronze first: QoS order, not submission order, wins.
        for tenant, name in (("zn", "zn::items"), ("au", "au::items")):
            proxy.submit_search(name, _vectors(rng, 1), 2,
                                tenant=tenant)
        original = proxy._flush_batch

        def recording(key):
            order.append(key[0])
            return original(key)

        proxy._flush_batch = recording
        proxy.flush_batches()
        assert order == ["au::items", "zn::items"]
