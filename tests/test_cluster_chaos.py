"""Chaos test: random cluster operations validated against a model.

A seeded random schedule of inserts, deletes, flushes, compactions,
query-node failures, scale-ups/downs, logger churn and index builds runs
against the full cluster, while a plain dict tracks the expected live
entities.  After every step the cluster must agree with the model on:

* the live row count;
* exact top-1 search for a randomly chosen live entity's own vector
  (strong consistency);
* absence of deleted entities from results.

This is the whole paper's machinery exercised under churn — handoff,
recovery, replay, bitmaps, compaction routing — with correctness defined
by a three-line model.
"""

import numpy as np
import pytest

from repro.cluster.manu import ManuCluster
from repro.config import ManuConfig, SegmentConfig
from repro.core.consistency import ConsistencyLevel
from repro.core.schema import CollectionSchema, DataType, FieldSchema, \
    MetricType

STEPS = 40


def _nearest(model: dict, query: np.ndarray) -> int:
    pks = sorted(model)
    vectors = np.stack([model[pk] for pk in pks])
    dists = ((vectors - query) ** 2).sum(axis=1)
    return pks[int(dists.argmin())]


@pytest.mark.parametrize("seed", [11, 23, 57])
def test_chaos_schedule_against_model(seed, monkeypatch):
    # MANU_CHECK: the broker asserts per-WAL-channel timestamp
    # monotonicity on every publish for the whole chaos run.
    monkeypatch.setenv("MANU_CHECK", "1")
    rng = np.random.default_rng(seed)
    config = ManuConfig(segment=SegmentConfig(
        seal_entity_count=64, slice_size=32, compaction_min_size=48,
        compaction_target_size=192))
    cluster = ManuCluster(config=config, num_query_nodes=2,
                          num_index_nodes=1, num_loggers=2)
    schema = CollectionSchema([
        FieldSchema("pk", DataType.INT64, is_primary=True),
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=12),
    ])
    cluster.create_collection("chaos", schema)
    cluster.create_index("chaos", "vector", "IVF_FLAT",
                         MetricType.EUCLIDEAN, {"nlist": 4, "nprobe": 4})

    model: dict[int, np.ndarray] = {}
    next_pk = 0
    logger_seq = 0

    def check():
        cluster.run_for(200)
        assert cluster.collection_row_count("chaos") == len(model)
        if model:
            probe = sorted(model)[int(rng.integers(len(model)))]
            result = cluster.search(
                "chaos", model[probe], 1,
                consistency=ConsistencyLevel.STRONG)[0]
            assert result.pks, "live data must be searchable"
            assert result.pks[0] == _nearest(model, model[probe])

    for step in range(STEPS):
        op = rng.choice(
            ["insert", "insert", "insert", "delete", "flush", "compact",
             "fail_node", "add_node", "remove_node", "logger_churn"],
        )
        if op == "insert":
            n = int(rng.integers(5, 40))
            pks = list(range(next_pk, next_pk + n))
            vectors = rng.standard_normal((n, 12)).astype(np.float32)
            cluster.insert("chaos", {"pk": pks, "vector": vectors})
            for pk, vec in zip(pks, vectors):
                model[pk] = vec
            next_pk += n
        elif op == "delete" and model:
            count = min(len(model), int(rng.integers(1, 6)))
            victims = [sorted(model)[int(i)] for i in
                       rng.choice(len(model), count, replace=False)]
            expr = "pk in [" + ", ".join(map(str, victims)) + "]"
            deleted = cluster.delete("chaos", expr)
            assert deleted == len(set(victims))
            for pk in victims:
                model.pop(pk)
        elif op == "flush":
            cluster.flush("chaos")
        elif op == "compact":
            cluster.flush("chaos")
            cluster.compact("chaos")
        elif op == "fail_node":
            if cluster.num_query_nodes > 1:
                names = cluster.query_coord.node_names
                cluster.fail_query_node(
                    names[int(rng.integers(len(names)))])
        elif op == "add_node":
            if cluster.num_query_nodes < 5:
                cluster.add_query_node()
        elif op == "remove_node":
            if cluster.num_query_nodes > 2:
                cluster.remove_query_node()
        elif op == "logger_churn":
            cluster.add_logger(f"chaos-logger-{logger_seq}")
            logger_seq += 1
            if len(cluster.logger_service.logger_names) > 3:
                victim = cluster.logger_service.logger_names[0]
                cluster.fail_logger(victim)
        check()

    # Final deep check: several probes and full-count agreement.
    cluster.run_for(500)
    assert cluster.collection_row_count("chaos") == len(model)
    for _ in range(5):
        if not model:
            break
        probe = sorted(model)[int(rng.integers(len(model)))]
        result = cluster.search("chaos", model[probe], 3,
                                consistency=ConsistencyLevel.STRONG)[0]
        assert result.pks[0] == _nearest(model, model[probe])
        assert all(pk in model for pk in result.pks)


def test_kill_query_node_fires_alert_with_flight_bundle():
    """Acceptance: killing a query node mid-workload flips its health to
    down within one heartbeat interval, fires the health alert, and the
    flight bundle captures the health map, non-zero per-channel lag
    gauges and at least one sampled trace.  The exposition endpoint must
    carry the lag and latency series throughout."""
    from repro.config import MonitoringConfig
    from repro.monitoring import HealthState, parse_exposition

    rng = np.random.default_rng(3)
    config = ManuConfig(monitoring=MonitoringConfig(
        telemetry_interval_ms=50.0,
        alert_rules=(("cluster-down", "component_health.max >= 2"),)))
    cluster = ManuCluster(config=config, num_query_nodes=2,
                          num_index_nodes=1)
    schema = CollectionSchema([
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=12)])
    cluster.create_collection("chaos", schema)
    cluster.insert("chaos", {
        "vector": rng.standard_normal((100, 12)).astype(np.float32)})
    cluster.run_for(300)
    cluster.search("chaos", rng.standard_normal(12).astype(np.float32),
                   5, consistency=ConsistencyLevel.STRONG)
    assert cluster.health.worst() is HealthState.HEALTHY
    assert cluster.alerts.firing() == []

    # Mid-workload: a fresh batch is still being delivered down the WAL
    # channels when the victim dies.
    cluster.insert("chaos", {
        "vector": rng.standard_normal((300, 12)).astype(np.float32)})
    victim = cluster.query_coord.node_names[0]
    heartbeat = cluster.health.heartbeat_interval_ms
    before = cluster.now()
    cluster.fail_query_node(victim)

    # The coordinator observed the failure: down immediately, well
    # within one heartbeat interval.
    assert cluster.health.state(f"query-node:{victim}") \
        is HealthState.DOWN
    assert cluster.now() - before < heartbeat

    # The next telemetry tick evaluates the rule and trips the recorder.
    cluster.run_for(100)
    assert "cluster-down" in cluster.alerts.firing()
    bundle = cluster.flight_recorder.last()
    assert bundle is not None
    assert bundle["reason"] == "alert:cluster-down"
    assert bundle["health"][f"query-node:{victim}"] == "down"
    lag_keys = {key: value for key, value in bundle["metrics"].items()
                if key.startswith("wal_subscriber_lag{")}
    assert lag_keys, "bundle must carry per-channel lag gauges"
    assert any(value > 0 for value in lag_keys.values()), \
        "handoff replay must show as non-zero subscriber lag"
    assert bundle["traces"], "bundle must include sampled traces"

    # The exposition still parses and carries the acceptance series.
    series = parse_exposition(
        cluster.metrics.expose_text(cluster.now()))
    assert ("search_latency_p99", ()) in series
    assert any(name == "wal_subscriber_lag"
               and any(key == "channel" for key, _ in labels)
               for name, labels in series)

    # The cluster still serves searches after recovery.
    cluster.run_for(500)
    result = cluster.search(
        "chaos", rng.standard_normal(12).astype(np.float32), 5,
        consistency=ConsistencyLevel.STRONG)[0]
    assert result.pks


def test_killed_node_trace_incomplete_retry_complete():
    """Spans of a query node killed mid-request are marked incomplete;
    the retried request produces a fresh, complete trace."""
    from repro.config import QueryConfig
    from repro.errors import ConsistencyTimeout
    from repro.tracing import SPAN_ERROR, SPAN_INCOMPLETE

    rng = np.random.default_rng(7)
    config = ManuConfig(query=QueryConfig(consistency_deadline_ms=400.0))
    cluster = ManuCluster(config=config, num_query_nodes=2,
                          num_index_nodes=1)
    schema = CollectionSchema([
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=12)])
    cluster.create_collection("chaos", schema)
    data = {"vector": rng.standard_normal((80, 12)).astype(np.float32)}
    cluster.insert("chaos", data)
    cluster.run_for(200)

    victim = cluster.query_coord.node_names[0]
    before = set(cluster.tracer.trace_ids())
    # The kill fires 1 virtual ms into the consistency wait, while the
    # victim still has an open wait span in the search's trace.
    cluster.loop.call_after(1.0, lambda: cluster.fail_query_node(victim))
    with pytest.raises(ConsistencyTimeout):
        cluster.search("chaos", data["vector"][0], 5,
                       consistency=ConsistencyLevel.STRONG)

    new = [t for t in cluster.tracer.trace_ids() if t not in before]
    assert len(new) == 1
    tid = new[0]
    root = cluster.tracer.root(tid)
    assert root.name == "proxy.search"
    assert root.status == SPAN_ERROR
    incomplete = [s for s in cluster.tracer.spans(tid)
                  if s.status == SPAN_INCOMPLETE]
    assert incomplete
    assert any(s.component == f"query-node:{victim}" for s in incomplete)
    assert not cluster.tracer.trace_complete(tid)

    # Recovery reassigned the victim's channels; the retry succeeds and
    # its trace is fully finished with no incomplete spans.
    before = set(cluster.tracer.trace_ids())
    result = cluster.search("chaos", data["vector"][0], 5,
                            consistency=ConsistencyLevel.STRONG)[0]
    retry = [t for t in cluster.tracer.trace_ids() if t not in before]
    assert len(retry) == 1
    assert result.pks
    assert cluster.tracer.trace_complete(retry[0])
    assert cluster.tracer.root(retry[0]).status == "ok"


def test_crash_point_recovery_converges_to_uncrashed_fingerprint():
    """manu-crash acceptance: kill a query node at a seeded crash point
    mid-scenario; the survivors recover via checkpointed binlogs plus
    per-channel WAL replay from recorded flushed offsets, and the
    client-observable fingerprint matches the uncrashed run exactly."""
    from repro.race.runner import (
        cluster_fingerprint,
        diff_fingerprints,
        run_chaos_scenario,
    )
    from repro.sim.clock import FIFO_POLICY

    baseline_cluster, baseline_model = run_chaos_scenario(
        FIFO_POLICY, steps=12)
    baseline_fp = cluster_fingerprint(baseline_cluster, baseline_model)

    crashed_cluster, crashed_model = run_chaos_scenario(
        FIFO_POLICY, steps=12, crash_step=7)
    # The crash consumed nothing from the scenario RNG: both runs saw
    # the identical operation stream.
    assert sorted(crashed_model) == sorted(baseline_model)
    crashed_fp = cluster_fingerprint(crashed_cluster, crashed_model)
    assert diff_fingerprints(baseline_fp, crashed_fp) == []


def test_crash_with_pending_commit_group_loses_unacked_rows_only(
        monkeypatch):
    """Group-commit durability contract at a crash point: rows buffered
    in an open commit group are neither durable nor acked, so a crash
    while the group is pending must leave them invisible after recovery
    — and their AckFuture unresolved.  Once the commit window fires the
    batch publishes, the future resolves with the batch LSN, and the
    rows appear."""
    from repro.config import LogConfig
    from repro.errors import ClusterStateError

    monkeypatch.setenv("MANU_CHECK", "1")
    rng = np.random.default_rng(5)
    # Bounds no sync path can trip: only the (long) window flushes.
    config = ManuConfig(
        segment=SegmentConfig(seal_entity_count=64, slice_size=32,
                              compaction_min_size=48,
                              compaction_target_size=192),
        log=LogConfig(group_commit_rows=10_000,
                      group_commit_bytes=1 << 30,
                      group_commit_window_ms=5_000.0))
    cluster = ManuCluster(config=config, num_query_nodes=2,
                          num_index_nodes=1, num_loggers=2)
    schema = CollectionSchema([
        FieldSchema("pk", DataType.INT64, is_primary=True),
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=12),
    ])
    cluster.create_collection("chaos", schema)

    # Durable, acked baseline (sync insert flushes its group inline).
    cluster.insert("chaos", {
        "pk": list(range(100)),
        "vector": rng.standard_normal((100, 12)).astype(np.float32)})
    cluster.run_for(300)
    assert cluster.collection_row_count("chaos") == 100

    # Buffered-but-unacked rows at the crash tick: nothing published.
    pks, ack = cluster.insert_async("chaos", {
        "pk": list(range(100, 140)),
        "vector": rng.standard_normal((40, 12)).astype(np.float32)})
    assert len(pks) == 40
    assert not ack.done
    assert cluster.logger_service.pending_group_rows() == 40
    with pytest.raises(ClusterStateError):
        ack.result()

    victim = cluster.query_coord.node_names[0]
    cluster.fail_query_node(victim)
    cluster.run_for(200)
    # Handoff replayed the WAL from recorded offsets: every *acked* row
    # survives, the pending group's rows do not exist anywhere yet.
    assert cluster.collection_row_count("chaos") == 100
    assert not ack.done
    assert cluster.logger_service.pending_group_rows() == 40

    # The commit window fires: one coalesced batch publish, the ack
    # resolves with its LSN, and the rows become visible.
    cluster.run_for(10_000)
    assert ack.done
    assert ack.rows == 40
    assert ack.result() > 0
    assert cluster.logger_service.pending_group_rows() == 0
    assert cluster.collection_row_count("chaos") == 140


def _migration_workload(crash_mid_migration: bool):
    """One deterministic workload around a fenced serving migration.

    Returns the client-observable fingerprint: live row count plus
    strong top-3 searches for a fixed probe set.  With
    ``crash_mid_migration`` the migration *target* is killed right
    after the fenced handoff, before replay settles — the worst moment:
    the fence epoch is bumped, ownership moved, the new owner mid-replay.
    """
    rng = np.random.default_rng(77)
    cluster = ManuCluster(num_query_nodes=4, num_index_nodes=1,
                          num_loggers=2)
    schema = CollectionSchema([
        FieldSchema("pk", DataType.INT64, is_primary=True),
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=12),
    ])
    for name in ("mig-a", "mig-b", "mig-c"):
        cluster.create_collection(name, schema)
        cluster.insert(name, {
            "pk": list(range(48)),
            "vector": rng.standard_normal((48, 12)).astype(np.float32)})
    cluster.run_for(400)

    moves = cluster.rebalancer.rebalance()
    assert moves, "skewed round-robin placement must trigger moves"
    if crash_mid_migration:
        victim = next(m.dst for m in moves if m.scope == "serving")
        cluster.fail_query_node(victim)

    # Post-migration writes: they must land exactly once whichever
    # node ends up owning the channel.
    for name in ("mig-a", "mig-b", "mig-c"):
        cluster.insert(name, {
            "pk": list(range(100, 116)),
            "vector": rng.standard_normal((16, 12)).astype(np.float32)})
    cluster.run_for(2_000)

    probes = rng.standard_normal((5, 12)).astype(np.float32)
    fingerprint = []
    for name in ("mig-a", "mig-b", "mig-c"):
        fingerprint.append((name, cluster.collection_row_count(name)))
        for probe in probes:
            result = cluster.search(
                name, probe, 3,
                consistency=ConsistencyLevel.STRONG)[0]
            fingerprint.append(
                (name, tuple(result.pks),
                 tuple(np.round(result.distances, 4))))
    return cluster, fingerprint


def test_crash_mid_migration_converges_to_uncrashed_fingerprint(
        monkeypatch):
    """Fenced rebalancing survives losing the migration target: the
    coordinator re-homes the fenced channel, replay from the recorded
    offsets is idempotent (per-segment LSN watermark), and the
    client-observable state is identical to the run with no crash —
    no write lost, none duplicated."""
    monkeypatch.setenv("MANU_CHECK", "1")
    baseline_cluster, baseline_fp = _migration_workload(
        crash_mid_migration=False)
    crashed_cluster, crashed_fp = _migration_workload(
        crash_mid_migration=True)
    assert crashed_fp == baseline_fp
    # The fence history survives the crash: every executed move's epoch
    # is still current (or has advanced) in the directory.
    for move in crashed_cluster.rebalancer.moves_executed:
        assert crashed_cluster.directory.fence_epoch(
            move.collection, move.shard) >= move.epoch
