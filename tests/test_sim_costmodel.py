"""Tests for the operation cost model."""

import pytest

from repro.sim.costmodel import CostModel


@pytest.fixture
def cost() -> CostModel:
    return CostModel()


class TestDistanceCost:
    def test_linear_in_comparisons(self, cost):
        assert cost.distance_cost(2000, 64) == \
            pytest.approx(2 * cost.distance_cost(1000, 64))

    def test_linear_in_dim(self, cost):
        assert cost.distance_cost(1000, 128) == \
            pytest.approx(2 * cost.distance_cost(1000, 64))

    def test_quantized_faster(self, cost):
        slow = cost.distance_cost(1000, 64)
        fast = cost.distance_cost(1000, 64, quantized=True)
        assert fast == pytest.approx(slow / cost.quantized_speedup)

    def test_zero_work_free(self, cost):
        assert cost.distance_cost(0, 128) == 0.0


class TestStorageCosts:
    def test_object_read_has_floor_latency(self, cost):
        assert cost.object_read(0) == cost.object_store_latency_ms

    def test_object_read_scales_with_size(self, cost):
        small = cost.object_read(1024)
        large = cost.object_read(100 * 1024 * 1024)
        assert large > small
        expected = (cost.object_store_latency_ms
                    + 100.0 / cost.object_store_mb_per_ms)
        assert large == pytest.approx(expected)

    def test_ssd_cheaper_than_disk(self, cost):
        assert cost.ssd_read(100) < cost.disk_read(100)

    def test_write_mirrors_read(self, cost):
        assert cost.object_write(5000) == cost.object_read(5000)


class TestBuildCosts:
    def test_kmeans_linear_in_n(self, cost):
        assert cost.kmeans_build(2000, 64, 128) == \
            pytest.approx(2 * cost.kmeans_build(1000, 64, 128))

    def test_graph_build_superlinear(self, cost):
        # n log n growth: doubling n more than doubles cost.
        assert cost.graph_build(2000, 64) > 2 * cost.graph_build(1000, 64)

    def test_rpc_hop_positive(self, cost):
        assert cost.rpc_hop() > 0

    def test_merge_cost_grows_with_lists(self, cost):
        assert cost.topk_merge_cost(16, 50) > cost.topk_merge_cost(2, 50)


class TestCalibration:
    def test_calibrated_returns_positive_rate(self):
        model = CostModel.calibrated(sample_n=512, dim=32)
        assert model.mac_per_ms > 0
        # Other constants are preserved.
        assert model.rpc_latency_ms == CostModel().rpc_latency_ms
