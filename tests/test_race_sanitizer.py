"""Tests for the seeded schedule-shuffle sanitizer (manu-race dynamic head).

Covers the MANU_RACE arming contract, tie-break determinism (same seed ->
byte-identical schedule), the broker's reorder bounds (per-subscription
offset order survives any shuffle), a deliberately order-dependent toy
whose failure a pinned seed reproduces deterministically, and seed-pinned
regression sweeps over the real cluster's chaos scenario.
"""

from __future__ import annotations

import pytest

from repro.log.broker import LogBroker
from repro.race import run_race_sweep
from repro.sim.clock import (
    FIFO_POLICY,
    MANU_RACE_ENV,
    SchedulePolicy,
    ShuffledSchedulePolicy,
    race_seed,
    schedule_policy_from_env,
)
from repro.sim.events import EventLoop

#: Seed recorded as reproducing the same-tick order flip of the first two
#: scheduled events (seq 0 runs *after* seq 1).  Pinned: the SplitMix64
#: tie-break is platform-stable, so this must hold on every machine.
FLIP_SEED = 0

#: A seed that happens to preserve FIFO order for that same pair.
KEEP_SEED = 1


class TestRaceSeedParsing:
    def test_unset_and_empty_mean_unarmed(self, monkeypatch):
        monkeypatch.delenv(MANU_RACE_ENV, raising=False)
        assert race_seed() is None
        assert race_seed("") is None
        assert race_seed("  ") is None

    def test_fifo_is_an_explicit_no_op(self):
        assert race_seed("fifo") is None
        assert race_seed("FIFO") is None

    def test_integer_seeds_parse_in_any_base(self):
        assert race_seed("42") == 42
        assert race_seed("0") == 0
        assert race_seed("0x10") == 16
        assert race_seed("-7") == -7

    def test_garbage_raises(self):
        with pytest.raises(ValueError, match="MANU_RACE"):
            race_seed("banana")

    def test_policy_selection(self, monkeypatch):
        monkeypatch.delenv(MANU_RACE_ENV, raising=False)
        assert schedule_policy_from_env() is FIFO_POLICY
        armed = schedule_policy_from_env("99")
        assert isinstance(armed, ShuffledSchedulePolicy)
        assert armed.seed == 99

    def test_loop_defers_to_env(self, monkeypatch):
        monkeypatch.setenv(MANU_RACE_ENV, "123")
        loop = EventLoop()
        assert isinstance(loop.policy, ShuffledSchedulePolicy)
        assert loop.policy.seed == 123
        monkeypatch.delenv(MANU_RACE_ENV)
        assert EventLoop().policy is FIFO_POLICY


class TestFifoBaseline:
    def test_same_tick_events_run_in_scheduling_order(self):
        loop = EventLoop()
        order = []
        loop.call_at(10.0, lambda: order.append("a"))
        loop.call_at(10.0, lambda: order.append("b"))
        loop.call_at(10.0, lambda: order.append("c"))
        loop.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_fifo_policy_is_identity(self):
        policy = SchedulePolicy()
        assert [policy.tiebreak(i) for i in range(5)] == [0, 1, 2, 3, 4]
        assert policy.delivery_delay_ms(0.5, "sub", 3) == 0.5


class TestShuffleDeterminism:
    def _run_schedule(self, seed):
        loop = EventLoop(policy=ShuffledSchedulePolicy(seed))
        loop.schedule_log = []
        for i in range(20):
            # Four events per tick across five ticks: plenty of same-tick
            # collisions for the tie-break to permute.
            loop.call_at(float(i % 5), lambda: None, name=f"ev-{i}")
        loop.run_until_idle()
        return list(loop.schedule_log)

    def test_same_seed_same_schedule(self):
        assert self._run_schedule(7) == self._run_schedule(7)

    def test_different_seed_different_schedule(self):
        assert self._run_schedule(7) != self._run_schedule(8)

    def test_shuffle_permutes_within_a_tick_only(self):
        trace = self._run_schedule(7)
        times = [t for t, _, _ in trace]
        # Cross-tick time order is inviolable...
        assert times == sorted(times)
        # ...and every event still ran exactly once.
        assert sorted(name for _, _, name in trace) \
            == sorted(f"ev-{i}" for i in range(20))

    def test_delivery_jitter_stretches_never_shrinks(self):
        policy = ShuffledSchedulePolicy(7)
        for n in range(50):
            delay = policy.delivery_delay_ms(0.5, "sub-a", n)
            assert 0.5 <= delay < 1.0
        # Zero base delay stays zero: pull-mode pollers are untouched.
        assert policy.delivery_delay_ms(0.0, "sub-a", 1) == 0.0


class TestReorderBounds:
    def test_per_subscription_offset_order_survives_shuffle(self):
        loop = EventLoop(policy=ShuffledSchedulePolicy(3))
        broker = LogBroker(loop=loop, manu_check=True)
        broker.create_channel("wal/c/shard-0")
        seen = {"a": [], "b": []}
        broker.subscribe("wal/c/shard-0", "sub-a", 0,
                         callback=lambda e: seen["a"].append(e.offset))
        broker.subscribe("wal/c/shard-0", "sub-b", 0,
                         callback=lambda e: seen["b"].append(e.offset))
        for i in range(30):
            broker.publish("wal/c/shard-0", f"row-{i}")
            if i % 5 == 0:
                loop.run_for(1.0)
        loop.run_until_idle()
        # Jitter may interleave *which* subscriber's flush lands first,
        # but each subscription consumes its channel strictly in offset
        # order — the reorder bound the paper's delta consistency needs.
        assert seen["a"] == sorted(seen["a"]) == list(range(30))
        assert seen["b"] == sorted(seen["b"]) == list(range(30))


class OrderDependentToy:
    """A deliberately buggy component: last same-tick writer wins.

    Two sources race to set ``winner`` at the same virtual tick without
    an ordering edge between them — exactly the shape the static
    raceorder-shared-state rule flags, reproduced dynamically here.
    """

    def __init__(self, loop: EventLoop) -> None:
        self.winner = None
        loop.call_at(10.0, self._from_data_path)
        loop.call_at(10.0, self._from_control_path)

    def _from_data_path(self) -> None:
        self.winner = "data"

    # manu-lint: disable=raceorder-shared-state -- the race is the point:
    # this toy exists so a pinned MANU_RACE seed can reproduce the flip.
    def _from_control_path(self) -> None:
        self.winner = "control"


class TestOrderDependenceReproduction:
    def test_fifo_hides_the_bug(self):
        loop = EventLoop(policy=FIFO_POLICY)
        toy = OrderDependentToy(loop)
        loop.run_until_idle()
        assert toy.winner == "control"

    def test_pinned_seed_reproduces_the_flip(self, monkeypatch):
        # MANU_RACE=<FLIP_SEED> deterministically reproduces the recorded
        # order-dependent failure: the data-path write lands last.
        monkeypatch.setenv(MANU_RACE_ENV, str(FLIP_SEED))
        for _ in range(3):  # deterministic across repeated runs
            loop = EventLoop()
            toy = OrderDependentToy(loop)
            loop.run_until_idle()
            assert toy.winner == "data"

    def test_other_seed_happens_to_keep_fifo_order(self):
        loop = EventLoop(policy=ShuffledSchedulePolicy(KEEP_SEED))
        toy = OrderDependentToy(loop)
        loop.run_until_idle()
        assert toy.winner == "control"


class TestRaceSweep:
    def test_sweep_over_real_cluster_is_schedule_invariant(self):
        # Seed-pinned regression for the parked-seal protocol and friends:
        # the full chaos scenario must fingerprint identically under FIFO
        # and shuffled schedules.  Seeds chosen to include FLIP_SEED (the
        # one known to reorder the earliest same-tick pair).
        report = run_race_sweep([FLIP_SEED, 7], steps=10)
        assert report.baseline.error is None
        assert report.divergent == {}
        assert report.ok

    def test_sweep_report_shape(self):
        report = run_race_sweep([5], steps=4)
        data = report.to_dict()
        assert data["ok"] is True
        assert data["baseline"]["label"] == "fifo"
        assert data["seeds"][0]["label"] == "seed=5"
        assert data["seeds"][0]["divergences"] == []

    def test_trace_capture_for_artifact_upload(self):
        report = run_race_sweep([5], steps=3, trace=True)
        assert report.baseline.schedule_trace
        time_col = [t for t, _, _ in report.baseline.schedule_trace]
        assert time_col == sorted(time_col)
