"""Tests for get/upsert/range search and the RESTful API."""

import numpy as np
import pytest

from repro import (
    Collection,
    CollectionSchema,
    DataType,
    FieldSchema,
    ManuError,
    connect,
    connections,
)
from repro.api.rest import RestApi


@pytest.fixture(autouse=True)
def conn():
    cluster = connect("default", num_query_nodes=2)
    yield cluster
    connections.disconnect("default")


@pytest.fixture
def pk_schema():
    return CollectionSchema([
        FieldSchema("pk", DataType.INT64, is_primary=True),
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8),
        FieldSchema("price", DataType.FLOAT),
    ])


def pk_rows(rng, pks):
    return {"pk": list(pks),
            "vector": rng.standard_normal((len(pks), 8)).astype(np.float32),
            "price": [float(pk) * 10 for pk in pks]}


class TestGet:
    def test_fetch_by_pk(self, pk_schema, rng, conn):
        coll = Collection("c", pk_schema)
        coll.insert(pk_rows(rng, [1, 2, 3]))
        conn.run_for(200)
        rows = coll.get([1, 3, 99])
        assert set(rows) == {1, 3}
        assert rows[1]["price"] == 10.0
        assert rows[3]["vector"].shape == (8,)

    def test_deleted_rows_not_fetched(self, pk_schema, rng, conn):
        coll = Collection("c", pk_schema)
        coll.insert(pk_rows(rng, [1, 2]))
        conn.run_for(200)
        coll.delete("pk == 1")
        conn.run_for(200)
        assert set(coll.get([1, 2])) == {2}

    def test_fetch_spans_growing_and_sealed(self, pk_schema, rng, conn):
        coll = Collection("c", pk_schema)
        coll.insert(pk_rows(rng, [1, 2]))
        conn.run_for(200)
        coll.flush()
        coll.insert(pk_rows(rng, [3]))
        conn.run_for(200)
        assert set(coll.get([1, 2, 3])) == {1, 2, 3}


class TestUpsert:
    def test_upsert_replaces(self, pk_schema, rng, conn):
        coll = Collection("c", pk_schema)
        coll.insert(pk_rows(rng, [7]))
        conn.run_for(200)
        new = pk_rows(rng, [7])
        new["price"] = [999.0]
        coll.upsert(new)
        conn.run_for(200)
        rows = coll.get([7])
        assert rows[7]["price"] == 999.0
        # Only one live copy exists.
        result = coll.search(vec=new["vector"][0], limit=10,
                             param={"metric_type": "Euclidean"},
                             consistency_level="strong")[0]
        assert result.pks.count(7) == 1

    def test_upsert_inserts_when_absent(self, pk_schema, rng, conn):
        coll = Collection("c", pk_schema)
        coll.upsert(pk_rows(rng, [42]))
        conn.run_for(200)
        assert 42 in coll.get([42])

    def test_upsert_requires_explicit_pk(self, rng, conn):
        auto = CollectionSchema(
            [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8)])
        coll = Collection("auto", auto)
        with pytest.raises(ManuError):
            coll.upsert({"vector": rng.standard_normal(
                (1, 8)).astype(np.float32)})


class TestRangeSearch:
    def test_euclidean_radius_exact(self, pk_schema, rng, conn):
        coll = Collection("c", pk_schema)
        base = rng.standard_normal(8).astype(np.float32)
        vectors = np.stack([base,
                            base + 0.1,
                            base + 5.0])
        coll.insert({"pk": [1, 2, 3], "vector": vectors,
                     "price": [1.0, 2.0, 3.0]})
        conn.run_for(200)
        result = coll.range_search(vec=base, radius=1.0,
                                   param={"metric_type": "Euclidean"},
                                   consistency_level="strong")
        assert set(result.pks) == {1, 2}
        # Scores are true L2 distances within the radius.
        assert all(s <= 1.0 for s in result.scores)

    def test_ip_minimum_similarity(self, pk_schema, rng, conn):
        coll = Collection("c", pk_schema)
        query = np.zeros(8, dtype=np.float32)
        query[0] = 1.0
        vectors = np.zeros((3, 8), dtype=np.float32)
        vectors[0, 0] = 2.0   # sim 2.0
        vectors[1, 0] = 0.5   # sim 0.5
        vectors[2, 1] = 3.0   # sim 0.0
        coll.insert({"pk": [1, 2, 3], "vector": vectors,
                     "price": [0.0, 0.0, 0.0]})
        conn.run_for(200)
        result = coll.range_search(vec=query, radius=0.4,
                                   param={"metric_type": "IP"},
                                   consistency_level="strong")
        assert set(result.pks) == {1, 2}

    def test_filter_and_limit(self, pk_schema, rng, conn):
        coll = Collection("c", pk_schema)
        base = rng.standard_normal(8).astype(np.float32)
        vectors = np.stack([base + 0.01 * i for i in range(6)])
        coll.insert({"pk": list(range(1, 7)), "vector": vectors,
                     "price": [10.0 * p for p in range(1, 7)]})
        conn.run_for(200)
        result = coll.range_search(vec=base, radius=10.0,
                                   expr="price > 25", limit=2,
                                   consistency_level="strong")
        assert len(result.pks) == 2
        assert all(pk >= 3 for pk in result.pks)

    def test_negative_euclidean_radius_rejected(self, pk_schema, rng,
                                                conn):
        coll = Collection("c", pk_schema)
        coll.insert(pk_rows(rng, [1]))
        with pytest.raises(ManuError):
            coll.range_search(vec=np.zeros(8), radius=-1.0)


class TestRestApi:
    @pytest.fixture
    def api(self, conn):
        return RestApi(conn)

    def _schema_body(self, dim=8):
        return {"name": "rest", "schema": {"fields": [
            {"name": "vector", "dtype": "float_vector", "dim": dim},
            {"name": "price", "dtype": "float"},
        ]}}

    def test_create_describe_drop(self, api):
        status, body = api.handle("POST", "/collections",
                                  self._schema_body())
        assert status == 201
        status, body = api.handle("GET", "/collections")
        assert status == 200 and body["collections"] == ["rest"]
        status, body = api.handle("GET", "/collections/rest")
        assert status == 200
        assert body["loaded"] is True
        status, _ = api.handle("DELETE", "/collections/rest")
        assert status == 200
        status, _ = api.handle("GET", "/collections/rest")
        assert status == 404

    def test_duplicate_create_conflict(self, api):
        api.handle("POST", "/collections", self._schema_body())
        status, body = api.handle("POST", "/collections",
                                  self._schema_body())
        assert status == 409

    def test_insert_search_delete_roundtrip(self, api, rng, conn):
        api.handle("POST", "/collections", self._schema_body())
        vectors = rng.standard_normal((20, 8)).astype(np.float32)
        status, body = api.handle("POST", "/collections/rest/entities", {
            "rows": {"vector": vectors.tolist(),
                     "price": list(range(20))}})
        assert status == 201 and body["insert_count"] == 20
        pks = body["pks"]
        status, body = api.handle("POST", "/collections/rest/search", {
            "vector": vectors[4].tolist(), "limit": 3,
            "metric_type": "Euclidean", "consistency_level": "strong"})
        assert status == 200
        assert body["pks"][0] == pks[4]
        status, body = api.handle(
            "POST", "/collections/rest/entities/delete",
            {"expr": f"_auto_id == {pks[4]}"})
        assert status == 200 and body["delete_count"] == 1

    def test_entities_get(self, api, rng, conn):
        api.handle("POST", "/collections", self._schema_body())
        vectors = rng.standard_normal((3, 8)).astype(np.float32)
        _s, body = api.handle("POST", "/collections/rest/entities", {
            "rows": {"vector": vectors.tolist(), "price": [1, 2, 3]}})
        conn.run_for(200)
        status, got = api.handle("POST", "/collections/rest/entities/get",
                                 {"pks": body["pks"][:2]})
        assert status == 200
        assert len(got["entities"]) == 2
        first = got["entities"][str(body["pks"][0])]
        assert isinstance(first["vector"], list)

    def test_range_search_route(self, api, rng, conn):
        api.handle("POST", "/collections", self._schema_body())
        base = rng.standard_normal(8).astype(np.float32)
        vectors = np.stack([base, base + 0.05, base + 9.0])
        api.handle("POST", "/collections/rest/entities", {
            "rows": {"vector": vectors.tolist(), "price": [1, 2, 3]}})
        conn.run_for(200)
        status, body = api.handle(
            "POST", "/collections/rest/range_search",
            {"vector": base.tolist(), "radius": 1.0,
             "consistency_level": "strong"})
        assert status == 200
        assert len(body["pks"]) == 2

    def test_index_and_flush_routes(self, api, rng, conn):
        api.handle("POST", "/collections", self._schema_body())
        vectors = rng.standard_normal((60, 8)).astype(np.float32)
        api.handle("POST", "/collections/rest/entities", {
            "rows": {"vector": vectors.tolist(),
                     "price": list(range(60))}})
        conn.run_for(200)
        status, _ = api.handle("POST", "/collections/rest/flush", {})
        assert status == 200
        status, _ = api.handle("POST", "/collections/rest/indexes", {
            "field": "vector", "index_type": "IVF_FLAT",
            "metric_type": "L2", "params": {"nlist": 4}})
        assert status == 201
        assert conn.wait_for_indexes("rest")

    def test_system_route(self, api):
        status, body = api.handle("GET", "/system")
        assert status == 200
        assert body["query_nodes"] == 2

    def test_bad_requests(self, api):
        assert api.handle("POST", "/collections", {})[0] == 400
        assert api.handle("GET", "/nope")[0] == 404
        assert api.handle("PATCH", "/collections")[0] == 405
        api.handle("POST", "/collections", self._schema_body())
        assert api.handle("POST", "/collections/rest/search", {})[0] == 400
        assert api.handle("POST", "/collections/rest/entities",
                          {"rows": "junk"})[0] == 400
        assert api.handle("POST", "/collections/rest/search",
                          {"vector": [0] * 8,
                           "consistency_level": "quantum"})[0] == 400
