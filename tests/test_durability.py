"""Tests for the manu-crash crash-consistency pass (repro.analysis).

Each rule family gets a fixture triple: the violation fires, a guarded
counterpart stays silent, and an in-place suppression is honoured.  On
top of that the recovered durability model is pinned: deterministic
across builds, embedded in ``--format json``, exportable as dot, and the
real repository must be strict-clean under all four rules.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis import run_analysis
from repro.analysis.durability import (
    DURABILITY_ACK,
    DURABILITY_COVERAGE,
    DURABILITY_REPLAY,
    DURABILITY_UNLOGGED,
)
from repro.analysis.engine import load_project
from repro.analysis.recovery import (
    build_durability_model,
    verify_declared_components,
)

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

BROKER_STUB = """
class LogBroker:
    pass
"""


def make_tree(tmp_path, files):
    root = tmp_path / "repro_root"
    for relpath, source in files.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def lint(tmp_path, files, rule=None):
    select = [rule] if rule else None
    return run_analysis(make_tree(tmp_path, files), select=select)


def findings_at(report, rule):
    return [(f.path, f.line) for f in report.findings if f.rule == rule]


# ----------------------------------------------------------------------
# durability-ack-before-durable
# ----------------------------------------------------------------------


class TestAckBeforeDurable:
    def test_early_return_before_publish_fires(self, tmp_path):
        report = lint(tmp_path, {
            "log/broker.py": BROKER_STUB,
            "log/logger_node.py": """
                from repro.log.broker import LogBroker

                def shard_channel(collection, shard):
                    return f"wal/{collection}/shard-{shard}"

                class Logger:
                    def __init__(self, broker: LogBroker) -> None:
                        self._broker = broker

                    def publish_insert(self, collection, shard, record):
                        if record is None:
                            return 0
                        self._broker.publish(
                            shard_channel(collection, shard), record)
                        return 1
            """,
        }, rule=DURABILITY_ACK)
        assert findings_at(report, DURABILITY_ACK) == [
            ("log/logger_node.py", 13)]
        assert "not dominated" in report.findings[0].message

    def test_publish_dominates_every_return_is_clean(self, tmp_path):
        report = lint(tmp_path, {
            "log/broker.py": BROKER_STUB,
            "log/logger_node.py": """
                from repro.log.broker import LogBroker

                def shard_channel(collection, shard):
                    return f"wal/{collection}/shard-{shard}"

                class Logger:
                    def __init__(self, broker: LogBroker) -> None:
                        self._broker = broker

                    def publish_insert(self, collection, shard, record):
                        self._broker.publish(
                            shard_channel(collection, shard), record)
                        if record is None:
                            return 0
                        return 1
            """,
        }, rule=DURABILITY_ACK)
        assert report.findings == []

    def test_suppression_honoured(self, tmp_path):
        report = lint(tmp_path, {
            "log/broker.py": BROKER_STUB,
            "log/logger_node.py": """
                from repro.log.broker import LogBroker

                def shard_channel(collection, shard):
                    return f"wal/{collection}/shard-{shard}"

                class Logger:
                    def __init__(self, broker: LogBroker) -> None:
                        self._broker = broker

                    def publish_insert(self, collection, shard, record):
                        if record is None:
                            return 0  # manu-lint: disable=durability-ack-before-durable -- zero-effect ack
                        self._broker.publish(
                            shard_channel(collection, shard), record)
                        return 1
            """,
        }, rule=DURABILITY_ACK)
        assert report.findings == []
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# durability-ack-before-durable: deferred acks (group commit)
# ----------------------------------------------------------------------

_RESOLVER_PRELUDE = textwrap.dedent("""
    from repro.log.broker import LogBroker

    def shard_channel(collection, shard):
        return f"wal/{collection}/shard-{shard}"

    class AckFuture:
        def set_result(self, lsn, rows):
            self.done = True
""")


class TestAckFutureResolver:
    """Group-commit shape: writes enter via ``*_async`` returning an
    AckFuture; the client-visible ack is the future's resolution inside
    the flush function, which must follow the batch publish."""

    def test_resolve_before_publish_fires(self, tmp_path):
        report = lint(tmp_path, {
            "log/broker.py": BROKER_STUB,
            "log/logger_node.py": _RESOLVER_PRELUDE + textwrap.dedent("""
                class LoggerService:
                    def __init__(self, broker: LogBroker) -> None:
                        self._broker = broker
                        self._groups = {}

                    def flush_group(self, collection, shard):
                        ops = self._groups.pop((collection, shard), [])
                        for record, future in ops:
                            future.set_result(1, 1)
                        for record, future in ops:
                            self._broker.publish(
                                shard_channel(collection, shard), record)
            """),
        }, rule=DURABILITY_ACK)
        assert findings_at(report, DURABILITY_ACK) == [
            ("log/logger_node.py", 19)]
        assert "future resolution" in report.findings[0].message

    def test_resolve_after_publish_is_clean(self, tmp_path):
        report = lint(tmp_path, {
            "log/broker.py": BROKER_STUB,
            "log/logger_node.py": _RESOLVER_PRELUDE + textwrap.dedent("""
                class LoggerService:
                    def __init__(self, broker: LogBroker) -> None:
                        self._broker = broker
                        self._groups = {}

                    def flush_group(self, collection, shard):
                        ops = self._groups.pop((collection, shard), [])
                        for record, future in ops:
                            self._broker.publish(
                                shard_channel(collection, shard), record)
                        for record, future in ops:
                            future.set_result(1, 1)
            """),
        }, rule=DURABILITY_ACK)
        assert report.findings == []

    def test_resolver_suppression_honoured(self, tmp_path):
        report = lint(tmp_path, {
            "log/broker.py": BROKER_STUB,
            "log/logger_node.py": _RESOLVER_PRELUDE + textwrap.dedent("""
                class LoggerService:
                    def __init__(self, broker: LogBroker) -> None:
                        self._broker = broker
                        self._groups = {}

                    def flush_group(self, collection, shard):
                        ops = self._groups.pop((collection, shard), [])
                        if not ops:
                            future = AckFuture()
                            future.set_result(0, 0)  # manu-lint: disable=durability-ack-before-durable -- zero-effect ack
                            return
                        for record, future in ops:
                            self._broker.publish(
                                shard_channel(collection, shard), record)
                        for record, future in ops:
                            future.set_result(1, 1)
            """),
        }, rule=DURABILITY_ACK)
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_async_entry_returning_future_is_not_an_ack(self, tmp_path):
        """``insert_async`` hands back an unresolved AckFuture before the
        publish — that is the deferred-ack contract, not a violation; the
        resolution inside ``flush_group`` is what gets checked."""
        report = lint(tmp_path, {
            "log/broker.py": BROKER_STUB,
            "log/logger_node.py": _RESOLVER_PRELUDE + textwrap.dedent("""
                class LoggerService:
                    def __init__(self, broker: LogBroker) -> None:
                        self._broker = broker
                        self._groups = {}

                    def insert_async(self, collection, shard,
                                     record) -> "AckFuture":
                        future = AckFuture()
                        self._groups[(collection, shard)] = \\
                            (record, future)
                        if len(self._groups) > 4:
                            self.flush_group(collection, shard)
                        return future

                    def flush_group(self, collection, shard):
                        entry = self._groups.pop((collection, shard))
                        record, future = entry
                        self._broker.publish(
                            shard_channel(collection, shard), record)
                        future.set_result(1, 1)
            """),
        }, rule=DURABILITY_ACK)
        assert report.findings == []


# ----------------------------------------------------------------------
# durability-unlogged-mutation
# ----------------------------------------------------------------------

SEGMENT_STUB = """
    class Segment:
        def __init__(self):
            self._pks = []

        def append(self, pks, lsn):
            if lsn <= 0:
                return
            self._pks.extend(pks)
"""


class TestUnloggedMutation:
    def test_mutation_outside_replay_path_fires(self, tmp_path):
        report = lint(tmp_path, {
            "core/segment.py": SEGMENT_STUB,
            "nodes/editor.py": """
                from repro.core.segment import Segment

                class Editor:
                    def __init__(self, segment: Segment) -> None:
                        self._segment = segment

                    def patch_rows(self, pks):
                        self._segment.append(pks, 0)
            """,
        }, rule=DURABILITY_UNLOGGED)
        assert findings_at(report, DURABILITY_UNLOGGED) == [
            ("nodes/editor.py", 9)]
        assert "Segment.append" in report.findings[0].message

    def test_restore_path_mutation_is_clean(self, tmp_path):
        report = lint(tmp_path, {
            "core/segment.py": SEGMENT_STUB,
            "nodes/editor.py": """
                from repro.core.segment import Segment

                class Editor:
                    def __init__(self, segment: Segment) -> None:
                        self._segment = segment

                    def rebuild_from_binlog(self, pks):
                        self._segment.append(pks, 1)
            """,
        }, rule=DURABILITY_UNLOGGED)
        assert report.findings == []

    def test_suppression_honoured(self, tmp_path):
        report = lint(tmp_path, {
            "core/segment.py": SEGMENT_STUB,
            "nodes/editor.py": """
                from repro.core.segment import Segment

                class Editor:
                    def __init__(self, segment: Segment) -> None:
                        self._segment = segment

                    def patch_rows(self, pks):
                        self._segment.append(pks, 0)  # manu-lint: disable=durability-unlogged-mutation -- test-only backdoor
            """,
        }, rule=DURABILITY_UNLOGGED)
        assert report.findings == []
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# durability-replay-unguarded
# ----------------------------------------------------------------------


class TestReplayUnguarded:
    def test_blind_append_in_handler_fires(self, tmp_path):
        report = lint(tmp_path, {
            "log/broker.py": BROKER_STUB,
            "nodes/archiver.py": """
                from repro.log.broker import LogBroker

                def shard_channel(collection, shard):
                    return f"wal/{collection}/shard-{shard}"

                class Archiver:
                    def __init__(self, broker: LogBroker) -> None:
                        self._broker = broker
                        self._rows = []
                        self._sub = None

                    def attach(self, collection, shard):
                        self._sub = self._broker.subscribe(
                            shard_channel(collection, shard),
                            "archiver", 0, callback=self._on_entry)

                    def _on_entry(self, entry):
                        self._rows.append(entry.payload)
            """,
        }, rule=DURABILITY_REPLAY)
        assert findings_at(report, DURABILITY_REPLAY) == [
            ("nodes/archiver.py", 19)]
        assert "without a progress guard" in report.findings[0].message

    def test_offset_guard_silences(self, tmp_path):
        report = lint(tmp_path, {
            "log/broker.py": BROKER_STUB,
            "nodes/archiver.py": """
                from repro.log.broker import LogBroker

                def shard_channel(collection, shard):
                    return f"wal/{collection}/shard-{shard}"

                class Archiver:
                    def __init__(self, broker: LogBroker) -> None:
                        self._broker = broker
                        self._rows = []
                        self._next_offset = 0
                        self._sub = None

                    def attach(self, collection, shard):
                        self._sub = self._broker.subscribe(
                            shard_channel(collection, shard),
                            "archiver", 0, callback=self._on_entry)

                    def _on_entry(self, entry):
                        if entry.offset < self._next_offset:
                            return
                        self._next_offset = entry.offset + 1
                        self._rows.append(entry.payload)
            """,
        }, rule=DURABILITY_REPLAY)
        assert report.findings == []

    def test_suppression_honoured(self, tmp_path):
        report = lint(tmp_path, {
            "log/broker.py": BROKER_STUB,
            "nodes/archiver.py": """
                from repro.log.broker import LogBroker

                def shard_channel(collection, shard):
                    return f"wal/{collection}/shard-{shard}"

                class Archiver:
                    def __init__(self, broker: LogBroker) -> None:
                        self._broker = broker
                        self._rows = []
                        self._sub = None

                    def attach(self, collection, shard):
                        self._sub = self._broker.subscribe(
                            shard_channel(collection, shard),
                            "archiver", 0, callback=self._on_entry)

                    def _on_entry(self, entry):
                        self._rows.append(entry.payload)  # manu-lint: disable=durability-replay-unguarded -- dedup happens at flush
            """,
        }, rule=DURABILITY_REPLAY)
        assert report.findings == []
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# durability-checkpoint-coverage
# ----------------------------------------------------------------------


class TestCheckpointCoverage:
    def test_uncovered_field_fires(self, tmp_path):
        report = lint(tmp_path, {
            "nodes/data_node.py": """
                class DataNode:
                    def __init__(self):
                        self._notes = []

                    def remember(self, note):
                        self._notes = self._notes + [note]
            """,
        }, rule=DURABILITY_COVERAGE)
        assert findings_at(report, DURABILITY_COVERAGE) == [
            ("nodes/data_node.py", 7)]
        assert "DataNode._notes" in report.findings[0].message

    def test_restore_written_field_is_clean(self, tmp_path):
        report = lint(tmp_path, {
            "nodes/data_node.py": """
                class DataNode:
                    def __init__(self):
                        self._notes = []

                    def restore_notes(self, notes):
                        self._notes = list(notes)
            """,
        }, rule=DURABILITY_COVERAGE)
        assert report.findings == []

    def test_suppression_honoured(self, tmp_path):
        report = lint(tmp_path, {
            "nodes/data_node.py": """
                class DataNode:
                    def __init__(self):
                        self._notes = []

                    def remember(self, note):
                        self._notes = self._notes + [note]  # manu-lint: disable=durability-checkpoint-coverage -- scratch pad
            """,
        }, rule=DURABILITY_COVERAGE)
        assert report.findings == []
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# the recovered model itself
# ----------------------------------------------------------------------


class TestDurabilityModel:
    def test_model_is_deterministic_across_builds(self):
        first = build_durability_model(load_project(REPO_SRC))
        second = build_durability_model(load_project(REPO_SRC))
        assert first.to_dict() == second.to_dict()
        assert first.to_dot() == second.to_dot()
        # Serialization must be stable too (the CI artifact is diffed).
        assert json.dumps(first.to_dict(), sort_keys=True) == \
            json.dumps(second.to_dict(), sort_keys=True)

    def test_model_is_cached_per_project(self):
        project = load_project(REPO_SRC)
        assert build_durability_model(project) \
            is build_durability_model(project)

    def test_declared_components_all_exist(self):
        model = build_durability_model(load_project(REPO_SRC))
        verify_declared_components(model)
        assert model.missing_components == ()

    def test_real_write_path_is_modelled(self):
        """The paper's write path shows up in the recovered model: the
        logger's WAL publishes are the durable points, every client
        entry (api/cluster proxy insert/delete/upsert) reaches them,
        and every ack is dominated."""
        model = build_durability_model(load_project(REPO_SRC))
        durable = {(p.module, p.qualname) for p in model.durable_points}
        assert ("log/logger_node.py", "Logger.publish_insert") in durable
        assert ("log/logger_node.py", "Logger.publish_delete") in durable
        assert ("log/logger_node.py", "Logger.publish_batch") in durable
        entries = {e.func.qualname: e.ok for e in model.write_entries}
        for qualname in ("Collection.insert", "ManuCluster.insert",
                         "ManuCluster.insert_async",
                         "Proxy.insert", "Proxy.delete", "Proxy.upsert",
                         "Logger.publish_insert", "Logger.publish_batch",
                         "LoggerService.insert"):
            assert qualname in entries, qualname
            assert entries[qualname], f"{qualname} ack not dominated"
        # The group-commit resolver is modelled: its in-band resolution
        # (after the batch publish) is dominated; the zero-effect empty-
        # flush ack is the one suppressed site.
        flush = [e for e in model.write_entries
                 if e.func.qualname == "LoggerService.flush_group"]
        assert len(flush) == 1
        kinds = {a.kind for a in flush[0].acks}
        assert kinds == {"future-result"}
        assert any(a.dominated for a in flush[0].acks)

    def test_real_replay_handlers_are_guarded(self):
        model = build_durability_model(load_project(REPO_SRC))
        handlers = {h.func.qualname: h for h in model.handlers}
        assert "DataNode._on_entry" in handlers
        assert "QueryNode._on_entry" in handlers
        for handler in model.handlers:
            assert handler.guarded, (
                f"{handler.func.qualname} has unguarded replay effects: "
                f"{[e.target for e in handler.effects if not e.guarded]}")

    def test_no_field_is_uncovered_in_repo(self):
        model = build_durability_model(load_project(REPO_SRC))
        uncovered = [(f.component, f.name) for f in model.fields
                     if f.bucket == "uncovered"]
        assert uncovered == []

    def test_repo_is_strict_clean(self):
        report = run_analysis(REPO_SRC, strict=True)
        assert report.parse_errors == []
        assert report.findings == []

    def test_dot_export_shape(self):
        dot = build_durability_model(load_project(REPO_SRC)).to_dot()
        assert dot.startswith("digraph manu_durability")
        for stage in ("received", "published", "durable", "acked"):
            assert stage in dot


# ----------------------------------------------------------------------
# CLI integration: json embedding and baseline flow
# ----------------------------------------------------------------------


class TestCliIntegration:
    def test_json_embeds_durability_model(self, tmp_path, capsys):
        from repro.analysis.cli import main
        root = make_tree(tmp_path, {"core/ok.py": "x = 1\n"})
        assert main([str(root), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "durability" in payload
        assert payload["durability"]["lifecycle"] == [
            "received", "published-to-WAL", "durable", "acked"]

    def test_dot_durability_format(self, tmp_path, capsys):
        from repro.analysis.cli import main
        root = make_tree(tmp_path, {"core/ok.py": "x = 1\n"})
        assert main([str(root), "--format", "dot-durability"]) == 0
        assert capsys.readouterr().out.startswith(
            "digraph manu_durability")

    def test_baseline_flow_covers_durability_findings(self, tmp_path,
                                                      capsys):
        from repro.analysis.cli import main
        root = make_tree(tmp_path, {
            "nodes/data_node.py": """
                class DataNode:
                    def __init__(self):
                        self._notes = []

                    def remember(self, note):
                        self._notes = self._notes + [note]
            """,
        })
        baseline = tmp_path / "baseline.json"
        assert main([str(root)]) == 1
        capsys.readouterr()
        assert main([str(root), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        capsys.readouterr()
        entries = json.loads(baseline.read_text())
        assert any(e["rule"] == DURABILITY_COVERAGE for e in entries)
        assert main([str(root), "--baseline", str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out


# ----------------------------------------------------------------------
# export surface
# ----------------------------------------------------------------------


def test_exports_from_package_roots():
    import repro
    import repro.analysis as analysis
    for mod in (repro, analysis):
        assert mod.DURABILITY_ACK == "durability-ack-before-durable"
        assert mod.DURABILITY_UNLOGGED == "durability-unlogged-mutation"
        assert mod.DURABILITY_REPLAY == "durability-replay-unguarded"
        assert mod.DURABILITY_COVERAGE == "durability-checkpoint-coverage"
        assert len(mod.DURABILITY_RULES) == 4
        assert callable(mod.build_durability_model)
        assert callable(mod.durability_model_for_root)
        assert issubclass(mod.RecoveryModelError, Exception)
