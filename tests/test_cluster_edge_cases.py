"""Edge-case and negative-path integration tests across the cluster."""

import numpy as np
import pytest

from repro.cluster.manu import ManuCluster
from repro.core.consistency import ConsistencyLevel
from repro.core.schema import CollectionSchema, DataType, FieldSchema, \
    MetricType
from repro.errors import (
    CollectionNotFound,
    ConsistencyTimeout,
    ManuError,
)
from repro.storage.object_store import FsBackend


@pytest.fixture
def schema():
    return CollectionSchema(
        [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8)])


def rows(rng, n):
    return {"vector": rng.standard_normal((n, 8)).astype(np.float32)}


class TestNegativePaths:
    def test_search_unknown_collection(self, cluster):
        with pytest.raises(CollectionNotFound):
            cluster.search("ghost", np.zeros(8, dtype=np.float32), 1)

    def test_insert_unknown_collection(self, cluster, rng):
        with pytest.raises(CollectionNotFound):
            cluster.insert("ghost", rows(rng, 1))

    def test_index_unknown_collection(self, cluster):
        with pytest.raises(ManuError):
            cluster.create_index("ghost", "vector", "FLAT")

    def test_search_unknown_field(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        cluster.insert("c", rows(rng, 5))
        from repro.errors import FieldNotFound
        with pytest.raises(FieldNotFound):
            cluster.search("c", np.zeros(8, dtype=np.float32), 1,
                           field="nope")

    def test_search_empty_collection(self, cluster, schema):
        cluster.create_collection("c", schema)
        result = cluster.search("c", np.zeros(8, dtype=np.float32), 5,
                                consistency=ConsistencyLevel.EVENTUAL)[0]
        assert result.pks == []

    def test_time_travel_unknown_collection(self, cluster):
        with pytest.raises(ManuError):
            cluster.time_travel("ghost", 0.0)

    def test_compact_unknown_collection(self, cluster):
        with pytest.raises(ManuError):
            cluster.compact("ghost")

    def test_consistency_timeout_when_ticks_stop(self, schema, rng):
        cluster = ManuCluster(num_query_nodes=1)
        cluster.create_collection("c", schema)
        cluster.insert("c", rows(rng, 5))
        cluster.run_for(100)
        cluster.timetick.stop()  # strand the watermark
        from dataclasses import replace
        cluster.config = cluster.config.with_overrides(
            query=replace(cluster.config.query,
                          consistency_deadline_ms=500.0))
        with pytest.raises(ConsistencyTimeout):
            cluster.search("c", np.zeros(8, dtype=np.float32), 1,
                           consistency=ConsistencyLevel.STRONG)


class TestLifecycleEdges:
    def test_double_flush_is_idempotent(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        cluster.insert("c", rows(rng, 30))
        cluster.run_for(200)
        cluster.flush("c")
        first = cluster.data_coord.flushed_segments("c")
        cluster.flush("c")
        assert cluster.data_coord.flushed_segments("c") == first

    def test_flush_empty_collection(self, cluster, schema):
        cluster.create_collection("c", schema)
        cluster.flush("c")  # no growing data; must not raise
        assert cluster.data_coord.flushed_segments("c") == []

    def test_drop_and_recreate_collection(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        cluster.insert("c", rows(rng, 10))
        cluster.run_for(200)
        cluster.drop_collection("c")
        cluster.create_collection("c", schema)
        data = rows(rng, 10)
        pks = cluster.insert("c", data)
        result = cluster.search("c", data["vector"][0], 1,
                                consistency=ConsistencyLevel.STRONG)[0]
        assert result.pks[0] == pks[0]

    def test_two_collections_are_isolated(self, cluster, rng):
        schema_a = CollectionSchema(
            [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8)])
        schema_b = CollectionSchema(
            [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=4)])
        cluster.create_collection("a", schema_a)
        cluster.create_collection("b", schema_b)
        data_a = {"vector": rng.standard_normal(
            (20, 8)).astype(np.float32)}
        data_b = {"vector": rng.standard_normal(
            (30, 4)).astype(np.float32)}
        cluster.insert("a", data_a)
        cluster.insert("b", data_b)
        cluster.run_for(200)
        assert cluster.collection_row_count("a") == 20
        assert cluster.collection_row_count("b") == 30
        result = cluster.search("a", data_a["vector"][0], 50,
                                consistency=ConsistencyLevel.STRONG)[0]
        assert len(result.pks) == 20  # never sees b's rows

    def test_checkpoint_then_compact_then_search(self, cluster, schema,
                                                 rng):
        cluster.create_collection("c", schema)
        data = rows(rng, 60)
        pks = cluster.insert("c", data)
        cluster.run_for(200)
        cluster.flush("c")
        cluster.checkpoint("c")
        cluster.compact("c")
        cluster.run_for(500)
        result = cluster.search("c", data["vector"][5], 1,
                                consistency=ConsistencyLevel.STRONG)[0]
        assert result.pks[0] == pks[5]

    def test_index_then_more_inserts_then_search(self, cluster, schema,
                                                 rng):
        """Stream indexing: data arriving after create_index is covered."""
        cluster.create_collection("c", schema)
        cluster.create_index("c", "vector", "IVF_FLAT",
                             MetricType.EUCLIDEAN, {"nlist": 4})
        first = rows(rng, 50)
        cluster.insert("c", first)
        cluster.run_for(200)
        cluster.flush("c")
        assert cluster.wait_for_indexes("c")
        second = rows(rng, 50)
        pks2 = cluster.insert("c", second)
        result = cluster.search("c", second["vector"][7], 1,
                                consistency=ConsistencyLevel.STRONG)[0]
        assert result.pks[0] == pks2[7]


class TestFsBackedCluster:
    def test_full_pipeline_on_filesystem_store(self, schema, rng,
                                               tmp_path):
        """The paper's laptop deployment: object KV = local filesystem."""
        cluster = ManuCluster(num_query_nodes=1,
                              store_backend=FsBackend(str(tmp_path)))
        cluster.create_collection("c", schema)
        data = rows(rng, 80)
        pks = cluster.insert("c", data)
        cluster.run_for(200)
        cluster.flush("c")
        cluster.create_index("c", "vector", "IVF_FLAT",
                             MetricType.EUCLIDEAN, {"nlist": 4})
        assert cluster.wait_for_indexes("c")
        result = cluster.search("c", data["vector"][9], 1,
                                consistency=ConsistencyLevel.STRONG)[0]
        assert result.pks[0] == pks[9]
        # Binlogs and indexes really are files on disk.
        files = cluster.store.list("binlog/")
        assert files
        assert (tmp_path / files[0]).exists()
        assert cluster.store.list("index/")


class TestMetricsExposure:
    def test_cluster_snapshot_contains_search_stats(self, cluster, schema,
                                                    rng):
        cluster.create_collection("c", schema)
        data = rows(rng, 20)
        cluster.insert("c", data)
        cluster.search("c", data["vector"][0], 3,
                       consistency=ConsistencyLevel.STRONG)
        snap = cluster.stats_snapshot()
        assert snap["proxy.proxy-0.searches.count"] == 1.0
        assert snap["proxy.proxy-0.inserts.count"] == 20.0
        assert "proxy.search_latency.mean_ms" in snap
