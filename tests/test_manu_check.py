"""MANU_CHECK: the broker's runtime monotonicity assertion.

The dynamic twin of manu-lint's ``timestamp-discipline``: under
``MANU_CHECK=1`` (or ``LogBroker(manu_check=True)``) every publish to a
``wal/<collection>/shard-<n>`` channel asserts the record's timestamp
never goes backwards.  The chaos stress test runs with the flag on (see
``test_cluster_chaos.py``); here the mechanism itself is pinned,
including the negative case — an injected out-of-order time-tick must
trip the assertion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.manu import ManuCluster
from repro.core.schema import CollectionSchema, DataType, FieldSchema
from repro.errors import MonotonicityViolation
from repro.log.broker import LogBroker
from repro.log.wal import InsertRecord, TimeTickRecord

SHARD = "wal/c/shard-0"


def _broker(**kwargs) -> LogBroker:
    broker = LogBroker(**kwargs)
    broker.create_channel(SHARD)
    broker.create_channel("wal/coord")
    return broker


def test_out_of_order_tick_trips():
    broker = _broker(manu_check=True)
    broker.publish(SHARD, TimeTickRecord(ts=100, source="tso"))
    with pytest.raises(MonotonicityViolation, match="wal/c/shard-0"):
        broker.publish(SHARD, TimeTickRecord(ts=50, source="tso"))


def test_out_of_order_insert_after_tick_trips():
    broker = _broker(manu_check=True)
    broker.publish(SHARD, TimeTickRecord(ts=1000, source="tso"))
    with pytest.raises(MonotonicityViolation):
        broker.publish(SHARD, InsertRecord(ts=999, collection="c"))


def test_monotone_stream_passes_and_is_recorded():
    broker = _broker(manu_check=True)
    for ts in (1, 5, 5, 9):  # equal timestamps are allowed
        broker.publish(SHARD, TimeTickRecord(ts=ts, source="tso"))
    assert broker.end_offset(SHARD) == 4


def test_control_channels_and_ts_free_payloads_exempt():
    broker = _broker(manu_check=True)
    # Control channels legitimately carry historical timestamps.
    broker.publish("wal/coord", TimeTickRecord(ts=100, source="tso"))
    broker.publish("wal/coord", TimeTickRecord(ts=1, source="tso"))
    # ts=0 sentinels and non-record payloads are ignored on data channels.
    broker.publish(SHARD, TimeTickRecord(ts=7, source="tso"))
    broker.publish(SHARD, TimeTickRecord(ts=0, source="sentinel"))
    broker.publish(SHARD, {"raw": "payload"})


def test_disabled_by_default_and_env_driven(monkeypatch):
    monkeypatch.delenv("MANU_CHECK", raising=False)
    assert LogBroker().manu_check is False
    monkeypatch.setenv("MANU_CHECK", "1")
    assert LogBroker().manu_check is True
    monkeypatch.setenv("MANU_CHECK", "0")
    assert LogBroker().manu_check is False
    # Explicit argument wins over the environment.
    monkeypatch.setenv("MANU_CHECK", "1")
    assert LogBroker(manu_check=False).manu_check is False


def test_disabled_broker_accepts_out_of_order():
    broker = _broker(manu_check=False)
    broker.publish(SHARD, TimeTickRecord(ts=100, source="tso"))
    broker.publish(SHARD, TimeTickRecord(ts=50, source="tso"))


def test_full_cluster_stress_under_manu_check(monkeypatch):
    """A small end-to-end run with the invariant armed throughout."""
    monkeypatch.setenv("MANU_CHECK", "1")
    cluster = ManuCluster(num_query_nodes=2, num_loggers=2)
    assert cluster.broker.manu_check
    schema = CollectionSchema([
        FieldSchema("pk", DataType.INT64, is_primary=True),
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8),
    ])
    cluster.create_collection("mc", schema)
    rng = np.random.default_rng(7)
    for batch in range(5):
        pks = list(range(batch * 20, batch * 20 + 20))
        cluster.insert("mc", {"pk": pks,
                              "vector": rng.normal(size=(20, 8))})
        cluster.run_for(100)
    cluster.delete("mc", "pk in [1, 2, 3]")
    cluster.run_for(500)
    assert cluster.collection_row_count("mc") == 97
