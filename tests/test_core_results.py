"""Tests for search results and the two-phase top-k reduce."""

import numpy as np
from hypothesis import given, strategies as st

from repro.core.results import (
    SearchHit,
    SearchResult,
    hits_from_arrays,
    merge_topk,
)
from repro.core.schema import MetricType


class TestSearchHit:
    def test_ordering_by_distance(self):
        close = SearchHit(0.5, "a")
        far = SearchHit(2.0, "b")
        assert close < far

    def test_score_for_euclidean_is_sqrt(self):
        hit = SearchHit(9.0, "a")
        assert hit.score_for(MetricType.EUCLIDEAN) == 3.0

    def test_score_for_ip_negates(self):
        hit = SearchHit(-0.8, "a")
        assert hit.score_for(MetricType.INNER_PRODUCT) == 0.8


class TestMergeTopk:
    def test_merges_sorted_lists(self):
        a = [SearchHit(1.0, "a"), SearchHit(3.0, "c")]
        b = [SearchHit(2.0, "b"), SearchHit(4.0, "d")]
        merged = merge_topk([a, b], 3)
        assert [h.pk for h in merged] == ["a", "b", "c"]

    def test_deduplicates_by_pk(self):
        a = [SearchHit(1.0, "x"), SearchHit(3.0, "y")]
        b = [SearchHit(2.0, "x"), SearchHit(2.5, "z")]
        merged = merge_topk([a, b], 10)
        assert [h.pk for h in merged] == ["x", "z", "y"]
        assert merged[0].adjusted_distance == 1.0  # best copy survives

    def test_k_zero(self):
        assert merge_topk([[SearchHit(1.0, "a")]], 0) == []

    def test_empty_lists(self):
        assert merge_topk([], 5) == []
        assert merge_topk([[], []], 5) == []

    @given(st.lists(
        st.lists(st.tuples(st.floats(0, 100), st.integers(0, 40)),
                 max_size=20),
        min_size=1, max_size=5),
        st.integers(1, 15))
    def test_equals_global_sort(self, raw_lists, k):
        """Two-phase reduce == flat sort + dedup (the core invariant)."""
        hit_lists = [sorted(SearchHit(d, pk) for d, pk in lst)
                     for lst in raw_lists]
        merged = merge_topk(hit_lists, k)

        flat = sorted(h for lst in hit_lists for h in lst)
        expected = []
        seen = set()
        for hit in flat:
            if hit.pk not in seen:
                seen.add(hit.pk)
                expected.append(hit.pk)
            if len(expected) >= k:
                break
        assert [h.pk for h in merged] == expected

    @given(st.lists(st.lists(st.tuples(st.floats(0, 100),
                                       st.integers(0, 100)), max_size=15),
                    min_size=1, max_size=4))
    def test_output_sorted_and_unique(self, raw_lists):
        hit_lists = [sorted(SearchHit(d, pk) for d, pk in lst)
                     for lst in raw_lists]
        merged = merge_topk(hit_lists, 10)
        dists = [h.adjusted_distance for h in merged]
        assert dists == sorted(dists)
        pks = [h.pk for h in merged]
        assert len(set(pks)) == len(pks)


class TestHelpers:
    def test_hits_from_arrays_sorted(self):
        hits = hits_from_arrays(["a", "b", "c"], np.array([3.0, 1.0, 2.0]))
        assert [h.pk for h in hits] == ["b", "c", "a"]

    def test_search_result_accessors(self):
        result = SearchResult(
            hits=[SearchHit(4.0, 1), SearchHit(9.0, 2)],
            metric=MetricType.EUCLIDEAN, latency_ms=1.5)
        assert result.pks == [1, 2]
        assert result.scores == [2.0, 3.0]
        assert len(result) == 2
        assert list(result)[0].pk == 1
