"""Tests for search results and the two-phase top-k reduce."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.results import (
    HitBatch,
    ReduceStats,
    SearchHit,
    SearchResult,
    hits_from_arrays,
    merge_topk,
    merge_topk_reference,
)
from repro.core.schema import MetricType


class TestSearchHit:
    def test_ordering_by_distance(self):
        close = SearchHit(0.5, "a")
        far = SearchHit(2.0, "b")
        assert close < far

    def test_score_for_euclidean_is_sqrt(self):
        hit = SearchHit(9.0, "a")
        assert hit.score_for(MetricType.EUCLIDEAN) == 3.0

    def test_score_for_ip_negates(self):
        hit = SearchHit(-0.8, "a")
        assert hit.score_for(MetricType.INNER_PRODUCT) == 0.8


class TestMergeTopk:
    def test_merges_sorted_lists(self):
        a = [SearchHit(1.0, "a"), SearchHit(3.0, "c")]
        b = [SearchHit(2.0, "b"), SearchHit(4.0, "d")]
        merged = merge_topk([a, b], 3)
        assert [h.pk for h in merged] == ["a", "b", "c"]

    def test_deduplicates_by_pk(self):
        a = [SearchHit(1.0, "x"), SearchHit(3.0, "y")]
        b = [SearchHit(2.0, "x"), SearchHit(2.5, "z")]
        merged = merge_topk([a, b], 10)
        assert [h.pk for h in merged] == ["x", "z", "y"]
        assert merged[0].adjusted_distance == 1.0  # best copy survives

    def test_k_zero(self):
        assert merge_topk([[SearchHit(1.0, "a")]], 0) == []

    def test_empty_lists(self):
        assert merge_topk([], 5) == []
        assert merge_topk([[], []], 5) == []

    @given(st.lists(
        st.lists(st.tuples(st.floats(0, 100), st.integers(0, 40)),
                 max_size=20),
        min_size=1, max_size=5),
        st.integers(1, 15))
    def test_equals_global_sort(self, raw_lists, k):
        """Two-phase reduce == flat sort + dedup (the core invariant)."""
        hit_lists = [sorted(SearchHit(d, pk) for d, pk in lst)
                     for lst in raw_lists]
        merged = merge_topk(hit_lists, k)

        flat = sorted(h for lst in hit_lists for h in lst)
        expected = []
        seen = set()
        for hit in flat:
            if hit.pk not in seen:
                seen.add(hit.pk)
                expected.append(hit.pk)
            if len(expected) >= k:
                break
        assert [h.pk for h in merged] == expected

    @given(st.lists(st.lists(st.tuples(st.floats(0, 100),
                                       st.integers(0, 100)), max_size=15),
                    min_size=1, max_size=4))
    def test_output_sorted_and_unique(self, raw_lists):
        hit_lists = [sorted(SearchHit(d, pk) for d, pk in lst)
                     for lst in raw_lists]
        merged = merge_topk(hit_lists, 10)
        dists = [h.adjusted_distance for h in merged]
        assert dists == sorted(dists)
        pks = [h.pk for h in merged]
        assert len(set(pks)) == len(pks)


class TestHitBatch:
    def test_from_unsorted_sorts_stably(self):
        batch = HitBatch.from_unsorted(["a", "b", "c", "d"],
                                       [2.0, 1.0, 2.0, 1.0])
        assert batch.pks.tolist() == ["b", "d", "a", "c"]
        assert batch.dists.tolist() == [1.0, 1.0, 2.0, 2.0]

    def test_concat_tie_order_matches_streaming_merge(self):
        import heapq
        a = HitBatch(["a1", "a2"], [1.0, 2.0])
        b = HitBatch(["b1", "b2"], [1.0, 2.0])
        merged = HitBatch.concat([a, b])
        streamed = list(heapq.merge(a.to_hits(), b.to_hits()))
        assert [(h.pk, h.adjusted_distance) for h in merged.to_hits()] == \
            [(h.pk, h.adjusted_distance) for h in streamed]

    def test_concat_skips_empties_and_passthrough(self):
        a = HitBatch([1, 2], [0.5, 0.6])
        assert HitBatch.concat([HitBatch.empty(), a]) is a
        assert len(HitBatch.concat([])) == 0

    def test_topk_truncates_and_passthrough(self):
        batch = HitBatch([1, 2, 3], [0.1, 0.2, 0.3])
        assert batch.topk(2).pks.tolist() == [1, 2]
        assert batch.topk(5) is batch
        assert len(batch.topk(0)) == 0

    def test_sequence_protocol_materializes_native_hits(self):
        batch = HitBatch(np.asarray([7, 8], dtype=np.int64),
                         np.asarray([0.25, 0.75], dtype=np.float32))
        hit = batch[0]
        assert isinstance(hit, SearchHit)
        assert hit.pk == 7 and type(hit.pk) is int
        assert isinstance(hit.adjusted_distance, float)
        assert [h.pk for h in batch] == [7, 8]
        assert all(type(h.pk) is int for h in batch.to_hits())

    def test_eq_against_hit_list(self):
        batch = HitBatch(["a"], [1.5])
        assert batch == [SearchHit(1.5, "a")]
        assert batch != [SearchHit(2.5, "a")]

    def test_from_hits_heterogeneous_pks_stay_objects(self):
        hits = [SearchHit(0.1, 1), SearchHit(0.2, "x")]
        batch = HitBatch.from_hits(hits)
        assert batch.pks.dtype.kind == "O"
        assert batch.to_hits()[0].pk == 1


def _reference(partial_lists, k):
    return [(h.pk, h.adjusted_distance)
            for h in merge_topk_reference(partial_lists, k)]


def _vectorized(partials, k):
    return [(h.pk, h.adjusted_distance)
            for h in merge_topk(partials, k).to_hits()]


class TestVectorizedEquivalence:
    """merge_topk must stay hit-for-hit identical to the object oracle."""

    CASES = {
        "duplicate_pks_across_replicas": (
            [[(1.0, "x"), (3.0, "y")], [(2.0, "x"), (2.5, "z")],
             [(0.5, "y"), (4.0, "x")]], 10),
        "distance_ties_across_partials": (
            [[(1.0, "a"), (1.0, "b")], [(1.0, "c"), (1.0, "d")]], 4),
        "tie_between_copies_of_same_pk": (
            [[(1.0, "a")], [(1.0, "a"), (1.0, "b")]], 3),
        "k_one": ([[(2.0, 10), (3.0, 11)], [(1.0, 12)]], 1),
        "k_exceeds_total": ([[(1.0, 1)], [(2.0, 2)]], 100),
        "empty_partials_mixed_in": (
            [[], [(1.0, 5)], [], [(0.5, 6)]], 5),
        "all_empty": ([[], []], 5),
        "single_partial": ([[(0.1, 0), (0.2, 1), (0.3, 2)]], 2),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_matrix_case(self, name):
        raw, k = self.CASES[name]
        hit_lists = [[SearchHit(d, pk) for d, pk in lst] for lst in raw]
        assert _vectorized(hit_lists, k) == _reference(hit_lists, k)

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_matrix_case_via_hitbatch(self, name):
        """Same matrix with array-native partials (the hot-path shape)."""
        raw, k = self.CASES[name]
        hit_lists = [[SearchHit(d, pk) for d, pk in lst] for lst in raw]
        batches = [HitBatch.from_hits(lst) for lst in hit_lists]
        assert _vectorized(batches, k) == _reference(hit_lists, k)

    def test_k_zero_returns_empty(self):
        hits = [[SearchHit(1.0, "a")]]
        assert _vectorized(hits, 0) == _reference(hits, 0) == []

    @given(st.lists(
        st.lists(st.tuples(st.floats(0, 100), st.integers(0, 30)),
                 max_size=25),
        min_size=0, max_size=6),
        st.integers(0, 20))
    def test_property_int_pks(self, raw_lists, k):
        hit_lists = [sorted(SearchHit(d, pk) for d, pk in lst)
                     for lst in raw_lists]
        expected = _reference(hit_lists, k)
        assert _vectorized(hit_lists, k) == expected
        batches = [HitBatch.from_hits(lst) for lst in hit_lists]
        assert _vectorized(batches, k) == expected

    @given(st.lists(
        st.lists(st.tuples(st.floats(0, 10),
                           st.sampled_from(["p0", "p1", "p2", "p3"])),
                 max_size=10),
        min_size=1, max_size=4),
        st.integers(1, 8))
    def test_property_str_pks(self, raw_lists, k):
        hit_lists = [sorted(SearchHit(d, pk) for d, pk in lst)
                     for lst in raw_lists]
        batches = [HitBatch.from_hits(lst) for lst in hit_lists]
        assert _vectorized(batches, k) == _reference(hit_lists, k)

    def test_mixed_partial_kinds(self):
        """HitBatch and plain hit-list partials merge interchangeably."""
        as_list = [SearchHit(1.0, "a"), SearchHit(3.0, "c")]
        as_batch = HitBatch(["b", "a"], [2.0, 2.5])
        expected = _reference([as_list, list(as_batch)], 3)
        assert _vectorized([as_list, as_batch], 3) == expected


class TestReduceStatsEquivalence:
    """Profile counters must agree between the vectorized reduce and the
    object oracle — the dedup count in particular, where the oracle's
    short-circuit at k would undercount duplicates that sort after the
    cutoff."""

    # Cases chosen to stress the disagreement surface: duplicates that
    # sort *after* the k-th unique hit, ties, empties, k extremes.
    CASES = {
        "dups_after_cutoff": (
            [[(1.0, "a"), (2.0, "b"), (9.0, "a"), (9.5, "b")],
             [(1.5, "c"), (8.0, "c"), (10.0, "a")]], 2),
        "dups_before_cutoff": (
            [[(1.0, "x"), (1.1, "x")], [(1.05, "x"), (2.0, "y")]], 5),
        "all_duplicates_one_pk": (
            [[(1.0, "p"), (2.0, "p")], [(3.0, "p"), (4.0, "p")]], 1),
        "ties_across_partials": (
            [[(1.0, "a"), (1.0, "b")], [(1.0, "c"), (1.0, "a")]], 3),
        "empty_partials_mixed_in": ([[], [(1.0, 5)], []], 4),
        "all_empty": ([[], [], []], 3),
        "k_exceeds_total": ([[(1.0, 1), (2.0, 2)], [(1.5, 1)]], 50),
        "k_zero": ([[(1.0, "a"), (2.0, "b")]], 0),
    }

    @staticmethod
    def _run_both(raw, k):
        hit_lists = [[SearchHit(d, pk) for d, pk in lst] for lst in raw]
        batches = [HitBatch.from_hits(lst) for lst in hit_lists]
        vec_stats, ref_stats = ReduceStats(), ReduceStats()
        vec = [(h.pk, h.adjusted_distance)
               for h in merge_topk(batches, k, stats=vec_stats).to_hits()]
        ref = [(h.pk, h.adjusted_distance)
               for h in merge_topk_reference(hit_lists, k,
                                             stats=ref_stats)]
        return vec, ref, vec_stats, ref_stats

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_counters_and_hits_agree(self, name):
        raw, k = self.CASES[name]
        vec, ref, vec_stats, ref_stats = self._run_both(raw, k)
        assert vec == ref
        assert vec_stats.as_dict() == ref_stats.as_dict()

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_stats_do_not_change_hits(self, name):
        """Passing stats must not perturb either path's output."""
        raw, k = self.CASES[name]
        hit_lists = [[SearchHit(d, pk) for d, pk in lst] for lst in raw]
        batches = [HitBatch.from_hits(lst) for lst in hit_lists]
        with_stats = [(h.pk, h.adjusted_distance) for h in
                      merge_topk(batches, k, stats=ReduceStats()).to_hits()]
        assert with_stats == _vectorized(batches, k)
        ref_with = [(h.pk, h.adjusted_distance) for h in
                    merge_topk_reference(hit_lists, k, stats=ReduceStats())]
        assert ref_with == _reference(hit_lists, k)

    @given(st.lists(
        st.lists(st.tuples(st.floats(0, 100), st.integers(0, 8)),
                 max_size=20),
        min_size=0, max_size=5),
        st.integers(0, 12))
    def test_property_counter_agreement(self, raw_lists, k):
        raw = [[(d, pk) for d, pk in lst] for lst in raw_lists]
        raw = [sorted(lst) for lst in raw]
        vec, ref, vec_stats, ref_stats = self._run_both(raw, k)
        assert vec == ref
        assert vec_stats.as_dict() == ref_stats.as_dict()

    def test_counter_semantics_on_known_input(self):
        # Two batches of 2, pk "a" duplicated (its dup sorts last —
        # after the k=2 cutoff), 4 candidates in, 3 unique, 2 kept.
        raw = [[(1.0, "a"), (2.0, "b")], [(1.5, "c"), (9.0, "a")]]
        vec, ref, vec_stats, ref_stats = self._run_both(raw, 2)
        for stats in (vec_stats, ref_stats):
            assert stats.batches_merged == 2
            assert stats.candidates_in == 4
            assert stats.hits_deduped == 1
            assert stats.hits_out == 2


class TestHelpers:
    def test_hits_from_arrays_sorted(self):
        hits = hits_from_arrays(["a", "b", "c"], np.array([3.0, 1.0, 2.0]))
        assert [h.pk for h in hits] == ["b", "c", "a"]

    def test_search_result_accessors(self):
        result = SearchResult(
            hits=[SearchHit(4.0, 1), SearchHit(9.0, 2)],
            metric=MetricType.EUCLIDEAN, latency_ms=1.5)
        assert result.pks == [1, 2]
        assert result.scores == [2.0, 3.0]
        assert len(result) == 2
        assert list(result)[0].pk == 1
