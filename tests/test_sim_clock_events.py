"""Tests for the virtual clock and discrete-event loop."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.events import EventLoop


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(50.0).now() == 50.0

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(12.5)
        assert clock.now() == 12.5

    def test_advance_by(self):
        clock = VirtualClock(10.0)
        clock.advance_by(5.0)
        assert clock.now() == 15.0

    def test_cannot_go_backwards(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance_by(-1.0)


class TestEventLoop:
    def test_call_after_fires_in_order(self):
        loop = EventLoop()
        fired = []
        loop.call_after(20, lambda: fired.append("b"))
        loop.call_after(10, lambda: fired.append("a"))
        loop.run_until(30)
        assert fired == ["a", "b"]

    def test_same_time_fifo(self):
        loop = EventLoop()
        fired = []
        for tag in "abc":
            loop.call_at(5.0, lambda t=tag: fired.append(t))
        loop.run_until(5.0)
        assert fired == ["a", "b", "c"]

    def test_run_until_lands_on_target(self):
        loop = EventLoop()
        loop.run_until(42.0)
        assert loop.now() == 42.0

    def test_cancelled_event_does_not_fire(self):
        loop = EventLoop()
        fired = []
        handle = loop.call_after(10, lambda: fired.append(1))
        handle.cancel()
        loop.run_until(20)
        assert fired == []

    def test_past_scheduling_clamped_to_now(self):
        loop = EventLoop()
        loop.run_until(100)
        fired = []
        loop.call_at(10, lambda: fired.append(1))
        loop.run_for(1)
        assert fired == [1]
        assert loop.now() == 101

    def test_callbacks_can_schedule(self):
        loop = EventLoop()
        fired = []

        def outer():
            fired.append("outer")
            loop.call_after(5, lambda: fired.append("inner"))

        loop.call_after(10, outer)
        loop.run_until(20)
        assert fired == ["outer", "inner"]

    def test_call_every_fires_periodically(self):
        loop = EventLoop()
        ticks = []
        handle = loop.call_every(10, lambda: ticks.append(loop.now()))
        loop.run_until(35)
        assert ticks == [10, 20, 30]
        handle.cancel()
        loop.run_until(100)
        assert len(ticks) == 3

    def test_call_every_custom_start_delay(self):
        loop = EventLoop()
        ticks = []
        loop.call_every(10, lambda: ticks.append(loop.now()),
                        start_delay_ms=0)
        loop.run_until(25)
        assert ticks == [0, 10, 20]

    def test_call_every_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            EventLoop().call_every(0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().call_after(-1, lambda: None)

    def test_run_until_idle_drains(self):
        loop = EventLoop()
        fired = []
        loop.call_after(5, lambda: fired.append(1))
        loop.call_after(15, lambda: fired.append(2))
        count = loop.run_until_idle()
        assert count == 2 and fired == [1, 2]

    def test_run_until_idle_guards_runaway(self):
        loop = EventLoop()

        def reschedule():
            loop.call_after(1, reschedule)

        loop.call_after(1, reschedule)
        with pytest.raises(RuntimeError):
            loop.run_until_idle(max_events=100)

    def test_peek_time_skips_cancelled(self):
        loop = EventLoop()
        handle = loop.call_after(5, lambda: None)
        loop.call_after(10, lambda: None)
        handle.cancel()
        assert loop.peek_time() == 10

    def test_step_advances_clock(self):
        loop = EventLoop()
        loop.call_after(7, lambda: None)
        assert loop.step() is True
        assert loop.now() == 7
        assert loop.step() is False
