"""Tests for the four coordinators against real broker/metastore rigs."""

import numpy as np
import pytest

from repro.cluster.manu import ManuCluster
from repro.core.schema import CollectionSchema, DataType, FieldSchema, \
    MetricType
from repro.errors import (
    ClusterStateError,
    CollectionAlreadyExists,
    CollectionNotFound,
)


@pytest.fixture
def schema():
    return CollectionSchema(
        [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8)])


def rows(rng, n):
    return {"vector": rng.standard_normal((n, 8)).astype(np.float32)}


class TestRootCoordinator:
    def test_create_and_catalog(self, cluster, schema):
        cluster.root_coord.create_collection("a", schema)
        assert cluster.root_coord.has_collection("a")
        assert cluster.root_coord.list_collections() == ["a"]
        got = cluster.root_coord.get_schema("a")
        assert got == schema

    def test_duplicate_rejected(self, cluster, schema):
        cluster.root_coord.create_collection("a", schema)
        with pytest.raises(CollectionAlreadyExists):
            cluster.root_coord.create_collection("a", schema)

    def test_drop(self, cluster, schema):
        cluster.root_coord.create_collection("a", schema)
        cluster.root_coord.drop_collection("a")
        assert not cluster.root_coord.has_collection("a")
        with pytest.raises(CollectionNotFound):
            cluster.root_coord.drop_collection("a")

    def test_ddl_published_to_log(self, cluster, schema):
        cluster.root_coord.create_collection("a", schema)
        entries = cluster.broker.read(cluster.config.log.ddl_channel, 0)
        assert [e.payload.op for e in entries] == ["create_collection"]

    def test_hooks_fire(self, cluster, schema):
        created, dropped = [], []
        cluster.root_coord.on_create(lambda n, s: created.append(n))
        cluster.root_coord.on_drop(dropped.append)
        cluster.root_coord.create_collection("a", schema)
        cluster.root_coord.drop_collection("a")
        assert created == ["a"] and dropped == ["a"]


class TestDataCoordinator:
    def test_allocator_rolls_over_at_limit(self, cluster, schema):
        limit = cluster.config.segment.seal_entity_count
        first = cluster.data_coord.assign_segment("c", 0, limit - 1)
        again = cluster.data_coord.assign_segment("c", 0, 1)
        assert again == first  # exactly at limit, same segment
        rolled = cluster.data_coord.assign_segment("c", 0, 1)
        assert rolled != first

    def test_rollover_publishes_seal(self, cluster, schema):
        limit = cluster.config.segment.seal_entity_count
        first = cluster.data_coord.assign_segment("c", 0, limit)
        cluster.data_coord.assign_segment("c", 0, 1)
        entries = cluster.broker.read(cluster.config.log.coord_channel, 0)
        seals = [e.payload.payload["segment_id"] for e in entries
                 if getattr(e.payload, "kind_name", "") == "seal_segment"]
        assert first in seals

    def test_shards_get_distinct_segments(self, cluster):
        a = cluster.data_coord.assign_segment("c", 0, 1)
        b = cluster.data_coord.assign_segment("c", 1, 1)
        assert a != b

    def test_idle_sealing(self, cluster):
        segment = cluster.data_coord.assign_segment("c", 0, 5)
        idle_ms = cluster.config.segment.seal_idle_ms
        # The cluster's housekeeping timer runs check_idle periodically;
        # after the idle window the segment must have been sealed.
        cluster.loop.run_until(idle_ms * 2)
        cluster.data_coord.check_idle()
        assert cluster.data_coord.growing_backlog("c") == 0
        info = cluster.data_coord.segment_info("c", segment)
        assert info["state"] == "sealed"

    def test_seal_all(self, cluster):
        seg_a = cluster.data_coord.assign_segment("c", 0, 5)
        seg_b = cluster.data_coord.assign_segment("c", 1, 5)
        sealed = cluster.data_coord.seal_all("c")
        assert set(sealed) == {seg_a, seg_b}
        assert cluster.data_coord.growing_backlog("c") == 0

    def test_flushed_segments_tracked(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        cluster.insert("c", rows(rng, 50))
        cluster.run_for(100)
        cluster.flush("c")
        flushed = cluster.data_coord.flushed_segments("c")
        assert flushed
        info = cluster.data_coord.segment_info("c", flushed[0])
        assert info["state"] == "flushed"
        assert info["num_rows"] > 0

    def test_checkpoint_records_offsets(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        cluster.insert("c", rows(rng, 50))
        cluster.run_for(100)
        cluster.flush("c")
        checkpoint = cluster.checkpoint("c")
        assert checkpoint.flushed_segments
        assert any(v > 0 for v in checkpoint.channel_offsets.values())


class TestIndexCoordinator:
    def _loaded_collection(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        cluster.insert("c", rows(rng, 60))
        cluster.run_for(100)
        cluster.flush("c")

    def test_batch_indexing_existing_segments(self, cluster, schema, rng):
        self._loaded_collection(cluster, schema, rng)
        done = cluster.index_coord.create_index(
            "c", "vector", "IVF_FLAT", MetricType.EUCLIDEAN, {"nlist": 4})
        assert len(done) == len(cluster.data_coord.flushed_segments("c"))
        assert cluster.wait_for_indexes("c")
        for segment_id in cluster.data_coord.flushed_segments("c"):
            assert cluster.index_coord.index_route(
                "c", segment_id, "vector") is not None

    def test_stream_indexing_new_segments(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        cluster.index_coord.create_index(
            "c", "vector", "IVF_FLAT", MetricType.EUCLIDEAN, {"nlist": 4})
        cluster.insert("c", rows(rng, 60))
        cluster.run_for(100)
        cluster.flush("c")
        assert cluster.wait_for_indexes("c")

    def test_drop_index(self, cluster, schema, rng):
        self._loaded_collection(cluster, schema, rng)
        cluster.index_coord.create_index("c", "vector", "FLAT",
                                         MetricType.EUCLIDEAN)
        cluster.index_coord.drop_index("c", "vector")
        assert cluster.index_coord.index_spec("c", "vector") is None

    def test_node_membership(self, cluster):
        from repro.nodes.index_node import IndexNode
        node = IndexNode("extra", cluster.loop, cluster.broker,
                         cluster.store, cluster.config, cluster.cost_model)
        cluster.index_coord.add_node(node)
        assert "extra" in cluster.index_coord.node_names
        with pytest.raises(ClusterStateError):
            cluster.index_coord.add_node(node)
        cluster.index_coord.remove_node("extra")
        assert "extra" not in cluster.index_coord.node_names

    def test_shutdown_idle_keeps_minimum(self, cluster):
        from repro.nodes.index_node import IndexNode
        for name in ("i1", "i2"):
            cluster.index_coord.add_node(IndexNode(
                name, cluster.loop, cluster.broker, cluster.store,
                cluster.config, cluster.cost_model))
        victims = cluster.index_coord.shutdown_idle(keep=1)
        assert len(victims) == 2  # three idle nodes, keep one


class TestQueryCoordinator:
    def _ready_collection(self, cluster, schema, rng, n=80):
        cluster.create_collection("c", schema)
        cluster.insert("c", rows(rng, n))
        cluster.run_for(100)
        cluster.flush("c")

    def test_channels_assigned_on_load(self, cluster, schema):
        cluster.create_collection("c", schema)
        owners = cluster.query_coord.channel_owners("c")
        assert len(owners) == cluster.config.log.num_shards
        assert set(owners.values()) <= set(cluster.query_coord.node_names)

    def test_flushed_segment_assigned(self, cluster, schema, rng):
        self._ready_collection(cluster, schema, rng)
        distribution = cluster.query_coord.distribution("c")
        assigned = [sid for sids in distribution.values() for sid in sids]
        assert set(assigned) == set(cluster.data_coord.flushed_segments("c"))

    def test_nodes_serving(self, cluster, schema, rng):
        self._ready_collection(cluster, schema, rng)
        serving = cluster.query_coord.nodes_serving("c")
        assert serving

    def test_add_node_rebalances(self, cluster, schema, rng):
        self._ready_collection(cluster, schema, rng)
        cluster.add_query_node()
        cluster.run_for(500)
        assert cluster.num_query_nodes == 3

    def test_remove_node_preserves_data(self, cluster, schema, rng):
        self._ready_collection(cluster, schema, rng)
        before = cluster.collection_row_count("c")
        victim = cluster.query_coord.node_names[-1]
        cluster.remove_query_node(victim)
        cluster.run_for(500)
        assert cluster.collection_row_count("c") == before

    def test_cannot_remove_last_node(self, schema):
        small = ManuCluster(num_query_nodes=1)
        small.create_collection("c", schema)
        with pytest.raises(ClusterStateError):
            small.remove_query_node()

    def test_release_collection_frees_nodes(self, cluster, schema, rng):
        self._ready_collection(cluster, schema, rng)
        cluster.query_coord.release_collection("c")
        assert not cluster.query_coord.is_loaded("c")
        for node in cluster.query_coord.live_nodes():
            assert node.segments_of("c") == []
