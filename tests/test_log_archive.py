"""Tests for WAL archival and logger failure recovery."""

import numpy as np
import pytest

from repro.cluster.manu import ManuCluster
from repro.core.consistency import ConsistencyLevel
from repro.core.schema import CollectionSchema, DataType, FieldSchema
from repro.errors import StorageError
from repro.log.archive import WalArchiver
from repro.log.broker import LogBroker
from repro.log.wal import DeleteRecord, InsertRecord, TimeTickRecord
from repro.storage.object_store import ObjectStore


def insert_record(rng, ts, pks):
    return InsertRecord(ts=ts, collection="c", shard=0, segment_id="s",
                        pks=tuple(pks),
                        columns={"v": rng.standard_normal(
                            (len(pks), 4)).astype(np.float32)})


class TestWalArchiver:
    def test_chunks_written_at_threshold(self, rng):
        broker = LogBroker()
        broker.create_channel("ch")
        store = ObjectStore()
        archiver = WalArchiver(broker, store, chunk_records=3)
        archiver.attach("ch")
        for i in range(7):
            broker.publish("ch", insert_record(rng, i, [i]))
        assert archiver.chunks_written == 2  # two full chunks of 3
        archiver.flush()
        assert archiver.chunks_written == 3
        assert archiver.archived_chunks("ch") == [0, 3, 6]

    def test_roundtrip_preserves_records(self, rng):
        broker = LogBroker()
        broker.create_channel("ch")
        archiver = WalArchiver(broker, ObjectStore(), chunk_records=4)
        archiver.attach("ch")
        originals = [insert_record(rng, 10, [1, 2]),
                     DeleteRecord(ts=11, collection="c", shard=0,
                                  pks=(1,)),
                     TimeTickRecord(ts=12, source="tso")]
        for record in originals:
            broker.publish("ch", record)
        archiver.flush()
        got = archiver.read_records("ch")
        assert [off for off, _r in got] == [0, 1, 2]
        assert got[1][1] == originals[1]
        assert got[2][1] == originals[2]
        assert np.allclose(got[0][1].columns["v"],
                           originals[0].columns["v"])

    def test_read_from_offset(self, rng):
        broker = LogBroker()
        broker.create_channel("ch")
        archiver = WalArchiver(broker, ObjectStore(), chunk_records=2)
        archiver.attach("ch")
        for i in range(6):
            broker.publish("ch", TimeTickRecord(ts=i, source="t"))
        archiver.flush()
        got = archiver.read_records("ch", from_offset=4)
        assert [off for off, _r in got] == [4, 5]

    def test_restore_into_fresh_broker(self, rng):
        broker = LogBroker()
        broker.create_channel("ch")
        store = ObjectStore()
        archiver = WalArchiver(broker, store, chunk_records=2)
        archiver.attach("ch")
        for i in range(5):
            broker.publish("ch", TimeTickRecord(ts=i, source="t"))
        archiver.flush()

        fresh = LogBroker()
        restored = archiver.restore_channel(fresh, "ch")
        assert restored == 5
        entries = fresh.read("ch", 0)
        assert [e.payload.ts for e in entries] == [0, 1, 2, 3, 4]

    def test_restore_rejects_nonempty_target(self, rng):
        broker = LogBroker()
        broker.create_channel("ch")
        archiver = WalArchiver(broker, ObjectStore(), chunk_records=2)
        archiver.attach("ch")
        broker.publish("ch", TimeTickRecord(ts=1, source="t"))
        archiver.flush()
        target = LogBroker()
        target.create_channel("ch")
        target.publish("ch", "junk")
        with pytest.raises(StorageError):
            archiver.restore_channel(target, "ch")

    def test_detach_flushes(self, rng):
        broker = LogBroker()
        broker.create_channel("ch")
        archiver = WalArchiver(broker, ObjectStore(), chunk_records=100)
        archiver.attach("ch")
        broker.publish("ch", TimeTickRecord(ts=1, source="t"))
        archiver.detach("ch")
        assert archiver.archived_chunks("ch") == [0]
        broker.publish("ch", TimeTickRecord(ts=2, source="t"))
        assert len(archiver.read_records("ch")) == 1  # no longer consuming

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            WalArchiver(LogBroker(), ObjectStore(), chunk_records=0)


class TestClusterWalArchive:
    def test_cluster_archives_all_channels(self, rng):
        cluster = ManuCluster(num_query_nodes=1, enable_wal_archive=True)
        schema = CollectionSchema(
            [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8)])
        cluster.create_collection("c", schema)
        cluster.insert("c", {"vector": rng.standard_normal(
            (50, 8)).astype(np.float32)})
        cluster.run_for(300)
        cluster.wal_archiver.flush()
        archived = cluster.store.list("wal-archive/")
        assert archived
        total = sum(len(cluster.wal_archiver.read_records(
            f"wal/c/shard-{s}")) for s in range(
                cluster.config.log.num_shards))
        assert total > 0


class TestLoggerFailure:
    def test_writes_continue_after_logger_loss(self, rng):
        cluster = ManuCluster(num_query_nodes=1, num_loggers=3)
        schema = CollectionSchema(
            [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8)])
        cluster.create_collection("c", schema)
        first = rng.standard_normal((40, 8)).astype(np.float32)
        pks_a = cluster.insert("c", {"vector": first})
        cluster.run_for(200)

        cluster.fail_logger("logger-0")
        assert len(cluster.logger_service.logger_names) == 2

        second = rng.standard_normal((40, 8)).astype(np.float32)
        pks_b = cluster.insert("c", {"vector": second})
        result = cluster.search("c", second[0], 1,
                                consistency=ConsistencyLevel.STRONG)[0]
        assert result.pks[0] == pks_b[0]
        # The pk -> segment mapping survived the logger loss: deleting an
        # entity written before the failure still works.
        assert cluster.delete("c", f"_auto_id == {pks_a[0]}") == 1

    def test_scale_loggers_up(self, rng):
        cluster = ManuCluster(num_query_nodes=1, num_loggers=1)
        cluster.add_logger("logger-extra")
        assert "logger-extra" in cluster.logger_service.logger_names
        schema = CollectionSchema(
            [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8)])
        cluster.create_collection("c", schema)
        pks = cluster.insert("c", {"vector": rng.standard_normal(
            (20, 8)).astype(np.float32)})
        assert len(pks) == 20
