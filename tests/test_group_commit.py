"""Group commit on the WAL append path: bounds, acks, ordering, batches.

The logger service buffers inserts/deletes per (collection, shard) into
commit groups and flushes each group as one coalesced ``BatchRecord``
publish when a bound trips — row count, payload bytes, the virtual-time
commit window, or an explicit flush.  Writers get :class:`AckFuture`
handles resolved with the batch LSN strictly after the publish, so the
``durability-ack-before-durable`` invariant holds by construction.
"""

import numpy as np
import pytest

from repro.core.schema import CollectionSchema, DataType, FieldSchema
from repro.core.entity import validate_batch
from repro.core.tso import TimestampOracle
from repro.errors import ClusterStateError
from repro.log.broker import LogBroker
from repro.log.logger_node import (
    AckFuture,
    LoggerService,
    merge_acks,
    shard_of,
)
from repro.log.wal import (
    BatchRecord,
    DeleteRecord,
    InsertRecord,
    record_from_bytes,
    record_to_bytes,
    shard_channel,
)
from repro.sim.events import EventLoop
from repro.storage.lsm import LsmTree
from repro.storage.object_store import ObjectStore

DIM = 4


class _StaticAllocator:
    def assign_segment(self, collection, shard, num_rows):
        return f"{collection}-seg-{shard}"

    def assign_segments(self, collection, shard, num_rows):
        return [(self.assign_segment(collection, shard, num_rows),
                 num_rows)]


def _service(loop=None, rows=64, nbytes=256 * 1024, window=2.0,
             enabled=True, num_shards=1):
    broker = LogBroker()
    broker.manu_check = True   # monotonicity twin armed for every test
    now = loop.now if loop is not None else (lambda: 100.0)
    service = LoggerService(
        TimestampOracle(now), broker, ObjectStore(), _StaticAllocator(),
        num_shards=num_shards, logger_names=("log-a", "log-b"),
        loop=loop, group_commit_enabled=enabled, group_commit_rows=rows,
        group_commit_bytes=nbytes, group_commit_window_ms=window)
    service.ensure_channels("coll")
    return broker, service


_SCHEMA = CollectionSchema([
    FieldSchema("pk", DataType.INT64, is_primary=True),
    FieldSchema("vector", DataType.FLOAT_VECTOR, dim=DIM),
])


def _batch(pks):
    return validate_batch(_SCHEMA, {
        "pk": list(pks),
        "vector": np.ones((len(pks), DIM), dtype=np.float32)})


def _batches_on(broker, shard=0):
    return [e.payload for e in broker.read(shard_channel("coll", shard), 0)
            if isinstance(e.payload, BatchRecord)]


class TestFlushBounds:
    """One test per flush trigger; the drained flush log names it."""

    def test_row_bound_trips(self):
        broker, service = _service(rows=8, window=0.0)
        ack = service.insert_async("coll", _batch(range(8)))
        assert ack.done and ack.rows == 8
        reasons = [entry[0] for entry in service.drain_flush_log()]
        assert reasons == ["rows"]
        assert len(_batches_on(broker)) == 1

    def test_below_row_bound_stays_buffered(self):
        broker, service = _service(rows=8, window=0.0)
        ack = service.insert_async("coll", _batch(range(7)))
        assert not ack.done
        assert service.pending_group_rows() == 7
        assert _batches_on(broker) == []

    def test_byte_bound_trips(self):
        # 3 rows ~ 3*(8 + 4*4) bytes > 64.
        broker, service = _service(rows=10_000, nbytes=64, window=0.0)
        ack = service.insert_async("coll", _batch(range(3)))
        assert ack.done
        reasons = [entry[0] for entry in service.drain_flush_log()]
        assert reasons == ["bytes"]

    def test_window_bound_trips(self):
        loop = EventLoop()
        broker, service = _service(loop=loop, rows=10_000, window=5.0)
        ack = service.insert_async("coll", _batch(range(3)))
        assert not ack.done
        loop.run_for(4.0)
        assert not ack.done     # window not reached yet
        loop.run_for(2.0)
        assert ack.done and ack.rows == 3
        (reason, records, rows, _nbytes, age) = \
            service.drain_flush_log()[0]
        assert reason == "window"
        assert records == 1 and rows == 3
        assert age == pytest.approx(5.0)

    def test_stale_window_timer_is_ignored(self):
        """A row-bound flush in the middle of the window must invalidate
        the armed timer: when it later fires, the (new) group is either
        empty or a different epoch — no spurious publish."""
        loop = EventLoop()
        broker, service = _service(loop=loop, rows=4, window=5.0)
        service.insert_async("coll", _batch(range(4)))   # rows flush
        loop.run_for(10.0)
        reasons = [entry[0] for entry in service.drain_flush_log()]
        assert reasons == ["rows"]
        assert len(_batches_on(broker)) == 1

    def test_explicit_flush(self):
        broker, service = _service(rows=10_000, window=0.0)
        ack = service.insert_async("coll", _batch(range(3)))
        service.flush_all_groups()
        assert ack.done
        reasons = [entry[0] for entry in service.drain_flush_log()]
        assert reasons == ["explicit"]

    def test_sync_insert_flushes_inline(self):
        broker, service = _service(rows=10_000, window=0.0)
        ts = service.insert("coll", _batch(range(5)))
        [batch] = _batches_on(broker)
        assert ts == batch.ts
        assert service.pending_group_rows() == 0
        reasons = [entry[0] for entry in service.drain_flush_log()]
        assert reasons == ["explicit"]

    def test_disabled_falls_back_to_record_at_a_time(self):
        broker, service = _service(enabled=False)
        service.insert("coll", _batch(range(5)))
        entries = broker.read(shard_channel("coll", 0), 0)
        assert all(isinstance(e.payload, InsertRecord) for e in entries)
        with pytest.raises(ClusterStateError):
            service.insert_async("coll", _batch(range(5)))


class TestAckFutures:
    def test_ack_lsn_equals_batch_publish_lsn(self):
        broker, service = _service(rows=4, window=0.0)
        ack = service.insert_async("coll", _batch(range(4)))
        [batch] = _batches_on(broker)
        assert ack.result() == batch.ts
        assert batch.ts == max(r.ts for r in batch.records)

    def test_unresolved_future_raises(self):
        future = AckFuture()
        assert not future.done
        with pytest.raises(ClusterStateError):
            future.result()
        with pytest.raises(ClusterStateError):
            future.rows
        future.set_result(7, 2)
        assert future.result() == 7 and future.rows == 2
        with pytest.raises(ClusterStateError):
            future.set_result(8, 1)   # double resolve

    def test_done_callback_runs_once_resolved(self):
        fired = []
        future = AckFuture()
        future.add_done_callback(lambda f: fired.append(f.result()))
        assert fired == []
        future.set_result(5, 1)
        assert fired == [5]
        future.add_done_callback(lambda f: fired.append(f.result()))
        assert fired == [5, 5]   # immediate when already done

    def test_merge_acks_fans_in(self):
        children = [AckFuture(), AckFuture()]
        merged = merge_acks(children)
        assert not merged.done
        children[0].set_result(10, 3)
        assert not merged.done
        children[1].set_result(20, 4)
        assert merged.done
        assert merged.result() == 20 and merged.rows == 7

    def test_merge_acks_empty_resolves_immediately(self):
        merged = merge_acks([])
        assert merged.done and merged.rows == 0

    def test_multi_shard_async_insert_merges_shard_acks(self):
        broker, service = _service(rows=2, window=0.0, num_shards=2)
        pks = list(range(16))
        ack = service.insert_async("coll", _batch(pks))
        assert ack.done
        assert ack.rows == 16
        per_shard = [_batches_on(broker, s) for s in range(2)]
        assert all(batches for batches in per_shard)
        assert ack.result() == max(b.ts for batches in per_shard
                                   for b in batches)


class TestBatchSemantics:
    def test_buffered_delete_sees_buffered_insert(self):
        """A delete buffered after an insert of the same pk, in the same
        group, must count it as existing (flush-time overlay)."""
        broker, service = _service(rows=10_000, window=0.0)
        service.insert_async("coll", _batch([1, 2, 3]))
        ack = service.delete_async("coll", (2, 99))
        service.flush_all_groups()
        assert ack.rows == 1   # pk 2 existed (buffered), 99 never did
        [batch] = _batches_on(broker)
        kinds = [type(r).__name__ for r in batch.records]
        assert kinds == ["InsertRecord", "DeleteRecord"]
        assert batch.records[1].pks == (2,)
        assert service.lookup_segment("coll", 2) is None
        assert service.lookup_segment("coll", 1) is not None

    def test_all_missing_delete_acks_zero_rows(self):
        broker, service = _service(rows=10_000, window=0.0)
        ack = service.delete_async("coll", (50, 51))
        service.flush_all_groups()
        assert ack.done and ack.rows == 0
        assert _batches_on(broker) == []

    def test_inner_lsns_strictly_ascend(self):
        broker, service = _service(rows=10_000, window=0.0)
        service.insert_async("coll", _batch([1, 2]))
        service.insert_async("coll", _batch([3, 4]))
        service.delete_async("coll", (1,))
        service.flush_all_groups()
        [batch] = _batches_on(broker)
        inner_ts = [r.ts for r in batch.records]
        assert inner_ts == sorted(inner_ts)
        assert len(set(inner_ts)) == len(inner_ts)

    def test_per_shard_ordering_across_flushes(self):
        """Across many small async writes and flush triggers, each shard
        channel's envelopes and inner records stay LSN-ordered (the
        broker's armed MANU_CHECK would raise otherwise; this asserts it
        end to end)."""
        rng = np.random.default_rng(9)
        broker, service = _service(rows=8, window=0.0, num_shards=2)
        next_pk = 0
        for _ in range(20):
            n = int(rng.integers(1, 7))
            service.insert_async(
                "coll", _batch(range(next_pk, next_pk + n)))
            next_pk += n
        service.flush_all_groups()
        for shard in range(2):
            seen = []
            for entry in broker.read(shard_channel("coll", shard), 0):
                payload = entry.payload
                assert isinstance(payload, BatchRecord)
                for record in payload.records:
                    assert all(shard_of(pk, 2) == shard
                               for pk in record.pks)
                    seen.append(record.ts)
                assert payload.ts == max(r.ts for r in payload.records)
            assert seen == sorted(seen)

    def test_counters_split_batches_and_rows(self):
        broker, service = _service(rows=4, window=0.0)
        service.insert_async("coll", _batch(range(4)))
        service.insert_async("coll", _batch(range(4, 8)))
        batches = sum(lg.batches_published
                      for _name, lg in service.loggers())
        rows = sum(lg.rows_published for _name, lg in service.loggers())
        assert batches == 2 and rows == 8


class TestBatchRecordWire:
    def test_round_trip(self):
        inner = (
            InsertRecord(ts=11, collection="c", shard=0, segment_id="s0",
                         pks=(1, 2),
                         columns={"vector": np.ones((2, DIM),
                                                    np.float32)}),
            DeleteRecord(ts=12, collection="c", shard=0, pks=(1,)),
        )
        batch = BatchRecord(ts=12, collection="c", shard=0,
                            records=inner)
        assert batch.num_records == 2 and batch.num_rows == 3
        decoded = record_from_bytes(record_to_bytes(batch))
        assert isinstance(decoded, BatchRecord)
        assert decoded.ts == 12
        assert decoded.num_records == 2
        assert isinstance(decoded.records[0], InsertRecord)
        assert decoded.records[0].pks == (1, 2)
        np.testing.assert_array_equal(
            decoded.records[0].columns["vector"],
            inner[0].columns["vector"])
        assert isinstance(decoded.records[1], DeleteRecord)
        assert decoded.records[1].pks == (1,)


class TestLsmBatchedOps:
    def test_put_many_single_limit_check(self):
        tree = LsmTree(memtable_limit=4)
        # 6 entries in one batch: the limit is checked once, after the
        # batch, so exactly one flush happens (not one mid-batch).
        tree.put_many((f"k{i}", f"s{i}") for i in range(6))
        assert tree.num_tables == 1
        for i in range(6):
            assert tree.get(f"k{i}") == f"s{i}".encode()

    def test_delete_many_tombstones(self):
        tree = LsmTree(memtable_limit=100)
        tree.put_many((f"k{i}", "v") for i in range(4))
        tree.delete_many(["k1", "k3"])
        assert tree.get("k1") is None and tree.get("k3") is None
        assert tree.get("k0") is not None
