"""Tests for the modularized bucketer x compressor framework."""

import itertools

import numpy as np
import pytest

from repro.core.schema import MetricType
from repro.errors import IndexBuildError
from repro.index.composite import (
    CompositeIndex,
    GraphBucketer,
    ImiBucketer,
    KMeansBucketer,
    NoneCompressor,
    PqCompressor,
    RqCompressor,
    SqCompressor,
)
from repro.index.flat import FlatIndex

DIM = 32


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(8)
    centers = rng.standard_normal((12, DIM)).astype(np.float32) * 5
    assign = rng.integers(0, 12, 1200)
    vectors = centers[assign] + rng.standard_normal(
        (1200, DIM)).astype(np.float32)
    queries = vectors[rng.choice(1200, 15, replace=False)]
    return vectors, queries


@pytest.fixture(scope="module")
def truth(data):
    vectors, queries = data
    flat = FlatIndex(MetricType.EUCLIDEAN, DIM)
    flat.build(vectors)
    ids, _ = flat.search(queries, 10)
    return ids


ALL_COMBOS = list(itertools.product(("kmeans", "imi", "graph"),
                                    ("none", "sq", "pq", "rq")))


@pytest.mark.parametrize("bucketer,compressor", ALL_COMBOS)
class TestAllCombinations:
    def test_recall_reasonable(self, bucketer, compressor, data, truth):
        vectors, queries = data
        index = CompositeIndex(MetricType.EUCLIDEAN, DIM,
                               bucketer=bucketer, compressor=compressor,
                               nlist=24, nprobe=8, ksub=8, m=8, stages=4)
        index.build(vectors)
        ids, _ = index.search(queries, 10)
        hits = sum(len(set(map(int, r)) & set(map(int, t)))
                   for r, t in zip(ids, truth))
        recall = hits / truth.size
        floor = 0.7 if compressor in ("none", "sq") else 0.35
        assert recall >= floor, \
            f"{bucketer} x {compressor}: recall {recall}"

    def test_stats_counted_on_right_path(self, bucketer, compressor, data):
        vectors, queries = data
        index = CompositeIndex(MetricType.EUCLIDEAN, DIM,
                               bucketer=bucketer, compressor=compressor,
                               nlist=24, nprobe=4, ksub=8)
        index.build(vectors)
        index.search(queries[:2], 5)
        stats = index.stats
        if compressor == "none":
            assert stats.quantized_comparisons == 0
            assert stats.float_comparisons > 0
        else:
            assert stats.quantized_comparisons > 0


class TestCompression:
    def test_compression_shrinks_memory(self, data):
        vectors, _ = data
        sizes = {}
        for compressor in ("none", "sq", "pq"):
            index = CompositeIndex(MetricType.EUCLIDEAN, DIM,
                                   compressor=compressor, m=8)
            index.build(vectors)
            sizes[compressor] = index.memory_bytes_estimate()
        assert sizes["sq"] * 4 == sizes["none"]
        assert sizes["pq"] < sizes["sq"]

    def test_describe(self):
        index = CompositeIndex(MetricType.EUCLIDEAN, DIM,
                               bucketer="graph", compressor="rq")
        assert index.describe() == "graph x rq"


class TestValidation:
    def test_unknown_bucketer(self):
        with pytest.raises(IndexBuildError):
            CompositeIndex(MetricType.EUCLIDEAN, DIM, bucketer="magic")

    def test_unknown_compressor(self):
        with pytest.raises(IndexBuildError):
            CompositeIndex(MetricType.EUCLIDEAN, DIM, compressor="magic")

    def test_imi_requires_euclidean(self):
        with pytest.raises(IndexBuildError):
            CompositeIndex(MetricType.INNER_PRODUCT, DIM, bucketer="imi")

    def test_imi_requires_even_dim(self, data):
        index = CompositeIndex(MetricType.EUCLIDEAN, 33, bucketer="imi")
        with pytest.raises(IndexBuildError):
            index.build(np.zeros((10, 33), dtype=np.float32))


class TestBucketers:
    def test_kmeans_probe_order(self, data):
        vectors, queries = data
        from repro.index.base import SearchStats
        bucketer = KMeansBucketer(MetricType.EUCLIDEAN, nlist=16)
        assignments = bucketer.fit(vectors)
        assert assignments.shape == (len(vectors),)
        probes = bucketer.probe(queries[0], 4, SearchStats())
        assert len(probes) == 4
        assert len(set(probes)) == 4
        # The query's own bucket (it is a database vector) is probed first.
        own = assignments[np.flatnonzero(
            (vectors == queries[0]).all(axis=1))[0]]
        assert probes[0] == own

    def test_imi_cells_cover_everything(self, data):
        vectors, _ = data
        bucketer = ImiBucketer(MetricType.EUCLIDEAN, ksub=8)
        assignments = bucketer.fit(vectors)
        assert (assignments >= 0).all()
        assert assignments.max() + 1 == bucketer.num_buckets

    def test_graph_probe_returns_valid_buckets(self, data):
        vectors, queries = data
        from repro.index.base import SearchStats
        bucketer = GraphBucketer(MetricType.EUCLIDEAN, nlist=32)
        bucketer.fit(vectors)
        probes = bucketer.probe(queries[0], 6, SearchStats())
        assert all(0 <= b < bucketer.num_buckets for b in probes)


class TestCompressors:
    @pytest.mark.parametrize("cls,kwargs", [
        (NoneCompressor, {}),
        (SqCompressor, {"dim": DIM}),
        (PqCompressor, {"dim": DIM, "m": 8}),
        (RqCompressor, {"dim": DIM, "stages": 4}),
    ])
    def test_roundtrip_shape(self, cls, kwargs, data):
        vectors, _ = data
        compressor = cls(**kwargs)
        compressor.train(vectors)
        decoded = compressor.decode(compressor.encode(vectors[:20]))
        assert decoded.shape == (20, DIM)
        # Reconstruction stays in the data's ballpark.
        err = np.mean((decoded - vectors[:20]) ** 2)
        scale = np.mean(vectors[:20] ** 2)
        assert err <= scale
