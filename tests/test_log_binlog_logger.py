"""Tests for binlog files and the logger service."""

import numpy as np
import pytest

from repro.core.entity import validate_batch
from repro.core.schema import CollectionSchema, DataType, FieldSchema
from repro.core.tso import TimestampOracle
from repro.errors import ClusterStateError, ObjectNotFound, StorageError
from repro.log.binlog import BinlogReader, BinlogWriter
from repro.log.broker import LogBroker
from repro.log.logger_node import LoggerService, shard_bucket_key, shard_of
from repro.log.wal import BatchRecord, DeleteRecord, InsertRecord, \
    shard_channel
from repro.storage.object_store import ObjectStore


class TestBinlog:
    def test_write_read_roundtrip(self, rng):
        store = ObjectStore()
        writer = BinlogWriter(store)
        reader = BinlogReader(store)
        vectors = rng.standard_normal((20, 8)).astype(np.float32)
        prices = rng.uniform(0, 10, 20).tolist()
        manifest = writer.write_segment("coll", "seg-1", list(range(20)),
                                        {"vector": vectors,
                                         "price": prices}, max_lsn=42)
        assert manifest.num_rows == 20
        assert manifest.max_lsn == 42
        got = reader.read_manifest("coll", "seg-1")
        assert got.pks == tuple(range(20))
        assert np.allclose(reader.read_field("coll", "seg-1", "vector"),
                           vectors)
        assert reader.read_field("coll", "seg-1", "price") == \
            pytest.approx(prices)

    def test_column_isolation_no_read_amplification(self, rng):
        """Reading one field fetches only that field's blob."""
        store = ObjectStore()
        writer = BinlogWriter(store)
        vectors = rng.standard_normal((10, 8)).astype(np.float32)
        writer.write_segment("coll", "s", list(range(10)),
                             {"vector": vectors,
                              "price": list(range(10))}, 1)
        before = store.stats.bytes_read
        BinlogReader(store).read_field("coll", "s", "price")
        read = store.stats.bytes_read - before
        assert read < vectors.nbytes  # far less than the vector column

    def test_ragged_column_rejected(self, rng):
        writer = BinlogWriter(ObjectStore())
        with pytest.raises(StorageError):
            writer.write_segment("c", "s", [1, 2], {
                "vector": rng.standard_normal((3, 4)).astype(np.float32)},
                1)

    def test_list_and_delete_segments(self, rng):
        store = ObjectStore()
        writer = BinlogWriter(store)
        reader = BinlogReader(store)
        for seg in ("s1", "s2"):
            writer.write_segment("coll", seg, [1],
                                 {"v": np.ones((1, 4), np.float32)}, 1)
        assert reader.list_segments("coll") == ["s1", "s2"]
        assert reader.segment_exists("coll", "s1")
        reader.delete_segment("coll", "s1")
        assert reader.list_segments("coll") == ["s2"]
        with pytest.raises(ObjectNotFound):
            reader.read_manifest("coll", "s1")


class _StaticAllocator:
    """Deterministic per-shard segment naming for logger tests."""

    def assign_segment(self, collection, shard, num_rows):
        return f"{collection}-seg-{shard}"

    def assign_segments(self, collection, shard, num_rows):
        return [(self.assign_segment(collection, shard, num_rows),
                 num_rows)]


@pytest.fixture
def logger_setup():
    broker = LogBroker()
    tso = TimestampOracle(lambda: 100.0)
    store = ObjectStore()
    service = LoggerService(tso, broker, store, _StaticAllocator(),
                            num_shards=2,
                            logger_names=("log-a", "log-b"))
    service.ensure_channels("coll")
    schema = CollectionSchema([
        FieldSchema("pk", DataType.INT64, is_primary=True),
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=4),
    ])
    return broker, service, schema


def _insert(service, schema, pks):
    batch = validate_batch(schema, {
        "pk": pks,
        "vector": np.ones((len(pks), 4), dtype=np.float32)})
    return service.insert("coll", batch)


def _flatten(entries):
    """Expand group-commit BatchRecord envelopes into logical records."""
    for entry in entries:
        if isinstance(entry.payload, BatchRecord):
            yield from entry.payload.records
        else:
            yield entry.payload


class TestLoggerService:
    def test_insert_publishes_per_shard(self, logger_setup):
        broker, service, schema = logger_setup
        _insert(service, schema, list(range(40)))
        total = 0
        for shard in range(2):
            entries = broker.read(shard_channel("coll", shard), 0)
            for record in _flatten(entries):
                assert isinstance(record, InsertRecord)
                assert record.shard == shard
                assert all(shard_of(pk, 2) == shard
                           for pk in record.pks)
                total += record.num_rows
        assert total == 40

    def test_lsn_monotone_across_inserts(self, logger_setup):
        _broker, service, schema = logger_setup
        ts1 = _insert(service, schema, [1, 2, 3])
        ts2 = _insert(service, schema, [4, 5, 6])
        assert ts2 > ts1

    def test_mapping_lookup(self, logger_setup):
        _broker, service, schema = logger_setup
        _insert(service, schema, [7])
        shard = shard_of(7, 2)
        assert service.lookup_segment("coll", 7) == f"coll-seg-{shard}"
        assert service.lookup_segment("coll", 999) is None

    def test_delete_only_existing_pks(self, logger_setup):
        broker, service, schema = logger_setup
        _insert(service, schema, [1, 2, 3])
        _ts, deleted = service.delete("coll", (2, 999))
        assert deleted == 1
        records = []
        for shard in range(2):
            for record in _flatten(
                    broker.read(shard_channel("coll", shard), 0)):
                if isinstance(record, DeleteRecord):
                    records.append(record)
        assert len(records) == 1 and records[0].pks == (2,)
        assert service.lookup_segment("coll", 2) is None

    def test_delete_all_missing_publishes_nothing(self, logger_setup):
        broker, service, schema = logger_setup
        _insert(service, schema, [1])
        before = sum(broker.end_offset(shard_channel("coll", s))
                     for s in range(2))
        _ts, deleted = service.delete("coll", (50, 51))
        after = sum(broker.end_offset(shard_channel("coll", s))
                    for s in range(2))
        assert deleted == 0 and after == before

    def test_shard_routing_via_ring(self, logger_setup):
        _broker, service, schema = logger_setup
        for shard in range(2):
            owner = service.logger_for_shard("coll", shard)
            assert owner.name in ("log-a", "log-b")

    def test_add_remove_logger(self, logger_setup):
        _broker, service, schema = logger_setup
        service.add_logger("log-c")
        assert "log-c" in service.logger_names
        with pytest.raises(ClusterStateError):
            service.add_logger("log-c")
        service.remove_logger("log-c")
        assert "log-c" not in service.logger_names
        with pytest.raises(ClusterStateError):
            service.remove_logger("log-zzz")

    def test_cannot_remove_last_logger(self):
        broker = LogBroker()
        service = LoggerService(TimestampOracle(lambda: 0.0), broker,
                                ObjectStore(), _StaticAllocator(),
                                num_shards=1, logger_names=("solo",))
        with pytest.raises(ClusterStateError):
            service.remove_logger("solo")

    def test_mapping_survives_logger_churn(self, logger_setup):
        """Shard mapping state is keyed by shard, not by logger."""
        _broker, service, schema = logger_setup
        _insert(service, schema, [11, 12, 13])
        service.add_logger("log-c")
        service.remove_logger("log-a")
        assert service.lookup_segment("coll", 11) is not None

    def test_shard_of_stable(self):
        assert shard_of(123, 4) == shard_of(123, 4)
        assert 0 <= shard_of("string-key", 4) < 4

    def test_bucket_key_format(self):
        assert shard_bucket_key("c", 1) == "c/shard-1"
