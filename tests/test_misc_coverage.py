"""Final coverage batch: behaviours not exercised elsewhere."""

import numpy as np
import pytest

from repro import Collection, CollectionSchema, DataType, FieldSchema, \
    connect, connections
from repro.cluster.manu import ManuCluster
from repro.core.consistency import ConsistencyLevel
from repro.core.results import SearchHit, SearchResult
from repro.core.schema import MetricType
from repro.index.composite import CompositeIndex
from repro.index.tiered import TieredIndex
from repro.log.timetick import TimeTickEmitter


@pytest.fixture
def schema():
    return CollectionSchema(
        [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8)])


class TestSessionConsistencyViaProxy:
    def test_session_sees_own_writes_without_staleness(self, schema, rng):
        """SESSION reads wait exactly until the session's last write is
        consumed, independent of any staleness setting."""
        cluster = ManuCluster(num_query_nodes=1, num_proxies=1)
        cluster.create_collection("c", schema)
        proxy = cluster.proxies[0]
        data = {"vector": rng.standard_normal((10, 8)).astype(np.float32)}
        pks = proxy.insert("c", data)
        result = proxy.search("c", data["vector"][0], 1,
                              consistency=ConsistencyLevel.SESSION,
                              staleness_ms=0.0)[0]
        assert result.pks[0] == pks[0]

    def test_fresh_session_never_waits(self, schema, rng):
        cluster = ManuCluster(num_query_nodes=1, num_proxies=2)
        cluster.create_collection("c", schema)
        writer, reader = cluster.proxies
        writer.insert("c", {"vector": rng.standard_normal(
            (5, 8)).astype(np.float32)})
        # The reading proxy has no session writes: guarantee is 0.
        result = reader.search("c", np.zeros(8, dtype=np.float32), 1,
                               consistency=ConsistencyLevel.SESSION)[0]
        assert result.consistency_wait_ms == 0.0


class TestCollectionSurface:
    def test_num_entities_reflects_deletes(self, schema, rng):
        cluster = connect("cov", num_query_nodes=1)
        try:
            coll = Collection("c", schema, using="cov")
            pks = coll.insert({"vector": rng.standard_normal(
                (20, 8)).astype(np.float32)})
            cluster.run_for(200)
            assert coll.num_entities() == 20
            coll.delete(f"_auto_id in [{pks[0]}, {pks[1]}]")
            cluster.run_for(200)
            assert coll.num_entities() == 18
        finally:
            connections.disconnect("cov")

    def test_search_result_distances_property(self):
        result = SearchResult(hits=[SearchHit(1.0, "a"),
                                    SearchHit(2.0, "b")],
                              metric=MetricType.EUCLIDEAN)
        assert result.distances == [1.0, 2.0]


class TestQueryNodePlacementSignals:
    def test_memory_bytes_positive_after_load(self, schema, rng):
        cluster = ManuCluster(num_query_nodes=1)
        cluster.create_collection("c", schema)
        cluster.insert("c", {"vector": rng.standard_normal(
            (50, 8)).astype(np.float32)})
        cluster.run_for(200)
        node = cluster.query_coord.live_nodes()[0]
        assert node.memory_bytes() > 0
        assert node.num_rows("c") == 50
        assert node.num_rows("other") == 0


class TestLoggerMappingPersistence:
    def test_flush_mappings_persists_sstables(self, schema, rng):
        cluster = ManuCluster(num_query_nodes=1)
        cluster.create_collection("c", schema)
        cluster.insert("c", {"vector": rng.standard_normal(
            (30, 8)).astype(np.float32)})
        cluster.logger_service.flush_mappings()
        assert cluster.store.list("mapping/c/")
        assert cluster.logger_service.lookup_segment("c", 1) is not None


class TestTimeTickChannelManagement:
    def test_remove_channel_stops_its_ticks(self):
        from repro.core.tso import TimestampOracle
        from repro.log.broker import LogBroker
        from repro.sim.events import EventLoop
        loop = EventLoop()
        broker = LogBroker(loop)
        broker.create_channel("a")
        broker.create_channel("b")
        emitter = TimeTickEmitter(loop, broker, TimestampOracle(loop.now),
                                  10.0, channels=["a", "b"])
        emitter.start()
        loop.run_until(25)
        emitter.remove_channel("b")
        loop.run_until(55)
        emitter.stop()
        assert broker.end_offset("a") == 5
        assert broker.end_offset("b") == 2
        assert emitter.ticks_emitted == 5


class TestIndexExtras:
    def test_composite_nprobe_override(self, rng):
        data = rng.standard_normal((400, 16)).astype(np.float32)
        index = CompositeIndex(MetricType.EUCLIDEAN, 16, nlist=16,
                               nprobe=2)
        index.build(data)
        index.search(data[:3], 5, nprobe=16)
        wide = index.stats.float_comparisons
        index.search(data[:3], 5, nprobe=2)
        narrow = index.stats.float_comparisons
        assert wide > narrow

    def test_tiered_hot_hit_fraction(self, rng):
        data = rng.standard_normal((500, 16)).astype(np.float32)
        index = TieredIndex(MetricType.EUCLIDEAN, 16, hot_fraction=0.5,
                            nprobe=8)
        index.build(data)
        fraction = index.hot_hit_fraction(data[:10], 5)
        assert 0.0 <= fraction <= 1.0
        assert fraction > 0.2  # half the data is hot

    def test_flat_incremental_add(self, rng):
        from repro.index.flat import FlatIndex
        index = FlatIndex(MetricType.EUCLIDEAN, 8)
        index.add(rng.standard_normal((5, 8)).astype(np.float32))
        index.add(rng.standard_normal((3, 8)).astype(np.float32))
        assert index.ntotal == 8
        vec = index.reconstruct(6)
        ids, _ = index.search(vec, 1)
        assert ids[0][0] == 6
