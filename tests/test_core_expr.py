"""Tests for the boolean filter expression engine."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.expr import FilterExpression, fields_referenced, parse
from repro.errors import ExpressionError


@pytest.fixture
def columns():
    return {
        "price": np.array([10.0, 50.0, 99.0, 150.0]),
        "stock": np.array([0, 5, 10, 2]),
        "label": np.array(["book", "food", "book", "cloth"]),
        "active": np.array([True, False, True, True]),
    }


def mask(text, columns, n=4):
    return FilterExpression(text).mask(columns, n).tolist()


class TestParsing:
    def test_simple_comparison(self):
        assert parse("price > 10") is not None

    def test_empty_rejected(self):
        with pytest.raises(ExpressionError):
            parse("   ")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ExpressionError):
            parse("price > 10 20")

    def test_illegal_char_rejected(self):
        with pytest.raises(ExpressionError):
            parse("price @ 10")

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(ExpressionError):
            parse("(price > 10")

    def test_in_list_literals_only(self):
        with pytest.raises(ExpressionError):
            parse("label in [other_field]")

    def test_fields_referenced(self):
        ast = parse("price > 10 and (label in ['a'] or not active)")
        assert fields_referenced(ast) == {"price", "label", "active"}


class TestEvaluation:
    def test_comparison_ops(self, columns):
        assert mask("price > 50", columns) == [False, False, True, True]
        assert mask("price >= 50", columns) == [False, True, True, True]
        assert mask("price < 50", columns) == [True, False, False, False]
        assert mask("price == 99", columns) == [False, False, True, False]
        assert mask("price != 99", columns) == [True, True, False, True]

    def test_chained_comparison(self, columns):
        assert mask("10 < price < 100", columns) == \
            [False, True, True, False]

    def test_and_or_not(self, columns):
        assert mask("price > 20 and stock > 3", columns) == \
            [False, True, True, False]
        assert mask("price > 120 or stock == 0", columns) == \
            [True, False, False, True]
        assert mask("not price > 50", columns) == \
            [True, True, False, False]

    def test_in_list(self, columns):
        assert mask("label in ['book', 'cloth']", columns) == \
            [True, False, True, True]
        assert mask("label not in ['book']", columns) == \
            [False, True, False, True]

    def test_bare_boolean_field(self, columns):
        assert mask("active", columns) == [True, False, True, True]
        assert mask("not active", columns) == [False, True, False, False]

    def test_like_patterns(self, columns):
        assert mask("label like 'boo%'", columns) == \
            [True, False, True, False]
        assert mask("label like '%ood'", columns) == \
            [False, True, False, False]
        assert mask("label like '%o%'", columns) == \
            [True, True, True, True]
        assert mask("label like 'food'", columns) == \
            [False, True, False, False]

    def test_parentheses(self, columns):
        assert mask("(price > 120 or stock == 0) and active", columns) == \
            [True, False, False, True]

    def test_operator_precedence_and_binds_tighter(self, columns):
        # a or b and c == a or (b and c)
        got = mask("price > 120 or stock > 3 and active", columns)
        assert got == [False, False, True, True]

    def test_unknown_field_raises(self, columns):
        with pytest.raises(ExpressionError):
            mask("missing > 1", columns)

    def test_non_boolean_field_as_boolean_raises(self, columns):
        with pytest.raises(ExpressionError):
            mask("price", columns)

    def test_wrong_length_column_raises(self):
        with pytest.raises(ExpressionError):
            FilterExpression("x > 1").mask({"x": np.array([1, 2])}, 3)

    def test_empty_in_list(self, columns):
        assert mask("label in []", columns) == [False] * 4

    def test_string_escapes(self):
        cols = {"s": np.array(['he"llo', "plain"])}
        got = FilterExpression('s == "he\\"llo"').mask(cols, 2)
        assert got.tolist() == [True, False]


class TestProperties:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
           st.floats(-1e6, 1e6))
    def test_threshold_partition(self, values, threshold):
        """x > t and x <= t partition every row."""
        cols = {"x": np.array(values)}
        n = len(values)
        gt = FilterExpression(f"x > {threshold!r}").mask(cols, n)
        le = FilterExpression(f"x <= {threshold!r}").mask(cols, n)
        assert (gt ^ le).all()

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1,
                    max_size=30))
    def test_in_complement(self, labels):
        cols = {"label": np.array(labels)}
        n = len(labels)
        inside = FilterExpression("label in ['a', 'b']").mask(cols, n)
        outside = FilterExpression("label not in ['a', 'b']").mask(cols, n)
        assert (inside ^ outside).all()

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=30))
    def test_de_morgan(self, values):
        cols = {"x": np.array(values)}
        n = len(values)
        lhs = FilterExpression("not (x > 0 and x < 50)").mask(cols, n)
        rhs = FilterExpression("not x > 0 or not x < 50").mask(cols, n)
        assert (lhs == rhs).all()
