"""Tests for attribute-filter strategies and multi-vector search."""

import numpy as np
import pytest

from repro.config import SegmentConfig
from repro.core.expr import FilterExpression
from repro.core.filtering import (
    FilterStrategy,
    choose_strategy,
    filtered_search,
)
from repro.core.multivector import (
    MultiVectorQuery,
    MultiVectorStrategy,
    choose_strategy as mv_choose,
    search_segment,
)
from repro.core.schema import CollectionSchema, DataType, FieldSchema, \
    MetricType
from repro.core.segment import Segment
from repro.index.ivf import IvfFlatIndex


@pytest.fixture
def filter_segment(rng):
    schema = CollectionSchema([
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8),
        FieldSchema("price", DataType.FLOAT),
    ])
    segment = Segment("s", "c", schema,
                      SegmentConfig(slice_size=64, temp_index_nlist=4))
    n = 256
    segment.append(list(range(n)), {
        "vector": rng.standard_normal((n, 8)).astype(np.float32),
        "price": np.arange(n, dtype=np.float64),
    }, 1)
    segment.seal()
    index = IvfFlatIndex(MetricType.EUCLIDEAN, 8, nlist=16, nprobe=4)
    index.build(segment.column("vector"))
    segment.attach_index("vector", index)
    return segment


class TestStrategyChoice:
    def test_selective_filter_prefers_pre(self, filter_segment):
        expr = FilterExpression("price < 3")  # ~1% pass
        plan = choose_strategy(filter_segment, "vector", 10, expr)
        assert plan.strategy is FilterStrategy.PRE_FILTER
        assert plan.selectivity == pytest.approx(3 / 256)

    def test_permissive_filter_prefers_index(self, filter_segment):
        expr = FilterExpression("price >= 0")  # everything passes
        plan = choose_strategy(filter_segment, "vector", 10, expr)
        assert plan.strategy in (FilterStrategy.POST_FILTER,
                                 FilterStrategy.SCAN_FILTER)
        assert plan.selectivity == 1.0

    def test_no_index_forces_pre(self, rng):
        schema = CollectionSchema([
            FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8),
            FieldSchema("price", DataType.FLOAT),
        ])
        segment = Segment("s", "c", schema, SegmentConfig(slice_size=10**6))
        segment.append([1, 2, 3], {
            "vector": rng.standard_normal((3, 8)).astype(np.float32),
            "price": [1.0, 2.0, 3.0]}, 1)
        plan = choose_strategy(segment, "vector", 2,
                               FilterExpression("price > 0"))
        assert plan.strategy is FilterStrategy.PRE_FILTER

    def test_empty_selectivity(self, filter_segment):
        plan = choose_strategy(filter_segment, "vector", 10,
                               FilterExpression("price < 0"))
        assert plan.selectivity == 0.0


class TestFilteredSearch:
    def test_all_strategies_agree(self, filter_segment, rng):
        """Every strategy returns the same correct top-k."""
        expr = FilterExpression("price >= 100 and price < 200")
        query = rng.standard_normal((1, 8)).astype(np.float32)
        results = {}
        for strategy in FilterStrategy:
            out, _plan = filtered_search(filter_segment, "vector", query,
                                         5, MetricType.EUCLIDEAN, expr,
                                         forced=strategy)
            results[strategy] = out[0]
        assert results[FilterStrategy.PRE_FILTER] == \
            results[FilterStrategy.POST_FILTER] == \
            results[FilterStrategy.SCAN_FILTER]
        assert all(100 <= hit.pk < 200
                   for hit in results[FilterStrategy.PRE_FILTER])

    def test_no_expr_plain_search(self, filter_segment, rng):
        query = rng.standard_normal((1, 8)).astype(np.float32)
        out, plan = filtered_search(filter_segment, "vector", query, 5,
                                    MetricType.EUCLIDEAN, None)
        assert plan is None
        assert len(out[0]) == 5

    def test_plan_exposed(self, filter_segment, rng):
        query = rng.standard_normal((1, 8)).astype(np.float32)
        _out, plan = filtered_search(filter_segment, "vector", query, 5,
                                     MetricType.EUCLIDEAN,
                                     FilterExpression("price < 50"))
        assert plan is not None
        assert 0.0 <= plan.selectivity <= 1.0
        assert plan.mask.sum() == 50


@pytest.fixture
def mv_segment(rng):
    schema = CollectionSchema([
        FieldSchema("image", DataType.FLOAT_VECTOR, dim=8),
        FieldSchema("text", DataType.FLOAT_VECTOR, dim=4),
    ])
    segment = Segment("s", "c", schema, SegmentConfig(slice_size=10**6))
    n = 200
    segment.append(list(range(n)), {
        "image": rng.standard_normal((n, 8)).astype(np.float32),
        "text": rng.standard_normal((n, 4)).astype(np.float32),
    }, 1)
    return segment


def make_query(rng, metric=MetricType.INNER_PRODUCT, w_img=1.0, w_txt=0.5):
    return MultiVectorQuery(
        fields=("image", "text"),
        queries={"image": rng.standard_normal(8).astype(np.float32),
                 "text": rng.standard_normal(4).astype(np.float32)},
        weights={"image": w_img, "text": w_txt},
        metric=metric)


class TestMultiVector:
    def test_strategy_choice_by_metric(self, rng):
        assert mv_choose(make_query(rng)) is MultiVectorStrategy.DECOMPOSED
        assert mv_choose(make_query(rng, MetricType.EUCLIDEAN)) is \
            MultiVectorStrategy.RERANK

    def test_matches_exhaustive_combined_score(self, mv_segment, rng):
        query = make_query(rng)
        batch = search_segment(mv_segment, query, 5, amplification=40)
        image = mv_segment.column("image")
        text = mv_segment.column("text")
        combined = (-1.0 * (image @ query.queries["image"])
                    - 0.5 * (text @ query.queries["text"]))
        expected = np.argsort(combined, kind="stable")[:5]
        assert batch.pks.tolist() == [int(i) for i in expected]
        assert np.allclose(batch.dists, combined[expected], atol=1e-4)

    def test_weights_matter(self, mv_segment, rng):
        only_image = MultiVectorQuery(
            fields=("image", "text"),
            queries={"image": rng.standard_normal(8).astype(np.float32),
                     "text": rng.standard_normal(4).astype(np.float32)},
            weights={"image": 1.0, "text": 0.0},
            metric=MetricType.INNER_PRODUCT)
        batch = search_segment(mv_segment, only_image, 3,
                               amplification=40)
        image = mv_segment.column("image")
        expected = np.argsort(-(image @ only_image.queries["image"]),
                              kind="stable")[:3]
        assert batch.pks.tolist() == [int(i) for i in expected]

    def test_euclidean_rerank(self, mv_segment, rng):
        query = make_query(rng, MetricType.EUCLIDEAN)
        batch = search_segment(mv_segment, query, 5, amplification=40)
        assert len(batch) == 5
        assert (np.diff(batch.dists) >= -1e-5).all()

    def test_missing_weight_rejected(self, rng):
        with pytest.raises(ValueError):
            MultiVectorQuery(fields=("image", "text"),
                             queries={"image": np.zeros(8)},
                             weights={"image": 1.0},
                             metric=MetricType.INNER_PRODUCT)

    def test_negative_weight_rejected(self, rng):
        with pytest.raises(ValueError):
            MultiVectorQuery(
                fields=("image",),
                queries={"image": np.zeros(8)},
                weights={"image": -1.0},
                metric=MetricType.INNER_PRODUCT)

    def test_deletes_respected(self, mv_segment, rng):
        query = make_query(rng)
        batch = search_segment(mv_segment, query, 3, amplification=40)
        top = batch[0].pk
        mv_segment.apply_delete([top], 99)
        after = search_segment(mv_segment, query, 3, amplification=40)
        assert top not in after.pks.tolist()
