"""Tests for the autoscaler, workload generators and monitoring metrics."""

import numpy as np
import pytest

from repro.cluster.manu import ManuCluster
from repro.cluster.scaling import Autoscaler
from repro.config import ManuConfig, ScalingConfig
from repro.core.schema import CollectionSchema, DataType, FieldSchema
from repro.monitoring.metrics import (
    Counter,
    Gauge,
    LatencyWindow,
    MetricsRegistry,
)
from repro.sim.workloads import (
    InsertDriver,
    SearchDriver,
    diurnal_traffic,
    poisson_arrivals,
)


@pytest.fixture
def schema():
    return CollectionSchema(
        [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8)])


class TestMetrics:
    def test_counter_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7

    def test_latency_window_pruning(self):
        window = LatencyWindow(window_ms=100)
        window.record(0, 10)
        window.record(50, 20)
        window.record(140, 30)
        assert window.count(150) == 2  # first sample pruned
        assert window.mean(150) == 25

    def test_qps(self):
        window = LatencyWindow(window_ms=1000)
        for t in range(10):
            window.record(t * 10, 1.0)
        assert window.qps(100) == pytest.approx(10.0)

    def test_percentile(self):
        window = LatencyWindow(window_ms=1000)
        for lat in range(1, 101):
            window.record(0, float(lat))
        assert window.percentile(10, 50) == pytest.approx(50, abs=2)
        assert window.percentile(10, 99) == pytest.approx(99, abs=2)
        assert LatencyWindow().percentile(0, 50) is None

    def test_registry_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(3)
        registry.latency("c").record(0, 5.0)
        snap = registry.snapshot(now_ms=1.0)
        assert snap["a.count"] == 1
        assert snap["b.value"] == 3
        assert snap["c.mean_ms"] == 5.0


class TestWorkloads:
    def test_diurnal_shape(self):
        hours = np.arange(0, 24, 0.5)
        qps = diurnal_traffic(hours)
        assert qps.min() > 0
        peak_hour = hours[qps.argmax()]
        valley_hour = hours[qps.argmin()]
        assert 18 <= peak_hour <= 23  # evening peak
        assert 4 <= valley_hour <= 12  # morning valley
        assert qps.max() / qps.min() > 4  # violent fluctuation

    def test_promo_spike_visible(self):
        hours = np.arange(0, 24, 0.25)
        base = diurnal_traffic(hours, promo_hours=())
        promo = diurnal_traffic(hours, promo_hours=(10.0,))
        at_ten = np.argmin(np.abs(hours - 10.0))
        assert promo[at_ten] > base[at_ten] * 1.5

    def test_poisson_arrivals_rate(self):
        rng = np.random.default_rng(0)
        times = poisson_arrivals(100.0, 10_000.0, rng)
        assert 800 <= len(times) <= 1200  # ~1000 expected
        assert (np.diff(times) >= 0).all()
        assert len(poisson_arrivals(0.0, 1000, rng)) == 0

    def test_insert_driver_schedules(self, schema, rng):
        cluster = ManuCluster(num_query_nodes=1)
        cluster.create_collection("c", schema)
        vectors = rng.standard_normal((500, 8)).astype(np.float32)
        driver = InsertDriver(cluster, "c", vectors, rate_per_s=1000,
                              batch_size=50)
        driver.start(duration_ms=400)
        cluster.run_for(1000)
        assert driver.inserted == 400  # 1000/s * 0.4s
        assert cluster.collection_row_count("c") == 400

    def test_search_driver_records_latencies(self, schema, rng):
        cluster = ManuCluster(num_query_nodes=1)
        cluster.create_collection("c", schema)
        cluster.insert("c", {"vector": rng.standard_normal(
            (100, 8)).astype(np.float32)})
        cluster.run_for(200)
        driver = SearchDriver(cluster, "c",
                              rng.standard_normal((10, 8)).astype(
                                  np.float32), k=5)
        driver.run_at(np.array([300.0, 350.0, 400.0]))
        assert len(driver.latencies_ms) == 3
        assert driver.mean_latency() > 0


class TestAutoscaler:
    def _cluster(self):
        policy = ScalingConfig(latency_high_ms=100, latency_low_ms=20,
                               min_query_nodes=1, max_query_nodes=8,
                               evaluation_interval_ms=1000)
        config = ManuConfig(scaling=policy)
        return ManuCluster(config=config, num_query_nodes=2)

    def test_scales_up_on_high_latency(self, schema):
        cluster = self._cluster()
        scaler = Autoscaler(cluster)
        cluster.metrics.latency("proxy.search_latency").record(
            cluster.now(), 500.0)
        event = scaler.evaluate()
        assert event is not None and event.action == "up"
        assert cluster.num_query_nodes == 4

    def test_scales_down_on_low_latency(self, schema):
        cluster = self._cluster()
        cluster.create_collection("c", schema)
        scaler = Autoscaler(cluster)
        cluster.metrics.latency("proxy.search_latency").record(
            cluster.now(), 5.0)
        event = scaler.evaluate()
        assert event is not None and event.action == "down"
        assert cluster.num_query_nodes == 1

    def test_no_signal_no_action(self):
        cluster = self._cluster()
        scaler = Autoscaler(cluster)
        assert scaler.evaluate() is None
        assert cluster.num_query_nodes == 2

    def test_in_band_no_action(self):
        cluster = self._cluster()
        scaler = Autoscaler(cluster)
        cluster.metrics.latency("proxy.search_latency").record(
            cluster.now(), 50.0)
        assert scaler.evaluate() is None

    def test_respects_max(self):
        cluster = self._cluster()
        scaler = Autoscaler(cluster)
        for _ in range(5):
            cluster.metrics.latency("proxy.search_latency").record(
                cluster.now(), 500.0)
            scaler.evaluate()
        assert cluster.num_query_nodes <= 8

    def test_periodic_evaluation(self, schema):
        cluster = self._cluster()
        scaler = Autoscaler(cluster)
        scaler.start()
        cluster.metrics.latency("proxy.search_latency").record(
            cluster.now(), 500.0)
        cluster.run_for(1500)
        scaler.stop()
        assert scaler.events and scaler.events[0].action == "up"
