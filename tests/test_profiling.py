"""Tests for the query profiling & cost accounting plane (DESIGN.md §6g).

Four pillars:

* **EXPLAIN ANALYZE exactness** — per-segment scan counters sum to each
  node stage, node stages sum to the request totals, on a multi-segment
  multi-node collection;
* **slow-query capture** — the virtual-time threshold ring captures an
  injected slow scan with a trace id resolvable in the TraceCollector,
  and evicts FIFO at capacity;
* **per-tenant read/write units** — cumulative metering across inserts
  and searches, surviving ``/metrics`` exposition;
* **zero-overhead off switch** — with ``explain=False`` and the slow
  log disarmed, the serving path builds no profile objects at all.

Plus the metric↔trace exemplar linkage: latency-histogram buckets carry
the most recent sampled trace id and round-trip through the exposition
parser.
"""

import numpy as np
import pytest

from repro.cluster.manu import ManuCluster
from repro.config import ManuConfig, ProfilingConfig, SegmentConfig
from repro.core.schema import CollectionSchema, DataType, FieldSchema, \
    MetricType
from repro.index.base import STAT_FIELDS, SearchStats
from repro.monitoring.exposition import parse_exemplars, parse_exposition
from repro.monitoring.metrics import Histogram, MetricsRegistry
from repro.profiling import (
    SCAN_COUNTERS,
    QueryProfile,
    SlowQueryLog,
    StageProfile,
    sum_counters,
)
from repro.tenancy.metering import (
    CostMeter,
    READ_UNIT_BYTES,
    READ_UNIT_ROWS,
)

DIM = 8


def _schema() -> CollectionSchema:
    return CollectionSchema([
        FieldSchema("pk", DataType.INT64, is_primary=True),
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=DIM),
    ])


def _vectors(rng, n):
    return rng.standard_normal((n, DIM)).astype(np.float32)


def _profiled_cluster(threshold_ms=0.0, capacity=32, **kwargs):
    cfg = ManuConfig().with_overrides(
        profiling=ProfilingConfig(slow_query_threshold_ms=threshold_ms,
                                  slow_query_capacity=capacity),
        segment=SegmentConfig(seal_entity_count=128))
    kwargs.setdefault("num_query_nodes", 2)
    return ManuCluster(config=cfg, **kwargs)


def _fill(cluster, rng, rows=320, collection="c", tenant=None):
    """Insert across several sealing rounds so search spans segments."""
    pk = 0
    for _ in range(max(1, rows // 64)):
        data = {"pk": list(range(pk, pk + 64)),
                "vector": _vectors(rng, 64)}
        if tenant is None:
            cluster.insert(collection, data)
        else:
            cluster.insert(collection, data, tenant=tenant)
        pk += 64
        cluster.run_for(200)
    cluster.flush(collection)
    cluster.run_for(2_000)


# ----------------------------------------------------------------------
# unit: profile tree
# ----------------------------------------------------------------------


class TestQueryProfileUnit:
    def test_scan_counters_mirror_search_stats(self):
        assert SCAN_COUNTERS == STAT_FIELDS
        stats = SearchStats()
        assert set(stats.as_dict()) == set(SCAN_COUNTERS)

    def test_sum_counters(self):
        a = StageProfile("s")
        a.counters = {"rows_scanned": 3, "cache_hits": 1}
        b = StageProfile("s")
        b.counters = {"rows_scanned": 4}
        total = sum_counters([a, b])
        assert total["rows_scanned"] == 7
        assert total["cache_hits"] == 1
        assert total["graph_hops"] == 0

    def test_verify_catches_lost_work(self):
        prof = QueryProfile("c", nq=1, k=5)
        node = prof.node_stage("qn-0")
        seg = node.child("segment.scan", segment="s0")
        seg.counters = {"rows_scanned": 10}
        node.counters = {"rows_scanned": 12}  # 2 rows vanished
        prof.finalize(latency_ms=1.0, wait_ms=0.0, merge_ms=0.0, nodes=1,
                      segments=1, merge_counters={})
        problems = prof.verify()
        assert any("rows_scanned" in p and "qn-0" in p for p in problems)

    def test_verify_passes_on_consistent_tree(self):
        prof = QueryProfile("c", nq=1, k=5)
        node = prof.node_stage("qn-0")
        seg = node.child("segment.scan", segment="s0")
        seg.counters = {"rows_scanned": 10, "brute_scans": 1}
        node.counters = {"rows_scanned": 10, "brute_scans": 1}
        prof.finalize(latency_ms=1.0, wait_ms=0.0, merge_ms=0.0, nodes=1,
                      segments=1, merge_counters={})
        assert prof.verify() == []
        assert prof.totals()["rows_scanned"] == 10

    def test_explain_renders_tree_and_totals(self):
        prof = QueryProfile("docs", nq=2, k=3)
        node = prof.node_stage("qn-1")
        seg = node.child("segment.scan", segment="s7", path="brute")
        seg.counters = {"rows_scanned": 42}
        node.counters = {"rows_scanned": 42}
        prof.finalize(latency_ms=1.25, wait_ms=0.5, merge_ms=0.1,
                      nodes=1, segments=1, merge_counters={},
                      trace_id="t000007")
        text = prof.explain()
        assert "EXPLAIN ANALYZE" in text
        assert "trace=t000007" in text
        assert "segment.scan" in text and "rows_scanned=42" in text
        assert "totals:" in text

    def test_to_dict_round_trips_structure(self):
        prof = QueryProfile("c", nq=1, k=1)
        node = prof.node_stage("qn-0")
        node.counters = {"rows_scanned": 1}
        prof.finalize(latency_ms=1.0, wait_ms=0.0, merge_ms=0.0, nodes=1,
                      segments=0, merge_counters={"batches_merged": 1})
        d = prof.to_dict()
        assert d["tree"]["stage"] == "proxy.search"
        assert d["tree"]["children"][0]["stage"] == "query_node.scan"


# ----------------------------------------------------------------------
# unit: slow-query ring
# ----------------------------------------------------------------------


def _profile_with_latency(latency_ms, collection="c"):
    prof = QueryProfile(collection, nq=1, k=5)
    prof.finalize(latency_ms=latency_ms, wait_ms=0.0, merge_ms=0.0,
                  nodes=1, segments=1, merge_counters={})
    return prof


class TestSlowQueryLogUnit:
    def test_disabled_by_default(self):
        log = SlowQueryLog()
        assert not log.enabled
        assert not log.observe(0.0, _profile_with_latency(999.0))
        assert len(log) == 0

    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_ms=10.0)
        assert not log.observe(1.0, _profile_with_latency(9.99))
        assert log.observe(2.0, _profile_with_latency(10.0))
        assert len(log) == 1

    def test_fifo_eviction_at_capacity(self):
        log = SlowQueryLog(threshold_ms=1.0, capacity=2)
        for i, latency in enumerate((5.0, 6.0, 7.0)):
            log.observe(float(i), _profile_with_latency(latency))
        assert len(log) == 2
        assert log.captured_total == 3
        # Oldest capture (latency 5.0) evicted; order oldest-first.
        assert [e.latency_ms for e in log.entries()] == [6.0, 7.0]

    def test_top_ranks_slowest_first(self):
        log = SlowQueryLog(threshold_ms=1.0, capacity=8)
        for i, latency in enumerate((5.0, 9.0, 7.0)):
            log.observe(float(i), _profile_with_latency(latency))
        assert [e.latency_ms for e in log.top(2)] == [9.0, 7.0]

    def test_json_dump(self, tmp_path):
        import json
        log = SlowQueryLog(threshold_ms=1.0, capacity=2)
        log.observe(3.0, _profile_with_latency(4.0, collection="docs"))
        path = tmp_path / "slowlog.json"
        log.dump(str(path))
        payload = json.loads(path.read_text())
        assert payload["threshold_ms"] == 1.0
        assert payload["entries"][0]["profile"]["collection"] == "docs"

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_ms=1.0, capacity=0)


# ----------------------------------------------------------------------
# unit: cost meter
# ----------------------------------------------------------------------


class TestCostMeterUnit:
    def test_read_unit_formula(self):
        meter = CostMeter()
        units = meter.charge_read("t", int(READ_UNIT_ROWS),
                                  int(READ_UNIT_BYTES))
        assert units == pytest.approx(2.0)
        usage = meter.usage("t")
        assert usage.rows_scanned == int(READ_UNIT_ROWS)
        assert usage.bytes_materialized == int(READ_UNIT_BYTES)

    def test_write_unit_is_per_row(self):
        meter = CostMeter()
        assert meter.charge_write("t", 7) == pytest.approx(7.0)
        assert meter.usage("t").rows_appended == 7

    def test_accumulates_across_charges(self):
        meter = CostMeter()
        meter.charge_read("t", 512)
        meter.charge_read("t", 512)
        assert meter.usage("t").read_units == pytest.approx(1.0)

    def test_top_by_cost_ranks_and_breaks_ties_by_name(self):
        meter = CostMeter()
        meter.charge_write("b", 5)
        meter.charge_write("a", 5)
        meter.charge_write("z", 50)
        ranked = [name for name, _ in meter.top_by_cost(3)]
        assert ranked == ["z", "a", "b"]

    def test_snapshot_is_json_ready(self):
        meter = CostMeter()
        meter.charge_read("t", 100, 200)
        snap = meter.snapshot()
        assert set(snap["t"]) == {"read_units", "write_units",
                                  "rows_scanned", "bytes_materialized",
                                  "rows_appended"}


# ----------------------------------------------------------------------
# unit: histogram exemplars + exposition round-trip
# ----------------------------------------------------------------------


class TestExemplars:
    def test_histogram_keeps_latest_exemplar_per_bucket(self):
        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(0.5)
        assert hist.exemplars is None  # lazy: plain observes stay cheap
        hist.observe(0.7, exemplar="t000001")
        hist.observe(0.9, exemplar="t000002")
        hist.observe(5.0, exemplar="t000003")
        assert hist.exemplars[0] == ("t000002", 0.9)
        assert hist.exemplars[1] == ("t000003", 5.0)

    def test_merge_carries_exemplars(self):
        a = Histogram(buckets=(1.0,))
        b = Histogram(buckets=(1.0,))
        a.observe(0.5, exemplar="tA")
        b.observe(2.0, exemplar="tB")
        merged = a.merge(b)
        assert merged.exemplars[0] == ("tA", 0.5)
        assert merged.exemplars[1] == ("tB", 2.0)

    def test_exposition_renders_and_round_trips(self):
        registry = MetricsRegistry()
        family = registry.histogram_family(
            "search_latency", ("proxy",), help="latency", unit="ms",
            buckets=(1.0, 10.0))
        child = family.labels(proxy="p0")
        child.observe(0.5, exemplar="t000042")
        child.observe(5.0)
        text = registry.expose_text(0.0)
        assert '# {trace_id="t000042"} 0.5' in text
        # The series map is unchanged by the exemplar suffix...
        series = parse_exposition(text)
        key = ("search_latency_ms_bucket",
               (("le", "1.0"), ("proxy", "p0")))
        fallback = ("search_latency_bucket",
                    (("le", "1.0"), ("proxy", "p0")))
        assert series.get(key, series.get(fallback)) == 1.0
        # ...and the linkage is recoverable.
        exemplars = parse_exemplars(text)
        [(name_labels, (ex_labels, value))] = [
            (k, v) for k, v in exemplars.items()]
        assert dict(ex_labels) == {"trace_id": "t000042"}
        assert value == 0.5

    def test_parser_rejects_malformed_exemplar(self):
        bad = 'm_bucket{le="1.0"} 1.0 # {trace_id=oops} 0.5'
        with pytest.raises(ValueError):
            parse_exposition(bad)


# ----------------------------------------------------------------------
# end to end: EXPLAIN exactness
# ----------------------------------------------------------------------


class TestExplainEndToEnd:
    def test_counters_sum_exactly_multi_segment_multi_node(self):
        cluster = _profiled_cluster()
        rng = np.random.default_rng(0)
        cluster.create_collection("c", _schema())
        _fill(cluster, rng, rows=384)
        result = cluster.search("c", _vectors(rng, 3), 5,
                                explain=True)[0]
        prof = result.profile
        assert prof is not None
        assert prof.verify() == []
        node_stages = prof.node_stages()
        assert len(node_stages) == 2  # both query nodes fanned out
        seg_stages = [s for stage in node_stages
                      for s in stage.stages("segment.scan")]
        assert len(seg_stages) >= 2  # several segments actually scanned
        # Manual re-check of the invariant, independent of verify().
        for key in SCAN_COUNTERS:
            seg_total = sum(s.counters.get(key, 0) for s in seg_stages)
            node_total = sum(s.counters.get(key, 0) for s in node_stages)
            assert seg_total == node_total == prof.totals()[key]
        # Real work was measured, not a tree of zeros.
        assert prof.totals()["rows_scanned"] > 0
        assert prof.totals()["float_comparisons"] > 0

    def test_all_results_of_batch_share_profile(self):
        cluster = _profiled_cluster()
        rng = np.random.default_rng(1)
        cluster.create_collection("c", _schema())
        _fill(cluster, rng, rows=128)
        results = cluster.search("c", _vectors(rng, 4), 5, explain=True)
        assert len(results) == 4
        assert all(r.profile is results[0].profile for r in results)
        assert results[0].profile.nq == 4

    def test_indexed_path_reports_index_scans(self):
        cluster = _profiled_cluster()
        rng = np.random.default_rng(2)
        cluster.create_collection("c", _schema())
        _fill(cluster, rng, rows=256)
        cluster.create_index("c", "vector", "IVF_FLAT",
                             MetricType.EUCLIDEAN,
                             {"nlist": 4, "nprobe": 4})
        assert cluster.wait_for_indexes("c")
        prof = cluster.search("c", _vectors(rng, 1), 5,
                              explain=True)[0].profile
        assert prof.verify() == []
        assert prof.totals()["index_scans"] > 0
        paths = {s.meta.get("path") for stage in prof.node_stages()
                 for s in stage.stages("segment.scan")}
        assert "index" in paths

    def test_filtered_search_profile_still_sums(self):
        """A filter expression must not break the sum invariant."""
        cluster = _profiled_cluster()
        rng = np.random.default_rng(3)
        schema = CollectionSchema([
            FieldSchema("pk", DataType.INT64, is_primary=True),
            FieldSchema("price", DataType.FLOAT),
            FieldSchema("vector", DataType.FLOAT_VECTOR, dim=DIM),
        ])
        cluster.create_collection("c", schema)
        pk = 0
        for _ in range(4):
            cluster.insert("c", {
                "pk": list(range(pk, pk + 64)),
                "price": np.arange(pk, pk + 64, dtype=np.float64),
                "vector": _vectors(rng, 64)})
            pk += 64
            cluster.run_for(200)
        cluster.flush("c")
        cluster.run_for(2_000)
        result = cluster.search("c", _vectors(rng, 1), 5,
                                expr="price < 50", explain=True)[0]
        prof = result.profile
        assert prof.verify() == []
        assert prof.totals()["rows_scanned"] > 0
        assert all(hit.pk < 50 for hit in result)

    def test_post_filter_counts_pruned_candidates(self):
        """The post-filter index path charges candidate visit/prune work."""
        from repro.core.expr import FilterExpression
        from repro.core.filtering import FilterStrategy, filtered_search
        from repro.core.segment import Segment
        from repro.index.ivf import IvfFlatIndex

        rng = np.random.default_rng(3)
        schema = CollectionSchema([
            FieldSchema("vector", DataType.FLOAT_VECTOR, dim=DIM),
            FieldSchema("price", DataType.FLOAT),
        ])
        segment = Segment("s", "c", schema, SegmentConfig(slice_size=64))
        n = 256
        segment.append(list(range(n)), {
            "vector": _vectors(rng, n),
            "price": np.arange(n, dtype=np.float64)}, 1)
        segment.seal()
        index = IvfFlatIndex(MetricType.EUCLIDEAN, DIM, nlist=8, nprobe=8)
        index.build(segment.column("vector"))
        segment.attach_index("vector", index)

        stats = SearchStats()
        filtered_search(segment, "vector", _vectors(rng, 1), 5,
                        MetricType.EUCLIDEAN,
                        FilterExpression("price >= 100 and price < 200"),
                        stats=stats, forced=FilterStrategy.POST_FILTER)
        assert stats.candidates_visited > 0
        assert stats.candidates_pruned > 0
        assert stats.index_scans > 0

    def test_deleted_rows_count_filter_hits(self):
        cluster = _profiled_cluster(num_query_nodes=1)
        rng = np.random.default_rng(4)
        cluster.create_collection("c", _schema())
        cluster.insert("c", {"pk": list(range(64)),
                             "vector": _vectors(rng, 64)})
        cluster.run_for(200)
        cluster.delete("c", "pk in [1, 2, 3]")
        cluster.run_for(200)
        prof = cluster.search("c", _vectors(rng, 1), 5,
                              explain=True)[0].profile
        assert prof.verify() == []
        assert prof.totals()["delete_filter_hits"] > 0

    def test_explain_false_returns_no_profile(self):
        cluster = _profiled_cluster(num_query_nodes=1)
        rng = np.random.default_rng(5)
        cluster.create_collection("c", _schema())
        _fill(cluster, rng, rows=64)
        result = cluster.search("c", _vectors(rng, 1), 5)[0]
        assert result.profile is None


# ----------------------------------------------------------------------
# end to end: slow-query capture
# ----------------------------------------------------------------------


class TestSlowLogEndToEnd:
    def test_slow_scan_captured_with_resolvable_trace(self):
        # Threshold far below any real request latency: every search is
        # an offender, including the seeded "slow" one over extra rows.
        cluster = _profiled_cluster(threshold_ms=0.05)
        rng = np.random.default_rng(6)
        cluster.create_collection("c", _schema())
        _fill(cluster, rng, rows=384)
        assert len(cluster.slowlog) == 0
        cluster.search("c", _vectors(rng, 2), 5)
        assert len(cluster.slowlog) == 1
        entry = cluster.slowlog.entries()[0]
        assert entry.latency_ms >= cluster.slowlog.threshold_ms
        assert entry.rows_scanned > 0
        assert entry.profile.verify() == []
        # The capture's trace id resolves to a real span tree.
        assert entry.trace_id is not None
        spans = cluster.tracer.spans(entry.trace_id)
        assert spans
        assert any(s.name == "proxy.search" for s in spans)

    def test_ring_evicts_fifo(self):
        cluster = _profiled_cluster(threshold_ms=0.05, capacity=2,
                                    num_query_nodes=1)
        rng = np.random.default_rng(7)
        cluster.create_collection("c", _schema())
        _fill(cluster, rng, rows=64)
        for _ in range(3):
            cluster.search("c", _vectors(rng, 1), 5)
        assert cluster.slowlog.captured_total == 3
        assert len(cluster.slowlog) == 2
        first, second = cluster.slowlog.entries()
        assert first.at_ms <= second.at_ms  # oldest-first, newest kept

    def test_flight_recorder_bundles_slow_queries(self):
        cluster = _profiled_cluster(threshold_ms=0.05, num_query_nodes=1)
        rng = np.random.default_rng(8)
        cluster.create_collection("c", _schema())
        _fill(cluster, rng, rows=64)
        cluster.search("c", _vectors(rng, 1), 5)
        bundle = cluster.flight_recorder.record("test")
        assert bundle["slow_queries"]
        assert bundle["slow_queries"][0]["profile"]["collection"] == "c"

    def test_threshold_zero_never_captures(self):
        cluster = _profiled_cluster(threshold_ms=0.0, num_query_nodes=1)
        rng = np.random.default_rng(9)
        cluster.create_collection("c", _schema())
        _fill(cluster, rng, rows=64)
        cluster.search("c", _vectors(rng, 1), 5)
        assert len(cluster.slowlog) == 0


# ----------------------------------------------------------------------
# end to end: tenant cost accounting
# ----------------------------------------------------------------------


class TestTenantCostEndToEnd:
    def _tenant_cluster(self):
        cluster = _profiled_cluster(num_query_nodes=1)
        cluster.create_tenant("acme")
        cluster.tenant_create_collection("acme", "docs", _schema())
        return cluster

    def test_units_accumulate_across_inserts_and_searches(self):
        cluster = self._tenant_cluster()
        rng = np.random.default_rng(10)
        cluster.insert("docs", {"pk": list(range(64)),
                                "vector": _vectors(rng, 64)},
                       tenant="acme")
        cluster.run_for(300)
        usage = cluster.cost_meter.usage("acme")
        assert usage.rows_appended == 64
        assert usage.write_units == pytest.approx(64.0)
        assert usage.read_units == 0.0
        cluster.search("docs", _vectors(rng, 1), 5, tenant="acme")
        first_read = cluster.cost_meter.usage("acme").read_units
        assert first_read > 0
        assert cluster.cost_meter.usage("acme").rows_scanned > 0
        cluster.search("docs", _vectors(rng, 1), 5, tenant="acme")
        assert cluster.cost_meter.usage("acme").read_units > first_read

    def test_units_survive_metrics_exposition(self):
        cluster = self._tenant_cluster()
        rng = np.random.default_rng(11)
        cluster.insert("docs", {"pk": list(range(64)),
                                "vector": _vectors(rng, 64)},
                       tenant="acme")
        cluster.run_for(300)
        cluster.search("docs", _vectors(rng, 1), 5, tenant="acme")
        series = parse_exposition(
            cluster.metrics.expose_text(cluster.now()))
        write_key = ("tenant_write_units_total", (("tenant", "acme"),))
        read_key = ("tenant_read_units_total", (("tenant", "acme"),))
        assert series[write_key] == pytest.approx(64.0)
        assert series[read_key] == pytest.approx(
            cluster.cost_meter.usage("acme").read_units)

    def test_untenanted_requests_are_not_metered(self):
        cluster = _profiled_cluster(num_query_nodes=1)
        rng = np.random.default_rng(12)
        cluster.create_collection("c", _schema())
        _fill(cluster, rng, rows=64)
        cluster.search("c", _vectors(rng, 1), 5)
        assert cluster.cost_meter.tenants() == []

    def test_dashboard_shows_cost_panels(self):
        from repro.monitoring.dashboard import system_view
        cluster = self._tenant_cluster()
        rng = np.random.default_rng(13)
        cluster.insert("docs", {"pk": list(range(64)),
                                "vector": _vectors(rng, 64)},
                       tenant="acme")
        cluster.run_for(300)
        cluster.search("docs", _vectors(rng, 1), 5, tenant="acme")
        view = system_view(cluster)
        assert "TOP COST" in view
        assert "SLOW QUERIES" in view
        assert "RU" in view and "WU" in view
        assert "acme" in view


# ----------------------------------------------------------------------
# end to end: exemplar linkage
# ----------------------------------------------------------------------


class TestExemplarEndToEnd:
    def test_search_latency_bucket_links_to_sampled_trace(self):
        cluster = _profiled_cluster(num_query_nodes=1)
        rng = np.random.default_rng(14)
        cluster.create_collection("c", _schema())
        _fill(cluster, rng, rows=64)
        cluster.search("c", _vectors(rng, 1), 5)
        text = cluster.metrics.expose_text(cluster.now())
        exemplars = parse_exemplars(text)
        latency_exemplars = {
            key: value for key, value in exemplars.items()
            if key[0].startswith("search_latency")}
        assert latency_exemplars
        ex_labels, _value = next(iter(latency_exemplars.values()))
        trace_id = dict(ex_labels)["trace_id"]
        assert cluster.tracer.spans(trace_id)


# ----------------------------------------------------------------------
# the off switch: no profile objects on the un-explained hot path
# ----------------------------------------------------------------------


class TestProfilingOffOverhead:
    def test_no_profile_allocated_when_disabled(self, monkeypatch):
        cluster = _profiled_cluster(num_query_nodes=1)  # threshold 0
        rng = np.random.default_rng(15)
        cluster.create_collection("c", _schema())
        _fill(cluster, rng, rows=64)
        constructed = []

        class CountingProfile(QueryProfile):
            def __init__(self, *args, **kwargs):
                constructed.append(1)
                super().__init__(*args, **kwargs)

        import repro.nodes.proxy as proxy_mod
        monkeypatch.setattr(proxy_mod, "QueryProfile", CountingProfile)
        result = cluster.search("c", _vectors(rng, 1), 5)[0]
        assert result.profile is None
        assert constructed == []
        # ...and the same request with explain builds exactly one.
        cluster.search("c", _vectors(rng, 1), 5, explain=True)
        assert len(constructed) == 1

    def test_armed_slowlog_builds_profile_without_returning_it(self,
                                                               monkeypatch):
        cluster = _profiled_cluster(threshold_ms=0.05, num_query_nodes=1)
        rng = np.random.default_rng(16)
        cluster.create_collection("c", _schema())
        _fill(cluster, rng, rows=64)
        result = cluster.search("c", _vectors(rng, 1), 5)[0]
        assert result.profile is None       # not asked for
        assert len(cluster.slowlog) == 1    # but the offender was kept
