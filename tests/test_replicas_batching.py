"""Tests for hot replicas (replica-aware routing) and request batching."""

import numpy as np
import pytest

from repro.cluster.manu import ManuCluster
from repro.config import ManuConfig, QueryConfig, SegmentConfig
from repro.core.consistency import ConsistencyLevel
from repro.core.schema import CollectionSchema, DataType, FieldSchema


@pytest.fixture
def schema():
    return CollectionSchema(
        [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=16)])


def loaded_cluster(schema, rng, replicas=1, nodes=3, n=600,
                   batch_window_ms=0.0):
    config = ManuConfig(
        query=QueryConfig(replica_number=replicas,
                          batch_window_ms=batch_window_ms),
        segment=SegmentConfig(seal_entity_count=128))
    cluster = ManuCluster(config=config, num_query_nodes=nodes)
    cluster.create_collection("c", schema)
    vectors = rng.standard_normal((n, 16)).astype(np.float32)
    cluster.insert("c", {"vector": vectors})
    cluster.run_for(300)
    cluster.flush("c")
    return cluster, vectors


class TestHotReplicas:
    def test_segments_placed_on_replica_nodes(self, schema, rng):
        cluster, _ = loaded_cluster(schema, rng, replicas=2)
        for holders in cluster.query_coord._assignments.values():
            assert len(holders) == 2

    def test_plan_uses_one_holder_per_segment(self, schema, rng):
        cluster, _ = loaded_cluster(schema, rng, replicas=2)
        plan = cluster.query_coord.search_plan("c")
        covered = []
        for _node, scope in plan:
            assert scope is not None
            covered.extend(scope)
        flushed = set(cluster.data_coord.flushed_segments("c"))
        assert sorted(covered) == sorted(covered)  # list is materialized
        assert set(covered) == flushed
        assert len(covered) == len(flushed)  # exactly one holder each

    def test_plan_rotates_between_requests(self, schema, rng):
        cluster, _ = loaded_cluster(schema, rng, replicas=2)
        first = {node.name: scope
                 for node, scope in cluster.query_coord.search_plan("c")}
        second = {node.name: scope
                  for node, scope in cluster.query_coord.search_plan("c")}
        assert first != second  # rotation spreads load

    def test_replicated_search_correct(self, schema, rng):
        cluster, vectors = loaded_cluster(schema, rng, replicas=2)
        for probe in (3, 77, 311):
            result = cluster.search("c", vectors[probe], 1,
                                    consistency=ConsistencyLevel.STRONG)[0]
            assert result.pks[0] == probe + 1  # auto ids are 1-based

    def test_replicas_survive_node_failure(self, schema, rng):
        cluster, vectors = loaded_cluster(schema, rng, replicas=2)
        victim = cluster.query_coord.node_names[0]
        cluster.fail_query_node(victim)
        cluster.run_for(300)
        result = cluster.search("c", vectors[10], 1,
                                consistency=ConsistencyLevel.STRONG)[0]
        assert result.pks[0] == 11

    def test_single_replica_plan_is_unscoped(self, schema, rng):
        cluster, _ = loaded_cluster(schema, rng, replicas=1)
        plan = cluster.query_coord.search_plan("c")
        assert all(scope is None for _node, scope in plan)

    def test_replicas_halve_per_node_segment_work(self, schema, rng):
        """With 2 replicas each request touches each segment once, so the
        total segments searched equals the single-replica case."""
        cluster, vectors = loaded_cluster(schema, rng, replicas=2)
        result = cluster.search("c", vectors[0], 5,
                                consistency=ConsistencyLevel.STRONG)[0]
        flushed = len(cluster.data_coord.flushed_segments("c"))
        # growing leftovers may add a couple of segments
        assert result.segments_searched <= flushed + 3


class TestRequestBatching:
    def test_window_accumulates_and_flushes(self, schema, rng):
        cluster, vectors = loaded_cluster(schema, rng,
                                          batch_window_ms=20.0)
        proxy = cluster.proxies[0]
        handles = [proxy.submit_search("c", vectors[i], 3,
                                       consistency=ConsistencyLevel
                                       .EVENTUAL)
                   for i in range(5)]
        assert all(not h.done for h in handles)
        cluster.run_for(25)
        assert all(h.done for h in handles)
        assert proxy.batches_flushed == 1
        for i, handle in enumerate(handles):
            assert handle.result.pks[0] == i + 1

    def test_different_types_batched_separately(self, schema, rng):
        cluster, vectors = loaded_cluster(schema, rng,
                                          batch_window_ms=20.0)
        proxy = cluster.proxies[0]
        proxy.submit_search("c", vectors[0], 3,
                            consistency=ConsistencyLevel.EVENTUAL)
        proxy.submit_search("c", vectors[1], 5,  # different k -> new batch
                            consistency=ConsistencyLevel.EVENTUAL)
        cluster.run_for(25)
        assert proxy.batches_flushed == 2

    def test_disabled_window_runs_immediately(self, schema, rng):
        cluster, vectors = loaded_cluster(schema, rng,
                                          batch_window_ms=0.0)
        handle = cluster.proxies[0].submit_search(
            "c", vectors[0], 3, consistency=ConsistencyLevel.EVENTUAL)
        assert handle.done
        assert handle.result.pks[0] == 1

    def test_manual_flush(self, schema, rng):
        cluster, vectors = loaded_cluster(schema, rng,
                                          batch_window_ms=10_000.0)
        proxy = cluster.proxies[0]
        handles = [proxy.submit_search("c", vectors[i], 3,
                                       consistency=ConsistencyLevel
                                       .EVENTUAL) for i in range(3)]
        flushed = proxy.flush_batches()
        assert flushed == 3
        assert all(h.done for h in handles)

    def test_batching_amortizes_overhead(self, schema, rng):
        """One batch of 8 pays less virtual time than 8 singles."""
        cluster, vectors = loaded_cluster(schema, rng,
                                          batch_window_ms=20.0)
        proxy = cluster.proxies[0]
        handles = [proxy.submit_search("c", vectors[i], 3,
                                       consistency=ConsistencyLevel
                                       .EVENTUAL) for i in range(8)]
        cluster.run_for(25)
        batched_latency = handles[0].result.latency_ms

        single = cluster.search("c", vectors[0], 3,
                                consistency=ConsistencyLevel.EVENTUAL)[0]
        # A batch of 8 is cheaper than 8 sequential singles end-to-end.
        assert batched_latency < 8 * single.latency_ms
