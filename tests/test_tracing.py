"""Causal tracing subsystem: collector unit behaviour, end-to-end span
trees through the log backbone, critical-path attribution and the
observed-vs-declared topology cross-check (DESIGN.md §6c)."""

import json

import numpy as np
import pytest

from repro.analysis.topology import (
    ALLOW_DYNAMIC,
    classify_channel_name,
    declared_edges,
)
from repro.cluster.manu import ManuCluster
from repro.config import ManuConfig, SegmentConfig, TracingConfig
from repro.core.consistency import ConsistencyLevel
from repro.core.schema import CollectionSchema, DataType, FieldSchema, \
    MetricType
from repro.tracing import TraceCollector, TraceContext
from repro.tracing.collector import component_module
from repro.tracing.span import SPAN_ERROR, SPAN_INCOMPLETE, SPAN_OK


# ----------------------------------------------------------------------
# collector unit tests
# ----------------------------------------------------------------------


class TestCollectorUnit:
    def test_deterministic_ids_and_nesting(self):
        clock = [0.0]
        tracer = TraceCollector(lambda: clock[0])
        with tracer.span("root", "proxy:p0") as root:
            clock[0] = 5.0
            with tracer.span("child", "logger:l0") as child:
                clock[0] = 7.0
        assert root.trace_id == "t000000"
        assert root.span_id == "s000000"
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.start_ms == 5.0 and child.end_ms == 7.0
        assert root.end_ms == 7.0
        assert root.status == SPAN_OK
        # A replay of the same schedule mints identical ids.
        tracer2 = TraceCollector(lambda: 0.0)
        with tracer2.span("root", "proxy:p0") as again:
            pass
        assert (again.trace_id, again.span_id) == ("t000000", "s000000")

    def test_ambient_stack_restored_after_block(self):
        tracer = TraceCollector(lambda: 0.0)
        assert tracer.current() is None
        with tracer.span("outer", "proxy") as outer:
            assert tracer.current().span_id == outer.span_id
            with tracer.span("inner", "proxy") as inner:
                assert tracer.current().span_id == inner.span_id
            assert tracer.current().span_id == outer.span_id
        assert tracer.current() is None
        assert tracer.current_wire() is None

    def test_head_based_sampling_every_nth_root(self):
        tracer = TraceCollector(lambda: 0.0, sample_every=3)
        roots = [tracer.start_span("r", "proxy") for _ in range(9)]
        assert sum(1 for s in roots if s.sampled) == 3
        assert tracer.unsampled_roots == 6
        # Children inherit the head decision through the context.
        child = tracer.start_span("c", "proxy", parent=roots[1].context)
        assert not child.sampled
        assert tracer.spans(roots[1].trace_id) == []
        assert len(tracer.trace_ids()) == 3

    def test_disabled_collector_records_nothing(self):
        tracer = TraceCollector(enabled=False)
        with tracer.span("root", "proxy") as span:
            assert not span.sampled
        assert tracer.trace_ids() == []
        assert tracer.observed_edges() == set()

    def test_exception_marks_span_error(self):
        tracer = TraceCollector(lambda: 0.0)
        with pytest.raises(RuntimeError):
            with tracer.span("root", "proxy") as span:
                raise RuntimeError("boom")
        assert span.finished
        assert span.status == SPAN_ERROR

    def test_finish_span_is_idempotent(self):
        tracer = TraceCollector(lambda: 10.0)
        span = tracer.start_span("op", "proxy", start_ms=2.0)
        tracer.finish_span(span, end_ms=4.0)
        tracer.finish_span(span, end_ms=99.0, status=SPAN_ERROR)
        assert span.end_ms == 4.0
        assert span.status == SPAN_OK

    def test_mark_incomplete_closes_component_spans(self):
        tracer = TraceCollector(lambda: 1.0)
        victim = tracer.start_span("scan", "query-node:qn-0")
        other = tracer.start_span("scan", "query-node:qn-1",
                                  parent=victim.context)
        marked = tracer.mark_incomplete("query-node:qn-0")
        assert marked == [victim]
        assert victim.status == SPAN_INCOMPLETE
        assert not other.finished
        assert not tracer.trace_complete(victim.trace_id)

    def test_fifo_eviction_keeps_newest_traces(self):
        tracer = TraceCollector(lambda: 0.0, max_traces=2)
        spans = [tracer.record_span(f"r{i}", "proxy", start_ms=float(i),
                                    end_ms=float(i)) for i in range(4)]
        assert tracer.dropped_traces == 2
        assert tracer.trace_ids() == [spans[2].trace_id, spans[3].trace_id]
        assert tracer.spans(spans[0].trace_id) == []

    def test_wire_context_round_trip(self):
        ctx = TraceContext(trace_id="t000001", span_id="s000005",
                           parent_id="s000004", sampled=True)
        assert TraceContext.from_wire(ctx.to_wire()) == ctx
        assert TraceContext.from_wire(None) is None

    def test_component_module_mapping(self):
        assert component_module("proxy:proxy-0") == "nodes/proxy.py"
        assert component_module("data-node-coord:dn-0") == \
            "nodes/data_node.py"
        assert component_module("query-coord") == "coord/query.py"
        assert component_module("unknown-thing:x") is None


# ----------------------------------------------------------------------
# end-to-end traces through the cluster
# ----------------------------------------------------------------------


def _schema():
    return CollectionSchema([
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=16),
        FieldSchema("price", DataType.FLOAT),
    ])


def _rows(rng, n):
    return {"vector": rng.standard_normal((n, 16)).astype(np.float32),
            "price": rng.uniform(0.0, 100.0, n)}


@pytest.fixture
def traced_cluster():
    config = ManuConfig(segment=SegmentConfig(seal_entity_count=64,
                                              slice_size=32))
    return ManuCluster(config=config, num_query_nodes=2, num_index_nodes=1,
                       num_loggers=2)


def _new_trace_after(cluster, before):
    new = [t for t in cluster.tracer.trace_ids() if t not in before]
    assert len(new) == 1, new
    return new[0]


class TestEndToEndTraces:
    def test_insert_to_index_is_one_connected_tree(self, traced_cluster,
                                                   rng):
        cluster = traced_cluster
        cluster.create_collection("c", _schema())
        cluster.create_index("c", "vector", "IVF_FLAT",
                             MetricType.EUCLIDEAN,
                             {"nlist": 4, "nprobe": 4})
        before = set(cluster.tracer.trace_ids())
        cluster.insert("c", _rows(rng, 200))
        # The insert (and the seals it triggered) opened exactly one trace.
        tid = _new_trace_after(cluster, before)
        cluster.run_for(400)
        cluster.flush("c")
        assert cluster.wait_for_indexes("c")
        cluster.run_for(200)

        spans = cluster.tracer.spans(tid)
        root = cluster.tracer.root(tid)
        assert root is not None and root.name == "proxy.insert"
        # Single connected tree: one root, every parent id resolves.
        ids = {s.span_id for s in spans}
        assert sum(1 for s in spans if s.parent_id is None) == 1
        assert all(s.parent_id in ids for s in spans
                   if s.parent_id is not None)
        # The causal chain crosses every hop of the write path.
        components = {s.component.split(":")[0] for s in spans}
        assert {"proxy", "logger", "data-node",
                "query-node"} <= components
        names = {s.name for s in spans}
        # Group commit wraps the insert in a coalesced batch publish.
        assert "logger.publish_batch" in names
        assert "data_coord.seal" in names
        assert "data_node.flush" in names
        assert "index_node.build" in names
        assert "query_node.attach_index" in names
        assert cluster.tracer.trace_complete(tid)
        # Virtual time only moves forward along every span.
        assert all(s.end_ms >= s.start_ms for s in spans)

    def test_search_breakdown_sums_to_latency(self, traced_cluster, rng):
        cluster = traced_cluster
        cluster.create_collection("c", _schema())
        data = _rows(rng, 150)
        cluster.insert("c", data)
        cluster.run_for(200)
        before = set(cluster.tracer.trace_ids())
        result = cluster.search("c", data["vector"][7], 5,
                                consistency=ConsistencyLevel.BOUNDED,
                                staleness_ms=1.0)[0]
        tid = _new_trace_after(cluster, before)
        root = cluster.tracer.root(tid)
        assert root.name == "proxy.search"
        assert cluster.tracer.trace_complete(tid)

        breakdown = cluster.tracer.breakdown(tid)
        assert breakdown["latency_ms"] == pytest.approx(result.latency_ms)
        assert breakdown["consistency_wait_ms"] == \
            pytest.approx(result.consistency_wait_ms)
        # A 1 ms staleness bound forces a wait for the next 50 ms tick.
        assert breakdown["consistency_wait_ms"] > 0
        assert breakdown["scan_ms"] > 0
        assert breakdown["merge_ms"] > 0
        total = (breakdown["consistency_wait_ms"] + breakdown["scan_ms"]
                 + breakdown["merge_ms"])
        assert total == pytest.approx(breakdown["latency_ms"], abs=1e-6)
        assert breakdown["other_ms"] == pytest.approx(0.0, abs=1e-6)

    def test_search_trace_spans_every_hop(self, traced_cluster, rng):
        cluster = traced_cluster
        cluster.create_collection("c", _schema())
        data = _rows(rng, 150)
        cluster.insert("c", data)
        cluster.run_for(200)
        before = set(cluster.tracer.trace_ids())
        cluster.search("c", data["vector"][0], 5,
                       consistency=ConsistencyLevel.STRONG)
        tid = _new_trace_after(cluster, before)
        names = {s.name for s in cluster.tracer.spans(tid)}
        assert "proxy.consistency_wait" in names
        assert "query_node.scan" in names
        assert "segment.scan" in names
        assert "query_node.reduce" in names
        assert "proxy.merge" in names
        # Per-node scans hang off the proxy root, not off each other.
        tree = cluster.tracer.span_tree(tid)
        root = cluster.tracer.root(tid)
        child_names = {s.name for s in tree.get(root.span_id, ())}
        assert {"proxy.consistency_wait", "query_node.scan",
                "proxy.merge"} <= child_names

    def test_observed_topology_subset_of_declared(self, traced_cluster,
                                                  rng):
        cluster = traced_cluster
        cluster.create_collection("c", _schema())
        data = _rows(rng, 200)
        cluster.insert("c", data)
        cluster.run_for(300)
        cluster.flush("c")
        cluster.create_index("c", "vector", "IVF_FLAT",
                             MetricType.EUCLIDEAN,
                             {"nlist": 4, "nprobe": 4})
        assert cluster.wait_for_indexes("c")
        cluster.search("c", data["vector"][3], 5,
                       consistency=ConsistencyLevel.STRONG)

        observed = cluster.tracer.observed_edges()
        assert observed
        declared = declared_edges()
        for component, action, channel in observed:
            module = component_module(component)
            assert module is not None, component
            group = classify_channel_name(channel)
            assert (module in ALLOW_DYNAMIC
                    or (module, action, group) in declared), \
                (component, action, channel)
        # The run exercised both data and control channels, both ways.
        groups = {(action, classify_channel_name(channel))
                  for _, action, channel in observed}
        assert ("publish", "wal-shard") in groups
        assert ("subscribe", "wal-shard") in groups
        assert ("publish", "coord") in groups
        assert ("subscribe", "coord") in groups
        assert ("publish", "ddl") in groups

    def test_chrome_export_round_trips(self, traced_cluster, rng):
        cluster = traced_cluster
        cluster.create_collection("c", _schema())
        data = _rows(rng, 100)
        cluster.insert("c", data)
        cluster.run_for(200)
        cluster.search("c", data["vector"][0], 3,
                       consistency=ConsistencyLevel.STRONG)

        doc = json.loads(cluster.tracer.export_chrome_trace())
        events = doc["traceEvents"]
        assert events
        assert {event["ph"] for event in events} <= {"X", "M"}
        for event in events:
            if event["ph"] != "X":
                continue
            assert isinstance(event["ts"], (int, float))
            assert event["dur"] >= 0
            assert event["name"]
            assert "span_id" in event["args"]
        # Single-trace export puts everything in one process.
        tid = cluster.tracer.trace_ids()[0]
        single = json.loads(cluster.tracer.export_chrome_trace(tid))
        pids = {event["pid"] for event in single["traceEvents"]}
        assert pids == {1}

    def test_sampling_config_thins_request_traces(self, rng):
        config = ManuConfig(tracing=TracingConfig(sample_every=2))
        cluster = ManuCluster(config=config, num_query_nodes=1)
        cluster.create_collection("c", _schema())
        data = _rows(rng, 30)
        cluster.insert("c", data)
        cluster.run_for(200)
        for _ in range(4):
            cluster.search("c", data["vector"][0], 3,
                           consistency=ConsistencyLevel.STRONG)
        assert cluster.tracer.unsampled_roots > 0
        recorded = cluster.tracer.spans_named("proxy.search")
        assert 0 < len(recorded) < 4

    def test_tracing_disabled_is_inert(self, rng):
        config = ManuConfig(tracing=TracingConfig(enabled=False))
        cluster = ManuCluster(config=config, num_query_nodes=1)
        cluster.create_collection("c", _schema())
        data = _rows(rng, 50)
        cluster.insert("c", data)
        cluster.run_for(200)
        result = cluster.search("c", data["vector"][0], 3,
                                consistency=ConsistencyLevel.STRONG)[0]
        assert result.pks
        assert cluster.tracer.trace_ids() == []
        assert cluster.tracer.observed_edges() == set()
