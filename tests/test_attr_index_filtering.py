"""Tests for attribute-index-accelerated filtering on sealed segments."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SegmentConfig
from repro.core.expr import FilterExpression
from repro.core.filtering import attr_index_mask, compute_mask
from repro.core.schema import CollectionSchema, DataType, FieldSchema
from repro.core.segment import Segment
from repro.index.attr import LabelIndex, SortedListIndex


@pytest.fixture
def sealed_segment(rng):
    schema = CollectionSchema([
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=4),
        FieldSchema("price", DataType.FLOAT),
        FieldSchema("label", DataType.STRING),
        FieldSchema("stock", DataType.INT64),
    ])
    segment = Segment("s", "c", schema, SegmentConfig(slice_size=10**9))
    n = 100
    segment.append(list(range(n)), {
        "vector": rng.standard_normal((n, 4)).astype(np.float32),
        "price": np.linspace(0.0, 99.0, n),
        "label": [["a", "b", "c"][i % 3] for i in range(n)],
        "stock": np.arange(n) % 7,
    }, 1)
    segment.seal()
    return segment


class TestAttrIndexConstruction:
    def test_numeric_gets_sorted_list(self, sealed_segment):
        assert isinstance(sealed_segment.attr_index("price"),
                          SortedListIndex)
        assert isinstance(sealed_segment.attr_index("stock"),
                          SortedListIndex)

    def test_string_gets_label_index(self, sealed_segment):
        assert isinstance(sealed_segment.attr_index("label"), LabelIndex)

    def test_vector_and_growing_return_none(self, sealed_segment, rng):
        assert sealed_segment.attr_index("vector") is None
        growing = Segment("g", "c", sealed_segment.schema,
                          SegmentConfig(slice_size=10**9))
        growing.append([1], {
            "vector": rng.standard_normal((1, 4)).astype(np.float32),
            "price": [1.0], "label": ["a"], "stock": [1]}, 1)
        assert growing.attr_index("price") is None

    def test_index_cached(self, sealed_segment):
        assert sealed_segment.attr_index("price") is \
            sealed_segment.attr_index("price")


class TestFastPathShapes:
    @pytest.mark.parametrize("expr", [
        "price > 50", "price >= 50", "price < 10", "price <= 10",
        "price == 42", "10 < price < 20", "10 <= price <= 20",
        "50 > price", "20 >= price >= 10",
    ])
    def test_numeric_ranges_use_index_and_agree(self, sealed_segment,
                                                expr):
        parsed = FilterExpression(expr)
        fast = attr_index_mask(sealed_segment, parsed)
        assert fast is not None, expr
        slow = parsed.mask(sealed_segment.scalar_columns(),
                           sealed_segment.num_rows)
        assert (fast == slow).all(), expr

    @pytest.mark.parametrize("expr", [
        "label in ['a']", "label in ['a', 'c']", "label not in ['b']",
        "label in []",
    ])
    def test_label_membership_uses_index_and_agrees(self, sealed_segment,
                                                    expr):
        parsed = FilterExpression(expr)
        fast = attr_index_mask(sealed_segment, parsed)
        assert fast is not None, expr
        slow = parsed.mask(sealed_segment.scalar_columns(),
                           sealed_segment.num_rows)
        assert (fast == slow).all(), expr

    @pytest.mark.parametrize("expr", [
        "price != 5",                      # inequality not index-friendly
        "price > 10 and label in ['a']",   # conjunction
        "label like 'a%'",                 # pattern match
        "price > stock",                   # field-to-field
        "not price > 10",                  # negation wrapper
    ])
    def test_complex_shapes_fall_back(self, sealed_segment, expr):
        parsed = FilterExpression(expr)
        assert attr_index_mask(sealed_segment, parsed) is None
        # ...but compute_mask still answers correctly via full evaluation.
        mask = compute_mask(sealed_segment, parsed)
        slow = parsed.mask(sealed_segment.scalar_columns(),
                           sealed_segment.num_rows)
        assert (mask == slow).all()

    @given(st.floats(-10, 110), st.floats(-10, 110))
    @settings(max_examples=30, deadline=None)
    def test_random_ranges_agree_property(self, a, b):
        rng = np.random.default_rng(3)
        schema = CollectionSchema([
            FieldSchema("vector", DataType.FLOAT_VECTOR, dim=2),
            FieldSchema("price", DataType.FLOAT),
        ])
        segment = Segment("s", "c", schema,
                          SegmentConfig(slice_size=10**9))
        segment.append(list(range(50)), {
            "vector": rng.standard_normal((50, 2)).astype(np.float32),
            "price": rng.uniform(0, 100, 50)}, 1)
        segment.seal()
        low, high = min(a, b), max(a, b)
        parsed = FilterExpression(f"{low!r} <= price <= {high!r}")
        fast = attr_index_mask(segment, parsed)
        slow = parsed.mask(segment.scalar_columns(), segment.num_rows)
        assert fast is not None
        assert (fast == slow).all()
