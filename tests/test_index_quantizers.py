"""Family-specific tests for the quantizers (PQ, OPQ, RQ, SQ)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schema import MetricType
from repro.errors import IndexBuildError
from repro.index.opq import OpqRotation
from repro.index.pq import ProductQuantizer
from repro.index.rq import ResidualQuantizer
from repro.index.sq import ScalarQuantizer


@pytest.fixture
def train_data(rng):
    centers = rng.standard_normal((8, 16)).astype(np.float32) * 3
    assign = rng.integers(0, 8, 600)
    return centers[assign] + rng.standard_normal((600, 16)).astype(
        np.float32) * 0.5


class TestProductQuantizer:
    def test_dim_must_divide(self):
        with pytest.raises(IndexBuildError):
            ProductQuantizer(dim=10, m=3)

    def test_codes_shape_and_dtype(self, train_data):
        pq = ProductQuantizer(16, m=4)
        pq.train(train_data)
        codes = pq.encode(train_data[:50])
        assert codes.shape == (50, 4)
        assert codes.dtype == np.uint8

    def test_reconstruction_reduces_with_m(self, train_data):
        errors = []
        for m in (2, 4, 8):
            pq = ProductQuantizer(16, m=m)
            pq.train(train_data)
            errors.append(pq.reconstruction_error(train_data))
        assert errors[0] > errors[-1]  # finer subspaces, better recon

    def test_untrained_rejected(self, train_data):
        pq = ProductQuantizer(16, m=4)
        with pytest.raises(IndexBuildError):
            pq.encode(train_data)

    def test_adc_matches_decoded_distance(self, train_data, rng):
        """ADC lookup equals distance to the reconstructed vector."""
        pq = ProductQuantizer(16, m=4)
        pq.train(train_data)
        codes = pq.encode(train_data[:20])
        query = rng.standard_normal(16).astype(np.float32)
        table = pq.adc_table(query, MetricType.EUCLIDEAN)
        adc = ProductQuantizer.adc_scan(table, codes)
        decoded = pq.decode(codes)
        exact = ((decoded - query) ** 2).sum(axis=1)
        assert np.allclose(adc, exact, rtol=1e-3, atol=1e-2)

    def test_adc_ip_matches(self, train_data, rng):
        pq = ProductQuantizer(16, m=4)
        pq.train(train_data)
        codes = pq.encode(train_data[:20])
        query = rng.standard_normal(16).astype(np.float32)
        table = pq.adc_table(query, MetricType.INNER_PRODUCT)
        adc = ProductQuantizer.adc_scan(table, codes)
        exact = -(pq.decode(codes) @ query)
        assert np.allclose(adc, exact, rtol=1e-3, atol=1e-2)

    def test_small_nbits(self, train_data):
        pq = ProductQuantizer(16, m=4, nbits=4)
        pq.train(train_data)
        codes = pq.encode(train_data[:10])
        assert codes.max() < 16


class TestScalarQuantizer:
    def test_roundtrip_error_bounded(self, train_data):
        sq = ScalarQuantizer(16)
        sq.train(train_data)
        decoded = sq.decode(sq.encode(train_data))
        max_err = sq.max_error()
        assert (np.abs(decoded - train_data) <= max_err[None, :]
                + 1e-5).all()

    def test_compression_is_4x(self, train_data):
        sq = ScalarQuantizer(16)
        sq.train(train_data)
        codes = sq.encode(train_data)
        assert codes.nbytes * 4 == train_data.nbytes

    def test_out_of_range_clipped(self, train_data):
        sq = ScalarQuantizer(16)
        sq.train(train_data)
        wild = train_data[:1] * 100
        codes = sq.encode(wild)
        assert codes.min() >= 0 and codes.max() <= 255

    def test_constant_dimension_handled(self):
        data = np.zeros((50, 4), dtype=np.float32)
        data[:, 0] = 7.0
        sq = ScalarQuantizer(4)
        sq.train(data)
        decoded = sq.decode(sq.encode(data))
        assert np.allclose(decoded[:, 0], 7.0, atol=1e-4)

    def test_untrained_rejected(self):
        with pytest.raises(IndexBuildError):
            ScalarQuantizer(4).encode(np.zeros((1, 4), dtype=np.float32))

    @given(st.integers(0, 1000))
    @settings(max_examples=20)
    def test_quantization_error_half_step(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.uniform(-10, 10, (100, 4)).astype(np.float32)
        sq = ScalarQuantizer(4)
        sq.train(data)
        decoded = sq.decode(sq.encode(data))
        assert (np.abs(decoded - data) <= sq.max_error()[None, :]
                + 1e-4).all()


class TestResidualQuantizer:
    def test_stage_errors_non_increasing(self, train_data):
        rq = ResidualQuantizer(16, stages=5)
        rq.train(train_data)
        errors = rq.stage_errors(train_data)
        assert len(errors) == 5
        for prev, cur in zip(errors, errors[1:]):
            assert cur <= prev + 1e-5

    def test_more_stages_better(self, train_data):
        shallow = ResidualQuantizer(16, stages=1)
        shallow.train(train_data)
        deep = ResidualQuantizer(16, stages=6)
        deep.train(train_data)
        assert deep.reconstruction_error(train_data) < \
            shallow.reconstruction_error(train_data)

    def test_codes_shape(self, train_data):
        rq = ResidualQuantizer(16, stages=3)
        rq.train(train_data)
        assert rq.encode(train_data[:7]).shape == (7, 3)

    def test_invalid_params(self):
        with pytest.raises(IndexBuildError):
            ResidualQuantizer(8, stages=0)
        with pytest.raises(IndexBuildError):
            ResidualQuantizer(8, nbits=9)


class TestOpqRotation:
    def test_rotation_is_orthogonal(self, train_data):
        opq = OpqRotation(16, m=4, train_iters=3)
        opq.train(train_data)
        should_be_eye = opq.rotation @ opq.rotation.T
        assert np.allclose(should_be_eye, np.eye(16), atol=1e-4)

    def test_opq_not_worse_than_pq(self, train_data):
        pq = ProductQuantizer(16, m=4)
        pq.train(train_data)
        opq = OpqRotation(16, m=4, train_iters=5)
        opq.train(train_data)
        # OPQ optimizes the same objective with an extra rotation; allow a
        # small tolerance for local minima.
        assert opq.reconstruction_error(train_data) <= \
            pq.reconstruction_error(train_data) * 1.10

    def test_rotation_preserves_distances(self, train_data, rng):
        opq = OpqRotation(16, m=4, train_iters=2)
        opq.train(train_data)
        a = rng.standard_normal((5, 16)).astype(np.float32)
        b = rng.standard_normal((5, 16)).astype(np.float32)
        before = np.linalg.norm(a - b, axis=1)
        after = np.linalg.norm(opq.rotate(a) - opq.rotate(b), axis=1)
        assert np.allclose(before, after, rtol=1e-4)
