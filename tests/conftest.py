"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.manu import ManuCluster
from repro.core.entity import reset_auto_id_counter
from repro.core.schema import (
    CollectionSchema,
    DataType,
    FieldSchema,
    MetricType,
)


@pytest.fixture(autouse=True)
def _fresh_auto_ids():
    """Keep auto-generated primary keys deterministic per test."""
    reset_auto_id_counter()
    yield
    reset_auto_id_counter()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def small_vectors(rng) -> np.ndarray:
    return rng.standard_normal((300, 16)).astype(np.float32)


@pytest.fixture
def simple_schema() -> CollectionSchema:
    return CollectionSchema([
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=16),
        FieldSchema("price", DataType.FLOAT),
        FieldSchema("label", DataType.STRING),
    ])


@pytest.fixture
def vector_only_schema() -> CollectionSchema:
    return CollectionSchema(
        [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=16)])


@pytest.fixture
def cluster() -> ManuCluster:
    return ManuCluster(num_query_nodes=2, num_index_nodes=1,
                       num_data_nodes=1, num_proxies=1, num_loggers=2)


def make_rows(rng: np.random.Generator, n: int, dim: int = 16,
              with_price: bool = True, with_label: bool = True) -> dict:
    """Row batch matching the ``simple_schema`` fixture."""
    data: dict = {
        "vector": rng.standard_normal((n, dim)).astype(np.float32)}
    if with_price:
        data["price"] = rng.uniform(0.0, 100.0, n)
    if with_label:
        labels = ["book", "food", "cloth"]
        data["label"] = [labels[int(rng.integers(3))] for _ in range(n)]
    return data


EUCLIDEAN = MetricType.EUCLIDEAN
