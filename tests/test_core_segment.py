"""Tests for segments: growing/sealed lifecycle, slices, deletes, search."""

import numpy as np
import pytest

from repro.config import SegmentConfig
from repro.core.schema import CollectionSchema, DataType, FieldSchema, \
    MetricType
from repro.core.segment import Segment, SegmentState
from repro.errors import ClusterStateError
from repro.index.base import SearchStats
from repro.index.flat import FlatIndex
from repro.index.ivf import IvfFlatIndex


@pytest.fixture
def schema():
    return CollectionSchema([
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8),
        FieldSchema("price", DataType.FLOAT),
    ])


@pytest.fixture
def config():
    return SegmentConfig(seal_entity_count=100, seal_idle_ms=1000,
                         slice_size=20, temp_index_nlist=4)


def fill(segment, rng, n, lsn=1, start_pk=0):
    pks = list(range(start_pk, start_pk + n))
    segment.append(pks, {
        "vector": rng.standard_normal((n, 8)).astype(np.float32),
        "price": rng.uniform(0, 10, n),
    }, lsn)
    return pks


class TestLifecycle:
    def test_starts_growing(self, schema, config):
        segment = Segment("s1", "c", schema, config)
        assert segment.state is SegmentState.GROWING
        assert not segment.is_sealed

    def test_seal_blocks_appends(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        fill(segment, rng, 5)
        segment.seal()
        with pytest.raises(ClusterStateError):
            fill(segment, rng, 5, start_pk=5)

    def test_should_seal_on_size(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        fill(segment, rng, 100)
        assert segment.should_seal(now_ms=0.0)

    def test_should_seal_on_idle(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        fill(segment, rng, 5)
        assert not segment.should_seal(now_ms=500.0)
        assert segment.should_seal(now_ms=1500.0)

    def test_empty_segment_never_seals(self, schema, config):
        segment = Segment("s1", "c", schema, config)
        assert not segment.should_seal(now_ms=1e9)

    def test_max_lsn_tracks_appends(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        fill(segment, rng, 5, lsn=10)
        fill(segment, rng, 5, lsn=7, start_pk=5)  # stale lsn keeps max
        assert segment.max_lsn == 10


class TestColumns:
    def test_columns_consolidated_across_appends(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        fill(segment, rng, 5)
        fill(segment, rng, 7, start_pk=5)
        assert segment.column("vector").shape == (12, 8)
        assert len(segment.column("price")) == 12

    def test_flush_payload(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        pks = fill(segment, rng, 5, lsn=33)
        got_pks, columns, max_lsn = segment.flush_payload()
        assert got_pks == pks
        assert set(columns) == {"vector", "price"}
        assert max_lsn == 33

    def test_string_columns(self, config, rng):
        schema = CollectionSchema([
            FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8),
            FieldSchema("label", DataType.STRING),
        ])
        segment = Segment("s1", "c", schema, config)
        segment.append([1, 2], {
            "vector": rng.standard_normal((2, 8)).astype(np.float32),
            "label": ["a", "b"]}, 1)
        assert segment.column("label") == ["a", "b"]


class TestDeletes:
    def test_delete_marks_bitmap(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        pks = fill(segment, rng, 10)
        assert segment.apply_delete([pks[2], pks[5]], 99) == 2
        assert segment.num_deleted == 2
        assert segment.num_live_rows == 8
        assert not segment.contains_pk(pks[2])
        assert segment.contains_pk(pks[0])

    def test_delete_unknown_pk_is_noop(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        fill(segment, rng, 5)
        assert segment.apply_delete([999], 99) == 0

    def test_double_delete_counted_once(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        pks = fill(segment, rng, 5)
        assert segment.apply_delete([pks[0]], 50) == 1
        assert segment.apply_delete([pks[0]], 60) == 0
        assert segment.num_deleted == 1

    def test_delete_ratio(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        pks = fill(segment, rng, 10)
        segment.apply_delete(pks[:3], 99)
        assert segment.delete_ratio == pytest.approx(0.3)

    def test_deleted_rows_never_searched(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        pks = fill(segment, rng, 50)
        query = segment.column("vector")[7]
        results = segment.search("vector", query, 1, MetricType.EUCLIDEAN)
        assert results[0][0].pk == pks[7]
        segment.apply_delete([pks[7]], 99)
        results = segment.search("vector", query, 1, MetricType.EUCLIDEAN)
        assert results[0][0].pk != pks[7]


class TestTempIndexes:
    def test_temp_index_built_per_full_slice(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        fill(segment, rng, 19)
        assert segment.num_temp_indexes("vector") == 0
        fill(segment, rng, 1, start_pk=19)
        assert segment.num_temp_indexes("vector") == 1
        fill(segment, rng, 45, start_pk=20)
        assert segment.num_temp_indexes("vector") == 3

    def test_temp_index_disabled(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        segment.temp_index_enabled = False
        fill(segment, rng, 60)
        assert segment.num_temp_indexes("vector") == 0

    def test_growing_search_covers_indexed_and_tail(self, schema, config,
                                                    rng):
        segment = Segment("s1", "c", schema, config)
        pks = fill(segment, rng, 47)  # 2 full slices + 7-row tail
        vectors = segment.column("vector")
        for probe in (3, 25, 46):  # slice 0, slice 1, tail
            results = segment.search("vector", vectors[probe], 1,
                                     MetricType.EUCLIDEAN)
            assert results[0][0].pk == pks[probe]


class TestSealedIndex:
    def test_attach_index_and_search(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        pks = fill(segment, rng, 80)
        segment.seal()
        index = IvfFlatIndex(MetricType.EUCLIDEAN, 8, nlist=8, nprobe=8)
        index.build(segment.column("vector"))
        segment.attach_index("vector", index)
        assert segment.has_index("vector")
        assert segment.num_temp_indexes("vector") == 0
        results = segment.search("vector", segment.column("vector")[11], 1,
                                 MetricType.EUCLIDEAN)
        assert results[0][0].pk == pks[11]

    def test_attach_mismatched_index_rejected(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        fill(segment, rng, 10)
        index = FlatIndex(MetricType.EUCLIDEAN, 8)
        index.build(rng.standard_normal((5, 8)).astype(np.float32))
        with pytest.raises(ClusterStateError):
            segment.attach_index("vector", index)


class TestFilteredSearch:
    def test_filter_mask_respected(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        pks = fill(segment, rng, 40)
        mask = np.zeros(40, dtype=bool)
        mask[10:20] = True
        query = segment.column("vector")[3]  # best match is masked out
        results = segment.search("vector", query, 5, MetricType.EUCLIDEAN,
                                 filter_mask=mask)
        assert all(10 <= pk < 20 for pk in results[0].pks.tolist())

    def test_force_brute_matches_indexed(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        fill(segment, rng, 60)
        query = rng.standard_normal((1, 8)).astype(np.float32)
        brute = segment.search("vector", query, 5, MetricType.EUCLIDEAN,
                               force_brute=True)
        mixed = segment.search("vector", query, 5, MetricType.EUCLIDEAN)
        # Temp IVF probes all 4 lists (nprobe=nlist//4 >= 1)... allow top-1
        # agreement at minimum; exact agreement on brute tail data.
        assert brute[0][0].pk == mixed[0][0].pk

    def test_wrong_mask_length_raises(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        fill(segment, rng, 10)
        with pytest.raises(ValueError):
            segment.search("vector", np.zeros(8, dtype=np.float32), 1,
                           MetricType.EUCLIDEAN,
                           filter_mask=np.zeros(5, dtype=bool))

    def test_all_filtered_returns_empty(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        fill(segment, rng, 10)
        results = segment.search("vector", np.zeros(8, dtype=np.float32),
                                 3, MetricType.EUCLIDEAN,
                                 filter_mask=np.zeros(10, dtype=bool))
        assert len(results[0]) == 0

    def test_starved_postfilter_escalates_to_exact(self, schema, config,
                                                   rng):
        """Highly selective filters still return correct full results."""
        segment = Segment("s1", "c", schema, config)
        pks = fill(segment, rng, 80)
        segment.seal()
        index = IvfFlatIndex(MetricType.EUCLIDEAN, 8, nlist=8, nprobe=2)
        index.build(segment.column("vector"))
        segment.attach_index("vector", index)
        mask = np.zeros(80, dtype=bool)
        mask[[5, 40, 77]] = True
        query = rng.standard_normal(8).astype(np.float32)
        results = segment.search("vector", query, 3, MetricType.EUCLIDEAN,
                                 filter_mask=mask)
        assert sorted(results[0].pks.tolist()) == [pks[5], pks[40], pks[77]]

    def test_stats_accumulated(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        fill(segment, rng, 30)
        stats = SearchStats()
        segment.search("vector", np.zeros(8, dtype=np.float32), 3,
                       MetricType.EUCLIDEAN, stats=stats)
        assert stats.float_comparisons > 0


class TestMemory:
    def test_memory_bytes_grows(self, schema, config, rng):
        segment = Segment("s1", "c", schema, config)
        fill(segment, rng, 10)
        small = segment.memory_bytes()
        fill(segment, rng, 40, start_pk=10)
        assert segment.memory_bytes() > small
