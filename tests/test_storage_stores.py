"""Tests for the object store and the etcd-like metastore."""

import pytest

from repro.errors import ObjectNotFound, RevisionConflict, StorageError
from repro.storage.metastore import MetaStore
from repro.storage.object_store import FsBackend, MemoryBackend, ObjectStore


class TestObjectStore:
    def test_put_get_roundtrip(self):
        store = ObjectStore()
        store.put("a/b", b"data")
        assert store.get("a/b") == b"data"

    def test_get_missing_raises(self):
        with pytest.raises(ObjectNotFound):
            ObjectStore().get("nope")

    def test_delete_idempotent(self):
        store = ObjectStore()
        store.put("k", b"v")
        store.delete("k")
        store.delete("k")
        assert not store.exists("k")

    def test_list_prefix(self):
        store = ObjectStore()
        for key in ("a/1", "a/2", "b/1"):
            store.put(key, b"x")
        assert store.list("a/") == ["a/1", "a/2"]
        assert store.list() == ["a/1", "a/2", "b/1"]

    def test_overwrite(self):
        store = ObjectStore()
        store.put("k", b"old")
        store.put("k", b"new")
        assert store.get("k") == b"new"

    def test_stats_tracked(self):
        store = ObjectStore()
        store.put("k", b"12345")
        store.get("k")
        assert store.stats.puts == 1
        assert store.stats.gets == 1
        assert store.stats.bytes_written == 5
        assert store.stats.bytes_read == 5

    def test_cost_charging(self):
        charged = []
        store = ObjectStore(cost_per_request_ms=10.0, cost_per_mb_ms=0.0,
                            charge=charged.append)
        store.put("k", b"v")
        store.get("k")
        assert charged == [10.0, 10.0]

    def test_total_bytes(self):
        store = ObjectStore()
        store.put("p/a", b"123")
        store.put("p/b", b"4567")
        assert store.total_bytes("p/") == 7

    def test_fs_backend_roundtrip(self, tmp_path):
        store = ObjectStore(FsBackend(str(tmp_path)))
        store.put("x/y/z.bin", b"\x00\x01")
        assert store.get("x/y/z.bin") == b"\x00\x01"
        assert store.list("x/") == ["x/y/z.bin"]
        store.delete("x/y/z.bin")
        assert not store.exists("x/y/z.bin")

    def test_fs_backend_rejects_traversal(self, tmp_path):
        backend = FsBackend(str(tmp_path))
        with pytest.raises(StorageError):
            backend.put("../escape", b"x")

    def test_memory_backend_isolation(self):
        backend = MemoryBackend()
        backend.put("k", b"v")
        blob = backend.get("k")
        assert blob == b"v"


class TestMetaStore:
    def test_put_get(self):
        meta = MetaStore()
        meta.put("k", {"a": 1})
        assert meta.get("k").value == {"a": 1}
        assert meta.get_value("k") == {"a": 1}
        assert meta.get("missing") is None
        assert meta.get_value("missing", 42) == 42

    def test_values_are_copies(self):
        meta = MetaStore()
        original = {"nested": [1, 2]}
        meta.put("k", original)
        original["nested"].append(3)
        assert meta.get_value("k") == {"nested": [1, 2]}
        fetched = meta.get_value("k")
        fetched["nested"].append(9)
        assert meta.get_value("k") == {"nested": [1, 2]}

    def test_revisions_increase(self):
        meta = MetaStore()
        r1 = meta.put("a", 1)
        r2 = meta.put("b", 2)
        r3 = meta.put("a", 3)
        assert r1 < r2 < r3
        assert meta.get("a").create_revision == r1
        assert meta.get("a").mod_revision == r3

    def test_cas_success_and_conflict(self):
        meta = MetaStore()
        rev = meta.put("k", "v1", expected_revision=0)
        meta.put("k", "v2", expected_revision=rev)
        with pytest.raises(RevisionConflict):
            meta.put("k", "v3", expected_revision=rev)  # stale
        with pytest.raises(RevisionConflict):
            meta.put("other", "x", expected_revision=99)

    def test_leader_election_pattern(self):
        meta = MetaStore()
        meta.put("leader", "node-a", expected_revision=0)
        with pytest.raises(RevisionConflict):
            meta.put("leader", "node-b", expected_revision=0)

    def test_delete(self):
        meta = MetaStore()
        meta.put("k", 1)
        assert meta.delete("k") is True
        assert meta.delete("k") is False
        assert meta.get("k") is None

    def test_range_and_keys(self):
        meta = MetaStore()
        for key in ("seg/a", "seg/b", "idx/a"):
            meta.put(key, key)
        assert meta.keys("seg/") == ["seg/a", "seg/b"]
        assert [kv.value for kv in meta.range("seg/")] == ["seg/a", "seg/b"]

    def test_watch_delivers_events(self):
        meta = MetaStore()
        events = []
        meta.watch("seg/", events.append)
        meta.put("seg/a", 1)
        meta.put("other", 2)
        meta.delete("seg/a")
        assert [(e.type, e.key) for e in events] == \
            [("put", "seg/a"), ("delete", "seg/a")]

    def test_watch_cancel(self):
        meta = MetaStore()
        events = []
        handle = meta.watch("", events.append)
        meta.put("a", 1)
        handle.cancel()
        meta.put("b", 2)
        assert len(events) == 1

    def test_lease_expiry_deletes_keys(self):
        meta = MetaStore()
        lease = meta.grant_lease(ttl_ms=100, now_ms=0)
        meta.put("node/a", "alive", lease_id=lease)
        assert meta.expire_leases(now_ms=50) == []
        assert meta.get("node/a") is not None
        assert meta.expire_leases(now_ms=150) == [lease]
        assert meta.get("node/a") is None

    def test_keep_alive_extends_lease(self):
        meta = MetaStore()
        lease = meta.grant_lease(ttl_ms=100, now_ms=0)
        meta.put("k", 1, lease_id=lease)
        meta.keep_alive(lease, ttl_ms=100, now_ms=90)
        assert meta.expire_leases(now_ms=150) == []
        assert meta.get("k") is not None

    def test_unknown_lease_rejected(self):
        meta = MetaStore()
        with pytest.raises(RevisionConflict):
            meta.put("k", 1, lease_id=99)
        with pytest.raises(RevisionConflict):
            meta.keep_alive(99, 100, 0)
