"""Tests for the log broker and WAL record serialization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ChannelNotFound
from repro.log.broker import LogBroker
from repro.log.wal import (
    CoordRecord,
    DdlRecord,
    DeleteRecord,
    InsertRecord,
    TimeTickRecord,
    record_from_bytes,
    record_to_bytes,
    shard_channel,
)
from repro.sim.events import EventLoop


class TestBrokerBasics:
    def test_publish_read(self):
        broker = LogBroker()
        broker.create_channel("c")
        assert broker.publish("c", "a") == 0
        assert broker.publish("c", "b") == 1
        entries = broker.read("c", 0)
        assert [e.payload for e in entries] == ["a", "b"]
        assert [e.offset for e in entries] == [0, 1]

    def test_unknown_channel_raises(self):
        broker = LogBroker()
        with pytest.raises(ChannelNotFound):
            broker.publish("nope", 1)
        with pytest.raises(ChannelNotFound):
            broker.read("nope", 0)

    def test_create_channel_idempotent(self):
        broker = LogBroker()
        broker.create_channel("c")
        broker.publish("c", 1)
        broker.create_channel("c")
        assert broker.end_offset("c") == 1

    def test_read_from_offset_bounded(self):
        broker = LogBroker()
        broker.create_channel("c")
        for i in range(10):
            broker.publish("c", i)
        entries = broker.read("c", 7, max_entries=2)
        assert [e.payload for e in entries] == [7, 8]

    def test_truncate_moves_begin(self):
        broker = LogBroker()
        broker.create_channel("c")
        for i in range(10):
            broker.publish("c", i)
        dropped = broker.truncate("c", 4)
        assert dropped == 4
        assert broker.begin_offset("c") == 4
        assert broker.end_offset("c") == 10
        assert [e.payload for e in broker.read("c", 0)] == list(range(4, 10))

    def test_truncate_beyond_end_clamped(self):
        broker = LogBroker()
        broker.create_channel("c")
        broker.publish("c", 1)
        assert broker.truncate("c", 100) == 1
        assert broker.begin_offset("c") == broker.end_offset("c") == 1


class TestSubscriptions:
    def test_pull_subscription(self):
        broker = LogBroker()
        broker.create_channel("c")
        sub = broker.subscribe("c", "reader")
        broker.publish("c", "x")
        broker.publish("c", "y")
        assert [e.payload for e in sub.poll()] == ["x", "y"]
        assert sub.poll() == []
        assert sub.lag() == 0

    def test_seek_replays(self):
        broker = LogBroker()
        broker.create_channel("c")
        sub = broker.subscribe("c", "reader")
        for i in range(5):
            broker.publish("c", i)
        sub.poll()
        sub.seek(2)
        assert [e.payload for e in sub.poll()] == [2, 3, 4]

    def test_push_without_loop_is_synchronous(self):
        broker = LogBroker()
        broker.create_channel("c")
        got = []
        broker.subscribe("c", "r", callback=lambda e: got.append(e.payload))
        broker.publish("c", 1)
        broker.publish("c", 2)
        assert got == [1, 2]

    def test_push_backlog_delivered_on_subscribe(self):
        broker = LogBroker()
        broker.create_channel("c")
        broker.publish("c", "old")
        got = []
        broker.subscribe("c", "r", callback=lambda e: got.append(e.payload))
        assert got == ["old"]

    def test_push_with_loop_has_delay(self):
        loop = EventLoop()
        broker = LogBroker(loop, delivery_delay_ms=5.0)
        broker.create_channel("c")
        got = []
        broker.subscribe("c", "r",
                         callback=lambda e: got.append((loop.now(),
                                                        e.payload)))
        broker.publish("c", "x")
        assert got == []  # not yet delivered
        loop.run_until(10)
        assert got == [(5.0, "x")]

    def test_cancel_stops_delivery(self):
        broker = LogBroker()
        broker.create_channel("c")
        got = []
        sub = broker.subscribe("c", "r",
                               callback=lambda e: got.append(e.payload))
        broker.publish("c", 1)
        sub.cancel()
        broker.publish("c", 2)
        assert got == [1]

    def test_subscribe_from_offset(self):
        broker = LogBroker()
        broker.create_channel("c")
        for i in range(5):
            broker.publish("c", i)
        got = []
        broker.subscribe("c", "r", from_offset=3,
                         callback=lambda e: got.append(e.payload))
        assert got == [3, 4]

    def test_ordering_preserved_with_loop(self):
        loop = EventLoop()
        broker = LogBroker(loop, delivery_delay_ms=1.0)
        broker.create_channel("c")
        got = []
        broker.subscribe("c", "r", callback=lambda e: got.append(e.payload))
        for i in range(20):
            broker.publish("c", i)
        loop.run_until(100)
        assert got == list(range(20))


class TestWalSerialization:
    def test_insert_roundtrip(self):
        vectors = np.arange(12, dtype=np.float32).reshape(3, 4)
        record = InsertRecord(ts=77, collection="c", shard=1,
                              segment_id="seg-1", pks=(1, 2, 3),
                              columns={"vector": vectors,
                                       "price": [1.5, 2.5, 3.5],
                                       "label": ["a", "b", "c"]})
        again = record_from_bytes(record_to_bytes(record))
        assert isinstance(again, InsertRecord)
        assert again.ts == 77 and again.pks == (1, 2, 3)
        assert np.array_equal(again.columns["vector"], vectors)
        assert again.columns["price"] == [1.5, 2.5, 3.5]
        assert again.columns["label"] == ["a", "b", "c"]
        assert again.num_rows == 3

    def test_delete_roundtrip(self):
        record = DeleteRecord(ts=5, collection="c", shard=0, pks=(9, 10))
        again = record_from_bytes(record_to_bytes(record))
        assert again == record

    def test_timetick_roundtrip(self):
        record = TimeTickRecord(ts=123, source="tso")
        assert record_from_bytes(record_to_bytes(record)) == record

    def test_ddl_roundtrip(self):
        record = DdlRecord(ts=1, op="create_collection", collection="c",
                           payload={"fields": []})
        again = record_from_bytes(record_to_bytes(record))
        assert again.op == "create_collection"
        assert again.payload == {"fields": []}

    def test_coord_roundtrip(self):
        record = CoordRecord(ts=2, kind_name="segment_flushed",
                             payload={"segment_id": "s"})
        again = record_from_bytes(record_to_bytes(record))
        assert again.kind == "segment_flushed"
        assert again.payload == {"segment_id": "s"}

    def test_bad_blob_rejected(self):
        with pytest.raises(ValueError):
            record_from_bytes(b"garbage")

    def test_shard_channel_naming(self):
        assert shard_channel("coll", 3) == "wal/coll/shard-3"

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=20,
                    unique=True),
           st.integers(0, 2**50))
    @settings(max_examples=25)
    def test_insert_roundtrip_property(self, pks, ts):
        vectors = np.random.default_rng(0).standard_normal(
            (len(pks), 8)).astype(np.float32)
        record = InsertRecord(ts=ts, collection="c", shard=0,
                              segment_id="s", pks=tuple(pks),
                              columns={"v": vectors})
        again = record_from_bytes(record_to_bytes(record))
        assert again.pks == tuple(pks)
        assert again.ts == ts
        assert np.allclose(again.columns["v"], vectors)
