"""Tests for the time-travel x compaction x retention interplay.

Compaction must not break restorability of checkpoints taken before it
(input binlogs they reference are preserved), and retention must clean
those orphaned binlogs once the checkpoints expire.
"""

import numpy as np
import pytest

from repro.cluster.manu import ManuCluster
from repro.config import ManuConfig, SegmentConfig
from repro.core.schema import CollectionSchema, DataType, FieldSchema
from repro.errors import TimeTravelError
from repro.log.binlog import BinlogReader


@pytest.fixture
def schema():
    return CollectionSchema([
        FieldSchema("pk", DataType.INT64, is_primary=True),
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8),
    ])


def small_cluster():
    config = ManuConfig(segment=SegmentConfig(
        seal_entity_count=32, compaction_min_size=32,
        compaction_target_size=128))
    return ManuCluster(config=config, num_query_nodes=1)


def insert(cluster, rng, pks):
    cluster.insert("c", {
        "pk": list(pks),
        "vector": rng.standard_normal((len(pks), 8)).astype(np.float32)})


class TestCompactionPreservesCheckpoints:
    def test_restore_before_compaction_still_works(self, schema, rng):
        cluster = small_cluster()
        cluster.create_collection("c", schema)
        insert(cluster, rng, range(20))
        cluster.run_for(200)
        cluster.flush("c")
        insert(cluster, rng, range(20, 40))
        cluster.run_for(200)
        cluster.flush("c")
        cluster.checkpoint("c")
        t_before = cluster.now()
        cluster.run_for(100)

        new_ids = cluster.compact("c")
        cluster.run_for(300)
        assert new_ids  # small segments merged

        restored = cluster.time_travel("c", t_before)
        pks = {pk for seg in restored.values() for pk in seg.pks}
        assert pks == set(range(40))

    def test_unreferenced_inputs_are_deleted(self, schema, rng):
        cluster = small_cluster()
        cluster.create_collection("c", schema)
        insert(cluster, rng, range(20))
        cluster.run_for(200)
        cluster.flush("c")
        insert(cluster, rng, range(20, 40))
        cluster.run_for(200)
        cluster.flush("c")
        before = set(BinlogReader(cluster.store).list_segments("c"))
        # No checkpoints reference the inputs: compaction removes them.
        cluster.compact("c")
        cluster.run_for(300)
        after = set(BinlogReader(cluster.store).list_segments("c"))
        assert not (before & after)  # all inputs gone
        assert any(sid.startswith("compacted-") for sid in after)


class TestRetentionCleansOrphans:
    def test_expired_checkpoint_releases_orphaned_binlogs(self, schema,
                                                          rng):
        cluster = small_cluster()
        cluster.create_collection("c", schema)
        insert(cluster, rng, range(20))
        cluster.run_for(200)
        cluster.flush("c")
        insert(cluster, rng, range(20, 40))
        cluster.run_for(200)
        cluster.flush("c")
        cluster.checkpoint("c")
        t_checkpoint = cluster.now()
        inputs = set(BinlogReader(cluster.store).list_segments("c"))

        cluster.run_for(100)
        cluster.compact("c")
        cluster.run_for(300)
        # Inputs preserved for the checkpoint.
        remaining = set(BinlogReader(cluster.store).list_segments("c"))
        assert inputs <= remaining

        # Take a fresh checkpoint so retention has a survivor, then
        # expire everything older than it.
        cluster.run_for(100)
        cluster.checkpoint("c")
        dropped = cluster.apply_retention(
            "c", expire_before_ms=t_checkpoint + 50)
        assert dropped > 0
        final = set(BinlogReader(cluster.store).list_segments("c"))
        assert not (inputs & final)  # orphans cleaned

        # The expired checkpoint is gone; restoring at its time fails
        # loudly rather than returning wrong data.
        with pytest.raises(TimeTravelError):
            cluster.time_travel("c", t_checkpoint - 1000)

    def test_post_compaction_checkpoint_restores(self, schema, rng):
        cluster = small_cluster()
        cluster.create_collection("c", schema)
        insert(cluster, rng, range(20))
        cluster.run_for(200)
        cluster.flush("c")
        insert(cluster, rng, range(20, 40))
        cluster.run_for(200)
        cluster.flush("c")
        cluster.compact("c")
        cluster.run_for(300)
        cluster.checkpoint("c")
        t_after = cluster.now()
        restored = cluster.time_travel("c", t_after)
        pks = {pk for seg in restored.values() for pk in seg.pks}
        assert pks == set(range(40))
