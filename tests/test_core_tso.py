"""Tests for the hybrid-logical-clock timestamp oracle."""

from hypothesis import given, strategies as st

from repro.core.tso import LOGICAL_MASK, Timestamp, TimestampOracle


class TestTimestamp:
    def test_pack_unpack_roundtrip(self):
        ts = Timestamp(123456, 42)
        assert Timestamp.unpack(ts.pack()) == ts

    def test_pack_preserves_order(self):
        a = Timestamp(10, 5).pack()
        b = Timestamp(10, 6).pack()
        c = Timestamp(11, 0).pack()
        assert a < b < c

    def test_from_physical(self):
        ts = Timestamp.from_physical(99.7)
        assert ts.physical_ms == 99 and ts.logical == 0

    @given(st.integers(0, 2**40), st.integers(0, LOGICAL_MASK))
    def test_roundtrip_property(self, physical, logical):
        ts = Timestamp(physical, logical)
        assert Timestamp.unpack(ts.pack()) == ts


class TestTimestampOracle:
    def test_monotonic_with_frozen_clock(self):
        tso = TimestampOracle(lambda: 5.0)
        stamps = [tso.allocate() for _ in range(100)]
        for prev, cur in zip(stamps, stamps[1:]):
            assert cur > prev

    def test_physical_tracks_clock(self):
        now = {"t": 0.0}
        tso = TimestampOracle(lambda: now["t"])
        first = tso.allocate()
        now["t"] = 100.0
        second = tso.allocate()
        assert first.physical_ms == 0
        assert second.physical_ms == 100
        assert second.logical == 0

    def test_logical_counter_within_same_ms(self):
        tso = TimestampOracle(lambda: 7.0)
        a = tso.allocate()
        b = tso.allocate()
        assert a.physical_ms == b.physical_ms == 7
        assert b.logical == a.logical + 1

    def test_logical_overflow_bumps_physical(self):
        tso = TimestampOracle(lambda: 3.0)
        tso._last = Timestamp(3, LOGICAL_MASK)
        ts = tso.allocate()
        assert ts == Timestamp(4, 0)

    def test_issued_count(self):
        tso = TimestampOracle(lambda: 0.0)
        for _ in range(5):
            tso.allocate()
        assert tso.issued_count == 5

    def test_allocate_packed_monotonic(self):
        now = {"t": 0.0}
        tso = TimestampOracle(lambda: now["t"])
        packed = []
        for step in range(50):
            now["t"] = step // 10  # clock advances slowly
            packed.append(tso.allocate_packed())
        assert packed == sorted(packed)
        assert len(set(packed)) == len(packed)

    def test_clock_regression_tolerated(self):
        # The HLC must stay monotone even if the clock source jumps back.
        now = {"t": 100.0}
        tso = TimestampOracle(lambda: now["t"])
        first = tso.allocate()
        now["t"] = 50.0
        second = tso.allocate()
        assert second > first
