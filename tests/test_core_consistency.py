"""Tests for the delta-consistency model."""

import pytest
from hypothesis import given, strategies as st

from repro.core.consistency import (
    ConsistencyGate,
    ConsistencyLevel,
    guarantee_ts,
)
from repro.core.tso import Timestamp


def packed(ms: int, logical: int = 0) -> int:
    return Timestamp(ms, logical).pack()


class TestGuaranteeTs:
    def test_strong_equals_issue(self):
        assert guarantee_ts(ConsistencyLevel.STRONG, packed(100)) == \
            packed(100)

    def test_bounded_subtracts_staleness(self):
        got = guarantee_ts(ConsistencyLevel.BOUNDED, packed(100, 5),
                           staleness_ms=30)
        assert got == packed(70, 5)

    def test_bounded_clamps_at_zero(self):
        got = guarantee_ts(ConsistencyLevel.BOUNDED, packed(10),
                           staleness_ms=100)
        assert Timestamp.unpack(got).physical_ms == 0

    def test_bounded_zero_is_strong(self):
        issue = packed(55, 3)
        assert guarantee_ts(ConsistencyLevel.BOUNDED, issue, 0) == \
            guarantee_ts(ConsistencyLevel.STRONG, issue)

    def test_session_uses_last_write(self):
        got = guarantee_ts(ConsistencyLevel.SESSION, packed(100),
                           session_ts=packed(42))
        assert got == packed(42)

    def test_eventual_never_waits(self):
        assert guarantee_ts(ConsistencyLevel.EVENTUAL, packed(100)) == 0

    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError):
            guarantee_ts(ConsistencyLevel.BOUNDED, packed(10), -5)


class TestConsistencyGate:
    def test_ready_progression(self):
        gate = ConsistencyGate()
        assert gate.ready(0)
        assert not gate.ready(packed(10))
        gate.observe_tick(packed(10))
        assert gate.ready(packed(10))
        assert not gate.ready(packed(11))

    def test_watermark_monotone(self):
        gate = ConsistencyGate()
        gate.observe(packed(50))
        gate.observe(packed(20))  # stale observation ignored
        assert gate.seen_ts == packed(50)

    def test_tick_counter(self):
        gate = ConsistencyGate()
        gate.observe_tick(packed(1))
        gate.observe_tick(packed(2))
        gate.observe(packed(3))  # not a tick
        assert gate.ticks_consumed == 2

    def test_lag_ms(self):
        gate = ConsistencyGate()
        gate.observe(packed(40))
        assert gate.lag_ms(packed(100)) == 60.0
        assert gate.lag_ms(packed(30)) == 0.0

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=50),
           st.integers(0, 10_000))
    def test_gate_invariant(self, observations, guarantee_ms):
        """ready(g) holds iff some observation >= g was made."""
        gate = ConsistencyGate()
        for ms in observations:
            gate.observe(packed(ms))
        guarantee = packed(guarantee_ms)
        assert gate.ready(guarantee) == (max(observations) >= guarantee_ms)
