"""End-to-end cluster integration tests: the full write -> log -> flush ->
index -> search pipeline, consistency levels, failure recovery, time
travel and compaction."""

import numpy as np
import pytest

from repro.cluster.manu import ManuCluster
from repro.config import ManuConfig, SegmentConfig
from repro.core.consistency import ConsistencyLevel
from repro.core.schema import CollectionSchema, DataType, FieldSchema, \
    MetricType


@pytest.fixture
def schema():
    return CollectionSchema([
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=16),
        FieldSchema("price", DataType.FLOAT),
    ])


def rows(rng, n, dim=16):
    return {"vector": rng.standard_normal((n, dim)).astype(np.float32),
            "price": rng.uniform(0, 100, n)}


class TestWriteReadPath:
    def test_insert_then_search_strong(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        data = rows(rng, 200)
        pks = cluster.insert("c", data)
        result = cluster.search("c", data["vector"][17], 5,
                                consistency=ConsistencyLevel.STRONG)[0]
        assert result.pks[0] == pks[17]
        assert result.latency_ms > 0

    def test_eventual_may_miss_fresh_write(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        data = rows(rng, 50)
        cluster.insert("c", data)
        # Immediately after insert, log delivery has not happened yet.
        result = cluster.search("c", data["vector"][0], 5,
                                consistency=ConsistencyLevel.EVENTUAL)[0]
        assert result.consistency_wait_ms == 0.0

    def test_session_reads_own_writes(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        data = rows(rng, 50)
        pks = cluster.insert("c", data)
        result = cluster.search("c", data["vector"][3], 1,
                                consistency=ConsistencyLevel.SESSION)[0]
        assert result.pks[0] == pks[3]

    def test_bounded_staleness_waits_appropriately(self, cluster, schema,
                                                   rng):
        cluster.create_collection("c", schema)
        data = rows(rng, 50)
        cluster.insert("c", data)
        tight = cluster.search("c", data["vector"][0], 1,
                               consistency=ConsistencyLevel.BOUNDED,
                               staleness_ms=1.0)[0]
        # With 50 ms ticks a 1 ms tolerance must wait for the next tick.
        assert tight.consistency_wait_ms > 0

    def test_multi_batch_inserts_accumulate(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        for _ in range(4):
            cluster.insert("c", rows(rng, 50))
        cluster.run_for(200)
        assert cluster.collection_row_count("c") == 200

    def test_delete_by_pk_list(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        data = rows(rng, 30)
        pks = cluster.insert("c", data)
        assert cluster.delete("c", f"_auto_id in [{pks[4]}, {pks[9]}]") == 2
        result = cluster.search("c", data["vector"][4], 3,
                                consistency=ConsistencyLevel.STRONG)[0]
        assert pks[4] not in result.pks
        assert cluster.collection_row_count("c") == 28

    def test_delete_nonexistent_returns_zero(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        cluster.insert("c", rows(rng, 10))
        assert cluster.delete("c", "_auto_id in [99999]") == 0


class TestFlushIndexHandoff:
    def test_flush_moves_data_to_sealed(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        data = rows(rng, 120)
        pks = cluster.insert("c", data)
        cluster.run_for(200)
        cluster.flush("c")
        flushed = cluster.data_coord.flushed_segments("c")
        assert flushed
        # Data remains searchable after handoff, without duplication.
        result = cluster.search("c", data["vector"][11], 3,
                                consistency=ConsistencyLevel.STRONG)[0]
        assert result.pks[0] == pks[11]
        assert len(set(result.pks)) == len(result.pks)
        assert cluster.collection_row_count("c") == 120

    def test_index_built_and_used(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        data = rows(rng, 150)
        pks = cluster.insert("c", data)
        cluster.run_for(200)
        cluster.flush("c")
        cluster.create_index("c", "vector", "IVF_FLAT",
                             MetricType.EUCLIDEAN, {"nlist": 8,
                                                    "nprobe": 8})
        assert cluster.wait_for_indexes("c")
        # Indexes attached on the query nodes hosting the segments.
        attached = 0
        for node in cluster.query_coord.live_nodes():
            for sid in node.sealed_segments_of("c"):
                segment = node.segment("c", sid)
                if segment.has_index("vector"):
                    attached += 1
        assert attached == len(cluster.data_coord.flushed_segments("c"))
        result = cluster.search("c", data["vector"][42], 3,
                                consistency=ConsistencyLevel.STRONG)[0]
        assert result.pks[0] == pks[42]

    def test_deletes_after_flush_respected(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        data = rows(rng, 100)
        pks = cluster.insert("c", data)
        cluster.run_for(200)
        cluster.flush("c")
        cluster.delete("c", f"_auto_id in [{pks[7]}]")
        result = cluster.search("c", data["vector"][7], 3,
                                consistency=ConsistencyLevel.STRONG)[0]
        assert pks[7] not in result.pks

    def test_filtered_search_end_to_end(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        vectors = rng.standard_normal((100, 16)).astype(np.float32)
        prices = np.arange(100, dtype=np.float64)
        cluster.insert("c", {"vector": vectors, "price": prices})
        result = cluster.search("c", vectors[5], 5, expr="price >= 50",
                                consistency=ConsistencyLevel.STRONG)[0]
        assert result.pks  # something passes
        # pks are 1-based auto ids; price of pk p is p - 1.
        assert all(pk - 1 >= 50 for pk in result.pks)


class TestFailureRecovery:
    def test_query_node_failure_recovers_sealed(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        data = rows(rng, 150)
        pks = cluster.insert("c", data)
        cluster.run_for(200)
        cluster.flush("c")
        victim = cluster.query_coord.node_names[0]
        cluster.fail_query_node(victim)
        cluster.run_for(500)
        assert cluster.num_query_nodes == 1
        result = cluster.search("c", data["vector"][33], 3,
                                consistency=ConsistencyLevel.STRONG)[0]
        assert result.pks[0] == pks[33]

    def test_query_node_failure_recovers_growing_via_replay(self, cluster,
                                                            schema, rng):
        cluster.create_collection("c", schema)
        data = rows(rng, 60)
        pks = cluster.insert("c", data)
        cluster.run_for(200)  # data only in growing segments
        victim = cluster.query_coord.node_names[0]
        cluster.fail_query_node(victim)
        cluster.run_for(500)
        result = cluster.search("c", data["vector"][10], 3,
                                consistency=ConsistencyLevel.STRONG)[0]
        assert result.pks[0] == pks[10]

    def test_scale_down_then_search(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        data = rows(rng, 100)
        pks = cluster.insert("c", data)
        cluster.run_for(200)
        cluster.flush("c")
        cluster.remove_query_node()
        cluster.run_for(500)
        result = cluster.search("c", data["vector"][50], 1,
                                consistency=ConsistencyLevel.STRONG)[0]
        assert result.pks[0] == pks[50]


class TestTimeTravel:
    def test_restore_excludes_later_writes(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        first = rows(rng, 60)
        pks_first = cluster.insert("c", first)
        cluster.run_for(200)
        cluster.flush("c")
        cluster.checkpoint("c")
        t_checkpoint = cluster.now()
        cluster.run_for(100)
        second = rows(rng, 40)
        cluster.insert("c", second)
        cluster.run_for(200)

        segments = cluster.time_travel("c", t_checkpoint)
        total = sum(s.num_live_rows for s in segments.values())
        assert total == 60
        restored_pks = {pk for s in segments.values() for pk in s.pks}
        assert restored_pks == set(pks_first)

    def test_restore_includes_wal_tail(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        cluster.insert("c", rows(rng, 50))
        cluster.run_for(200)
        cluster.flush("c")
        cluster.checkpoint("c")
        cluster.run_for(50)
        pks_late = cluster.insert("c", rows(rng, 20))
        cluster.run_for(100)
        t_after = cluster.now()

        segments = cluster.time_travel("c", t_after)
        restored = {pk for s in segments.values() for pk in s.pks}
        assert set(pks_late) <= restored
        assert sum(s.num_live_rows for s in segments.values()) == 70

    def test_restore_replays_deletes(self, cluster, schema, rng):
        cluster.create_collection("c", schema)
        data = rows(rng, 50)
        pks = cluster.insert("c", data)
        cluster.run_for(200)
        cluster.flush("c")
        cluster.checkpoint("c")
        cluster.delete("c", f"_auto_id in [{pks[0]}]")
        cluster.run_for(2000)  # housekeeping flushes delta logs
        t_after = cluster.now()
        segments = cluster.time_travel("c", t_after)
        assert sum(s.num_live_rows for s in segments.values()) == 49

    def test_restore_without_checkpoint_fails(self, cluster, schema):
        from repro.errors import TimeTravelError
        cluster.create_collection("c", schema)
        with pytest.raises(TimeTravelError):
            cluster.time_travel("c", cluster.now())


class TestCompaction:
    def test_small_segments_merged(self, schema, rng):
        config = ManuConfig(
            segment=SegmentConfig(seal_entity_count=64, slice_size=32,
                                  compaction_min_size=64,
                                  compaction_target_size=256))
        cluster = ManuCluster(config=config, num_query_nodes=2)
        cluster.create_collection("c", schema)
        # Several small flushes -> several small sealed segments.
        for _ in range(3):
            cluster.insert("c", rows(rng, 40))
            cluster.run_for(100)
            cluster.flush("c")
        before = cluster.data_coord.flushed_segments("c")
        assert len(before) >= 2
        new_ids = cluster.compact("c")
        cluster.run_for(500)
        assert new_ids
        assert cluster.collection_row_count("c") == 120

    def test_compaction_purges_deleted_rows(self, schema, rng):
        config = ManuConfig(
            segment=SegmentConfig(seal_entity_count=64,
                                  compaction_min_size=8))
        cluster = ManuCluster(config=config, num_query_nodes=1)
        cluster.create_collection("c", schema)
        data = rows(rng, 40)
        pks = cluster.insert("c", data)
        cluster.run_for(100)
        cluster.flush("c")
        doomed = ", ".join(str(pk) for pk in pks[:20])
        cluster.delete("c", f"_auto_id in [{doomed}]")
        cluster.run_for(200)
        new_ids = cluster.compact("c")
        cluster.run_for(500)
        assert new_ids
        assert cluster.collection_row_count("c") == 20


class TestMultiProxy:
    def test_round_robin_proxies(self, schema, rng):
        cluster = ManuCluster(num_proxies=3, num_query_nodes=1)
        cluster.create_collection("c", schema)
        data = rows(rng, 30)
        cluster.insert("c", data)
        for _ in range(3):
            cluster.search("c", data["vector"][0], 1,
                           consistency=ConsistencyLevel.STRONG)
        counts = [p.metrics.counters.get(f"proxy.{p.name}.searches")
                  for p in cluster.proxies]
        fired = [c.value for c in counts if c is not None]
        assert sum(fired) == 3
