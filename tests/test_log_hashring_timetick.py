"""Tests for the consistent-hash ring and the time-tick emitter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tso import Timestamp, TimestampOracle
from repro.log.broker import LogBroker
from repro.log.hashring import HashRing
from repro.log.timetick import TimeTickEmitter
from repro.log.wal import TimeTickRecord
from repro.sim.events import EventLoop


class TestHashRing:
    def test_single_node_owns_everything(self):
        ring = HashRing(["n1"])
        assert all(ring.owner(f"k{i}") == "n1" for i in range(50))

    def test_empty_ring_raises(self):
        with pytest.raises(ValueError):
            HashRing().owner("k")

    def test_deterministic_ownership(self):
        a = HashRing(["n1", "n2", "n3"])
        b = HashRing(["n3", "n1", "n2"])  # insertion order irrelevant
        assert all(a.owner(f"k{i}") == b.owner(f"k{i}") for i in range(100))

    def test_add_remove_idempotent(self):
        ring = HashRing(["n1"])
        ring.add_node("n1")
        assert len(ring) == 1
        ring.remove_node("nope")
        assert len(ring) == 1

    def test_distribution_roughly_balanced(self):
        ring = HashRing([f"n{i}" for i in range(4)], vnodes_per_node=128)
        counts = ring.distribution([f"key-{i}" for i in range(4000)])
        assert min(counts.values()) > 500  # no starved node

    def test_removal_only_moves_removed_nodes_keys(self):
        """The consistent-hashing property: stability under churn."""
        ring = HashRing(["n1", "n2", "n3", "n4"])
        keys = [f"key-{i}" for i in range(500)]
        before = {k: ring.owner(k) for k in keys}
        ring.remove_node("n2")
        after = {k: ring.owner(k) for k in keys}
        for key in keys:
            if before[key] != "n2":
                assert after[key] == before[key]
            else:
                assert after[key] != "n2"

    def test_addition_only_steals_keys(self):
        ring = HashRing(["n1", "n2"])
        keys = [f"key-{i}" for i in range(500)]
        before = {k: ring.owner(k) for k in keys}
        ring.add_node("n3")
        after = {k: ring.owner(k) for k in keys}
        for key in keys:
            assert after[key] in (before[key], "n3")

    def test_owners_replication(self):
        ring = HashRing(["a", "b", "c"])
        owners = ring.owners("key", 2)
        assert len(owners) == 2
        assert len(set(owners)) == 2
        assert owners[0] == ring.owner("key")

    def test_owners_clamped_to_ring_size(self):
        ring = HashRing(["a", "b"])
        assert len(ring.owners("k", 10)) == 2

    @given(st.sets(st.text(min_size=1, max_size=8), min_size=1,
                   max_size=8),
           st.text(min_size=1, max_size=16))
    @settings(max_examples=50)
    def test_owner_always_member(self, nodes, key):
        ring = HashRing(nodes)
        assert ring.owner(key) in nodes

    def test_weight_scales_key_share(self):
        ring = HashRing(vnodes_per_node=128)
        ring.add_node("heavy", weight=3.0)
        ring.add_node("light", weight=1.0)
        counts = ring.distribution([f"key-{i}" for i in range(4000)])
        # A 3x-weighted node should own roughly 3x the keys; allow
        # generous slack for hash variance.
        assert counts["heavy"] > 2.0 * counts["light"]

    def test_weight_accessor(self):
        ring = HashRing()
        ring.add_node("n1", weight=2.5)
        assert ring.weight("n1") == 2.5
        assert ring.weight("absent") == 0.0
        ring.remove_node("n1")
        assert ring.weight("n1") == 0.0

    def test_reweight_in_place(self):
        ring = HashRing(["n1", "n2"], vnodes_per_node=64)
        keys = [f"key-{i}" for i in range(1000)]
        before = ring.distribution(keys)
        ring.add_node("n1", weight=4.0)  # re-add = re-weight
        assert ring.weight("n1") == 4.0
        assert len(ring) == 2
        after = ring.distribution(keys)
        assert after["n1"] > before["n1"]

    def test_same_weight_readd_is_noop(self):
        ring = HashRing(["n1", "n2"])
        keys = [f"key-{i}" for i in range(500)]
        before = {k: ring.owner(k) for k in keys}
        ring.add_node("n1", weight=1.0)
        assert {k: ring.owner(k) for k in keys} == before

    def test_fractional_weight_keeps_at_least_one_vnode(self):
        ring = HashRing(vnodes_per_node=4)
        ring.add_node("tiny", weight=0.001)
        assert ring.owner("anything") == "tiny"

    def test_reweight_only_shifts_boundary_keys(self):
        """Consistent-hashing stability holds under re-weighting: keys
        either stay put or move to/from the re-weighted node."""
        ring = HashRing(["n1", "n2", "n3"], vnodes_per_node=64)
        keys = [f"key-{i}" for i in range(800)]
        before = {k: ring.owner(k) for k in keys}
        ring.add_node("n2", weight=2.0)
        after = {k: ring.owner(k) for k in keys}
        for key in keys:
            if before[key] != after[key]:
                assert after[key] == "n2" or before[key] == "n2"


class TestTimeTickEmitter:
    def _setup(self, interval=50.0):
        loop = EventLoop()
        tso = TimestampOracle(loop.now)
        broker = LogBroker(loop)
        broker.create_channel("c1")
        broker.create_channel("c2")
        emitter = TimeTickEmitter(loop, broker, tso, interval,
                                  channels=["c1", "c2"])
        return loop, broker, emitter

    def test_periodic_emission_on_all_channels(self):
        loop, broker, emitter = self._setup(50.0)
        emitter.start()
        loop.run_until(230)
        for channel in ("c1", "c2"):
            entries = broker.read(channel, 0)
            assert len(entries) == 4  # at 50, 100, 150, 200
            assert all(isinstance(e.payload, TimeTickRecord)
                       for e in entries)

    def test_tick_timestamps_track_clock(self):
        loop, broker, emitter = self._setup(100.0)
        emitter.start()
        loop.run_until(350)
        ticks = [e.payload.ts for e in broker.read("c1", 0)]
        physicals = [Timestamp.unpack(ts).physical_ms for ts in ticks]
        assert physicals == [100, 200, 300]

    def test_stop_halts_emission(self):
        loop, broker, emitter = self._setup(10.0)
        emitter.start()
        loop.run_until(35)
        emitter.stop()
        loop.run_until(200)
        assert len(broker.read("c1", 0)) == 3

    def test_add_channel_later(self):
        loop, broker, emitter = self._setup(10.0)
        broker.create_channel("c3")
        emitter.start()
        loop.run_until(15)
        emitter.add_channel("c3")
        loop.run_until(35)
        assert len(broker.read("c3", 0)) == 2

    def test_double_start_rejected(self):
        _loop, _broker, emitter = self._setup()
        emitter.start()
        with pytest.raises(RuntimeError):
            emitter.start()

    def test_bad_interval_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            TimeTickEmitter(loop, LogBroker(loop),
                            TimestampOracle(loop.now), 0.0)
