"""Unit tests for segment range search / row fetch and the index
coordinator's pending-build queue."""

import numpy as np
import pytest

from repro.cluster.manu import ManuCluster
from repro.config import SegmentConfig
from repro.core.schema import CollectionSchema, DataType, FieldSchema, \
    MetricType
from repro.core.segment import Segment


@pytest.fixture
def segment(rng):
    schema = CollectionSchema([
        FieldSchema("pk", DataType.INT64, is_primary=True),
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=6),
        FieldSchema("label", DataType.STRING),
    ])
    seg = Segment("s", "c", schema, SegmentConfig(slice_size=10**9))
    base = rng.standard_normal(6).astype(np.float32)
    vectors = np.stack([base + 0.1 * i for i in range(10)])
    seg.append(list(range(10)), {
        "vector": vectors,
        "label": [f"item-{i}" for i in range(10)]}, lsn=1)
    return seg, base, vectors


class TestSegmentRangeSearch:
    def test_threshold_exact(self, segment):
        seg, base, vectors = segment
        # adjusted threshold is squared L2.
        exact = ((vectors - base) ** 2).sum(axis=1)
        threshold = float(np.sort(exact)[4]) + 1e-6  # include 5 rows
        batch = seg.range_search("vector", base, threshold,
                                 MetricType.EUCLIDEAN)
        assert batch.pks.tolist() == [0, 1, 2, 3, 4]
        assert (np.diff(batch.dists) >= -1e-6).all()

    def test_respects_deletes_and_mask(self, segment):
        seg, base, _vectors = segment
        seg.apply_delete([0], 9)
        mask = np.ones(10, dtype=bool)
        mask[1] = False
        batch = seg.range_search("vector", base, 1e9,
                                 MetricType.EUCLIDEAN, filter_mask=mask)
        pks = batch.pks.tolist()
        assert 0 not in pks and 1 not in pks
        assert len(pks) == 8

    def test_empty_when_nothing_in_range(self, segment):
        seg, base, _v = segment
        batch = seg.range_search("vector", base + 100.0, 0.001,
                                 MetricType.EUCLIDEAN)
        assert len(batch) == 0


class TestSegmentFetchRows:
    def test_fetch_values(self, segment):
        seg, _base, vectors = segment
        rows = seg.fetch_rows([2, 5, 99])
        assert set(rows) == {2, 5}
        assert rows[2]["label"] == "item-2"
        assert np.allclose(rows[2]["vector"], vectors[2])

    def test_deleted_not_fetched(self, segment):
        seg, _base, _v = segment
        seg.apply_delete([2], 9)
        assert 2 not in seg.fetch_rows([2])

    def test_returned_vectors_are_copies(self, segment):
        seg, _base, vectors = segment
        rows = seg.fetch_rows([0])
        rows[0]["vector"][:] = 0.0
        assert np.allclose(seg.column("vector")[0], vectors[0])


class TestPendingBuilds:
    def test_builds_park_without_nodes_and_drain_on_add(self, rng):
        cluster = ManuCluster(num_query_nodes=1, num_index_nodes=1)
        schema = CollectionSchema(
            [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8)])
        cluster.create_collection("c", schema)
        cluster.create_index("c", "vector", "IVF_FLAT",
                             MetricType.EUCLIDEAN, {"nlist": 4})
        # Kill the only index node, then flush: builds must park.
        cluster.index_coord.remove_node("in-0")
        cluster.insert("c", {"vector": rng.standard_normal(
            (80, 8)).astype(np.float32)})
        cluster.run_for(200)
        cluster.flush("c")
        assert cluster.index_coord.pending_build_count > 0
        # Capacity returns: parked builds drain and complete.
        from repro.nodes.index_node import IndexNode
        node = IndexNode("in-new", cluster.loop, cluster.broker,
                         cluster.store, cluster.config,
                         cluster.cost_model)
        cluster.index_coord.add_node(node)
        assert cluster.index_coord.pending_build_count == 0
        assert cluster.wait_for_indexes("c")
