"""Tests for entity-batch validation."""

import numpy as np
import pytest

from repro.core.entity import reset_auto_id_counter, validate_batch
from repro.core.schema import CollectionSchema, DataType, FieldSchema
from repro.errors import SchemaError


@pytest.fixture
def schema():
    return CollectionSchema([
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=4),
        FieldSchema("price", DataType.FLOAT),
        FieldSchema("label", DataType.STRING),
    ])


@pytest.fixture
def explicit_schema():
    return CollectionSchema([
        FieldSchema("pk", DataType.INT64, is_primary=True),
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=4),
    ])


def good_data(n=3):
    return {
        "vector": np.ones((n, 4), dtype=np.float32),
        "price": [1.0, 2.0, 3.0][:n],
        "label": ["a", "b", "c"][:n],
    }


class TestAutoId:
    def test_auto_ids_assigned_sequentially(self, schema):
        batch = validate_batch(schema, good_data())
        assert batch.pks == (1, 2, 3)
        again = validate_batch(schema, good_data())
        assert again.pks == (4, 5, 6)

    def test_reset_counter(self, schema):
        validate_batch(schema, good_data())
        reset_auto_id_counter()
        batch = validate_batch(schema, good_data())
        assert batch.pks == (1, 2, 3)

    def test_supplying_auto_id_rejected(self, schema):
        data = good_data()
        data["_auto_id"] = [1, 2, 3]
        with pytest.raises(SchemaError):
            validate_batch(schema, data)


class TestExplicitPk:
    def test_pks_from_data(self, explicit_schema):
        batch = validate_batch(explicit_schema, {
            "pk": [10, 20], "vector": np.zeros((2, 4), dtype=np.float32)})
        assert batch.pks == (10, 20)

    def test_missing_pk_rejected(self, explicit_schema):
        with pytest.raises(SchemaError):
            validate_batch(explicit_schema,
                           {"vector": np.zeros((2, 4), dtype=np.float32)})

    def test_duplicate_pks_rejected(self, explicit_schema):
        with pytest.raises(SchemaError):
            validate_batch(explicit_schema, {
                "pk": [1, 1],
                "vector": np.zeros((2, 4), dtype=np.float32)})

    def test_string_pks(self):
        schema = CollectionSchema([
            FieldSchema("pk", DataType.STRING, is_primary=True),
            FieldSchema("vector", DataType.FLOAT_VECTOR, dim=4),
        ])
        batch = validate_batch(schema, {
            "pk": ["x", "y"],
            "vector": np.zeros((2, 4), dtype=np.float32)})
        assert batch.pks == ("x", "y")


class TestValidation:
    def test_unknown_field_rejected(self, schema):
        data = good_data()
        data["extra"] = [1, 2, 3]
        with pytest.raises(SchemaError, match="unknown fields"):
            validate_batch(schema, data)

    def test_missing_field_rejected(self, schema):
        data = good_data()
        del data["price"]
        with pytest.raises(SchemaError, match="missing fields"):
            validate_batch(schema, data)

    def test_ragged_batch_rejected(self, schema):
        data = good_data()
        data["price"] = [1.0]
        with pytest.raises(SchemaError, match="ragged"):
            validate_batch(schema, data)

    def test_empty_batch_rejected(self, schema):
        with pytest.raises(SchemaError, match="empty"):
            validate_batch(schema, {
                "vector": np.zeros((0, 4), dtype=np.float32),
                "price": [], "label": []})

    def test_wrong_dim_rejected(self, schema):
        data = good_data()
        data["vector"] = np.ones((3, 5), dtype=np.float32)
        with pytest.raises(SchemaError, match="dim"):
            validate_batch(schema, data)

    def test_nan_vector_rejected(self, schema):
        data = good_data()
        data["vector"] = np.full((3, 4), np.nan, dtype=np.float32)
        with pytest.raises(SchemaError, match="non-finite"):
            validate_batch(schema, data)

    def test_non_string_label_rejected(self, schema):
        data = good_data()
        data["label"] = [1, 2, 3]
        with pytest.raises(SchemaError, match="strings"):
            validate_batch(schema, data)

    def test_vector_cast_to_float32(self, schema):
        data = good_data()
        data["vector"] = [[1, 2, 3, 4]] * 3
        batch = validate_batch(schema, data)
        assert batch.columns["vector"].dtype == np.float32

    def test_int_column_coercion(self):
        schema = CollectionSchema([
            FieldSchema("vector", DataType.FLOAT_VECTOR, dim=2),
            FieldSchema("count", DataType.INT64),
        ])
        batch = validate_batch(schema, {
            "vector": np.zeros((2, 2), dtype=np.float32),
            "count": [1.0, 2.0]})  # integral floats accepted
        assert batch.columns["count"].dtype == np.int64
        with pytest.raises(SchemaError):
            validate_batch(schema, {
                "vector": np.zeros((2, 2), dtype=np.float32),
                "count": [1.5, 2.0]})

    def test_bool_column(self):
        schema = CollectionSchema([
            FieldSchema("vector", DataType.FLOAT_VECTOR, dim=2),
            FieldSchema("flag", DataType.BOOL),
        ])
        batch = validate_batch(schema, {
            "vector": np.zeros((2, 2), dtype=np.float32),
            "flag": np.array([True, False])})
        assert batch.columns["flag"].dtype == np.bool_
