"""Telemetry plane: exposition round-trip, health states, SLO alerts,
the flight recorder, the REST observability routes and the cluster
telemetry sampler."""

import json

import numpy as np
import pytest

from repro.api.rest import RestApi
from repro.cluster.manu import ManuCluster
from repro.cluster.scaling import Autoscaler
from repro.config import ManuConfig, MonitoringConfig, ScalingConfig
from repro.core.consistency import ConsistencyLevel
from repro.core.schema import CollectionSchema, DataType, FieldSchema
from repro.monitoring.alerts import (
    AlertEngine,
    AlertRule,
    resolve_signal,
)
from repro.monitoring.exposition import (
    parse_exposition,
    render_exposition,
    sanitize_metric_name,
)
from repro.monitoring.flight_recorder import FlightRecorder
from repro.monitoring.health import HealthState, HealthTracker
from repro.monitoring.metrics import MetricsRegistry


class FakeClock:
    def __init__(self, now_ms: float = 0.0) -> None:
        self.now_ms = now_ms

    def __call__(self) -> float:
        return self.now_ms

    def advance(self, ms: float) -> None:
        self.now_ms += ms


def loaded_cluster(rng, **kwargs) -> ManuCluster:
    cluster = ManuCluster(num_query_nodes=2, **kwargs)
    schema = CollectionSchema([
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=16)])
    cluster.create_collection("c", schema)
    cluster.insert("c", {
        "vector": rng.standard_normal((60, 16)).astype(np.float32)})
    cluster.run_for(300)
    return cluster


# ----------------------------------------------------------------------
# exposition
# ----------------------------------------------------------------------

class TestExposition:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("proxy.p0.searches") \
            == "proxy_p0_searches"
        assert sanitize_metric_name("wal/c/shard-0") == "wal_c_shard_0"
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_round_trip_counters_gauges(self):
        registry = MetricsRegistry()
        registry.counter("proxy.p0.searches").inc(7)
        registry.gauge_family("wal_subscriber_lag",
                              ("channel", "subscriber")) \
            .labels(channel="wal/c/shard-0", subscriber="qn-0").set(12.0)
        text = registry.expose_text(0.0)
        assert text == render_exposition(registry, 0.0)
        series = parse_exposition(text)
        assert series[("proxy_p0_searches", ())] == 7.0
        assert series[("wal_subscriber_lag",
                       (("channel", "wal/c/shard-0"),
                        ("subscriber", "qn-0")))] == 12.0

    def test_histogram_exposition_shape(self):
        registry = MetricsRegistry()
        family = registry.histogram_family("search_latency", ("proxy",))
        child = family.labels(proxy="p0")
        for value in (1.0, 3.0, 700.0):
            child.observe(value)
        series = parse_exposition(registry.expose_text(0.0))
        labels = (("proxy", "p0"),)
        assert series[("search_latency_count", labels)] == 3.0
        assert series[("search_latency_sum", labels)] \
            == pytest.approx(704.0)
        # The +Inf bucket carries the total count.
        assert series[("search_latency_bucket",
                       tuple(sorted(labels + (("le", "+Inf"),))))] == 3.0
        # Per-child labeled percentile and the unlabeled aggregate.
        assert ("search_latency_p99", labels) in series
        assert ("search_latency_p99", ()) in series

    def test_windows_rendered(self):
        registry = MetricsRegistry()
        registry.latency("proxy.search_latency").record(0.0, 8.0)
        series = parse_exposition(registry.expose_text(1.0))
        assert series[("proxy_search_latency_count", ())] == 1.0
        assert series[("proxy_search_latency_mean_ms", ())] \
            == pytest.approx(8.0)
        assert ("proxy_search_latency_p99", ()) in series

    def test_label_value_escaping_round_trips(self):
        registry = MetricsRegistry()
        tricky = 'a"b\\c\nd'
        registry.gauge_family("g", ("k",)).labels(k=tricky).set(1.0)
        series = parse_exposition(registry.expose_text(0.0))
        assert series[("g", (("k", tricky),))] == 1.0

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_exposition("not a metric line at all!")
        with pytest.raises(ValueError):
            parse_exposition("# BOGUS comment\n")
        with pytest.raises(ValueError):
            parse_exposition('name{k="v" 1.0\n')


# ----------------------------------------------------------------------
# health
# ----------------------------------------------------------------------

class TestHealthTracker:
    def make(self):
        clock = FakeClock()
        tracker = HealthTracker(clock, heartbeat_interval_ms=100,
                                degraded_after_beats=2, down_after_beats=4)
        return clock, tracker

    def test_states_decay_with_staleness(self):
        clock, tracker = self.make()
        tracker.beat("query-node:qn-0")
        assert tracker.state("query-node:qn-0") is HealthState.HEALTHY
        clock.advance(250)   # > 2 beats, <= 4 beats
        assert tracker.state("query-node:qn-0") is HealthState.DEGRADED
        clock.advance(250)   # > 4 beats
        assert tracker.state("query-node:qn-0") is HealthState.DOWN
        assert tracker.worst() is HealthState.DOWN

    def test_mark_down_is_immediate_and_beat_revives(self):
        clock, tracker = self.make()
        tracker.beat("qn-0")
        tracker.mark_down("qn-0")
        assert tracker.state("qn-0") is HealthState.DOWN
        assert tracker.down_components() == ["qn-0"]
        tracker.beat("qn-0")
        assert tracker.state("qn-0") is HealthState.HEALTHY

    def test_mark_down_on_never_seen_component(self):
        _, tracker = self.make()
        tracker.mark_down("ghost")
        assert tracker.state("ghost") is HealthState.DOWN

    def test_forget_is_not_an_outage(self):
        _, tracker = self.make()
        tracker.beat("qn-0")
        tracker.forget("qn-0")
        assert tracker.state("qn-0") is None
        assert tracker.worst() is HealthState.HEALTHY

    def test_worst_of_empty_is_healthy(self):
        _, tracker = self.make()
        assert tracker.worst() is HealthState.HEALTHY

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            HealthTracker(FakeClock(), heartbeat_interval_ms=0)
        with pytest.raises(ValueError):
            HealthTracker(FakeClock(), degraded_after_beats=4,
                          down_after_beats=2)


# ----------------------------------------------------------------------
# alerts
# ----------------------------------------------------------------------

class TestAlertRuleParse:
    def test_full_form(self):
        rule = AlertRule.parse("slow", "search_latency.p99 > 20 for 5s")
        assert rule.signal == "search_latency"
        assert rule.agg == "p99"
        assert rule.op == ">"
        assert rule.threshold == 20.0
        assert rule.sustained_for_ms == 5000.0

    def test_no_agg_no_duration(self):
        rule = AlertRule.parse("lag", "wal_subscriber_lag >= 100")
        assert rule.agg is None
        assert rule.sustained_for_ms == 0.0

    def test_dotted_signal_keeps_its_dots(self):
        # Only a known aggregation name splits off the tail.
        rule = AlertRule.parse("w", "proxy.search_latency.mean > 5")
        assert rule.signal == "proxy.search_latency"
        assert rule.agg == "mean"

    def test_ms_duration(self):
        rule = AlertRule.parse("r", "x.max > 1 for 250ms")
        assert rule.sustained_for_ms == 250.0

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            AlertRule.parse("r", "no comparison here")
        with pytest.raises(ValueError):
            AlertRule.parse("r", "x == 5")

    def test_condition_text_round_trips(self):
        rule = AlertRule.parse("r", "sig.p95 > 10 for 2s")
        again = AlertRule.parse("r", rule.condition_text())
        assert again == rule


class TestResolveSignal:
    def test_missing_signal_is_none(self):
        assert resolve_signal(MetricsRegistry(), "nope", None, 0.0) is None

    def test_family_and_window(self):
        registry = MetricsRegistry()
        registry.gauge_family("lag", ("c",)).labels(c="x").set(9.0)
        registry.latency("w").record(0.0, 4.0)
        assert resolve_signal(registry, "lag", "max", 0.0) == 9.0
        assert resolve_signal(registry, "w", "mean", 1.0) \
            == pytest.approx(4.0)
        assert resolve_signal(registry, "w", "count", 1.0) == 1.0
        assert resolve_signal(registry, "w", "p99", 1.0) \
            == pytest.approx(4.0)

    def test_empty_family_is_none(self):
        registry = MetricsRegistry()
        registry.gauge_family("lag", ("c",))
        assert resolve_signal(registry, "lag", "max", 0.0) is None


class TestAlertEngine:
    def make(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        engine = AlertEngine(registry=registry, clock_ms=clock)
        return clock, registry, engine

    def test_fires_once_per_episode_and_rearms(self):
        clock, registry, engine = self.make()
        engine.add_rule_text("hot", "depth.max > 10")
        gauge = registry.gauge_family("depth", ("c",)).labels(c="x")

        gauge.set(50.0)
        assert [e.rule.name for e in engine.evaluate()] == ["hot"]
        assert engine.firing() == ["hot"]
        # Still breached: no duplicate event.
        assert engine.evaluate() == []
        # Clears, re-arms, fires again on the next breach.
        gauge.set(0.0)
        assert engine.evaluate() == []
        assert engine.firing() == []
        gauge.set(99.0)
        fired = engine.evaluate()
        assert len(fired) == 1 and fired[0].value == 99.0
        assert len(engine.history) == 2

    def test_sustained_for_defers_firing(self):
        clock, registry, engine = self.make()
        engine.add_rule_text("slow", "depth.max > 10 for 500ms")
        gauge = registry.gauge_family("depth", ("c",)).labels(c="x")
        gauge.set(50.0)
        assert engine.evaluate() == []      # breach starts the clock
        clock.advance(400)
        assert engine.evaluate() == []      # not sustained yet
        clock.advance(200)
        assert len(engine.evaluate()) == 1  # 600 ms > 500 ms
        # A dip resets the sustain clock.
        gauge.set(0.0)
        engine.evaluate()
        gauge.set(50.0)
        clock.advance(100)
        assert engine.evaluate() == []

    def test_missing_signal_never_fires(self):
        _, _, engine = self.make()
        engine.add_rule_text("ghost", "does_not_exist.max > 0")
        assert engine.evaluate() == []
        assert engine.firing() == []
        assert engine.status()["ghost"]["value"] is None

    def test_duplicate_rule_name_rejected(self):
        _, _, engine = self.make()
        engine.add_rule_text("r", "x.max > 1")
        with pytest.raises(ValueError):
            engine.add_rule_text("r", "y.max > 2")

    def test_on_fire_callback(self):
        _, registry, engine = self.make()
        events = []
        engine.on_fire(events.append)
        engine.add_rule_text("hot", "depth.max > 10")
        registry.gauge_family("depth", ("c",)).labels(c="x").set(11.0)
        engine.evaluate()
        assert len(events) == 1
        assert events[0].rule.name == "hot"


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------

class TestFlightRecorder:
    def test_bundle_contents_and_ring(self, tmp_path):
        clock = FakeClock(1234.0)
        registry = MetricsRegistry()
        registry.counter("reqs").inc(5)
        health = HealthTracker(clock)
        health.beat("qn-0")
        recorder = FlightRecorder(clock, registry, health=health,
                                  capacity=2)
        recorder.record("manual", extra={"note": "hi"})
        bundle = recorder.last()
        assert bundle["reason"] == "manual"
        assert bundle["at_ms"] == 1234.0
        assert bundle["metrics"]["reqs.count"] == 5.0
        assert bundle["health"] == {"qn-0": "healthy"}
        assert bundle["extra"] == {"note": "hi"}
        # Ring keeps only the newest `capacity` bundles.
        recorder.record("second")
        recorder.record("third")
        assert [b["reason"] for b in recorder.bundles] \
            == ["second", "third"]
        path = tmp_path / "flight.json"
        recorder.dump(str(path))
        assert json.loads(path.read_text())[1]["reason"] == "third"

    def test_traces_included(self, rng):
        cluster = loaded_cluster(rng)
        cluster.search("c", np.zeros(16, dtype=np.float32), 3,
                       consistency=ConsistencyLevel.STRONG)
        bundle = cluster.flight_recorder.record("manual")
        assert bundle["traces"]
        spans = next(iter(bundle["traces"].values()))
        assert {"name", "component", "start_ms", "status"} \
            <= set(spans[0])
        assert bundle["topology"]
        # The whole bundle is JSON-serializable.
        json.dumps(bundle)


# ----------------------------------------------------------------------
# cluster sampler + REST routes
# ----------------------------------------------------------------------

class TestClusterTelemetry:
    def test_sample_telemetry_populates_gauges(self, rng):
        cluster = loaded_cluster(rng)
        cluster.sample_telemetry()
        snap = cluster.metrics.snapshot(cluster.now())
        assert any(key.startswith("wal_subscriber_lag{")
                   for key in snap)
        assert any(key.startswith("timetick_staleness_ms{")
                   for key in snap)
        assert any(key.startswith("watermark_lag_ms{") for key in snap)
        assert any(key.startswith("component_health{") for key in snap)
        assert any(key.startswith("flush_backlog{") for key in snap)

    def test_dead_subscriber_series_disappear(self, rng):
        cluster = loaded_cluster(rng)
        cluster.sample_telemetry()
        family = cluster.metrics.families["wal_subscriber_lag"]
        before = len(family)
        assert before > 0
        cluster.fail_query_node(cluster.query_coord.node_names[0])
        cluster.run_for(200)
        cluster.sample_telemetry()
        # Handoff rewired the channels; no series is frozen at a stale
        # value for a subscriber that no longer exists.
        live = {sub.name for sub in cluster.broker.subscriptions()}
        for labels, _ in family.samples():
            assert labels["subscriber"] in live

    def test_heartbeat_tracks_all_component_kinds(self, rng):
        cluster = loaded_cluster(rng)
        components = cluster.health.components()
        for prefix in ("query-node:", "data-node:", "index-node:",
                       "proxy:", "logger:"):
            assert any(c.startswith(prefix) for c in components), prefix
        assert cluster.health.worst() is HealthState.HEALTHY

    def test_health_snapshot_shape(self, rng):
        cluster = loaded_cluster(rng)
        snapshot = cluster.health_snapshot()
        assert snapshot["status"] == "healthy"
        assert all(state in ("healthy", "degraded", "down")
                   for state in snapshot["components"].values())
        assert snapshot["firing"] == []

    def test_rest_system_metrics_healthz(self, rng):
        cluster = loaded_cluster(rng)
        cluster.search("c", np.zeros(16, dtype=np.float32), 3,
                       consistency=ConsistencyLevel.STRONG)
        api = RestApi(cluster)

        status, body = api.handle("GET", "/system")
        assert status == 200
        assert body["query_nodes"] == 2
        assert "metrics" in body

        status, body = api.handle("GET", "/metrics")
        assert status == 200
        series = parse_exposition(body["text"])
        assert ("search_latency_p99", ()) in series
        assert any(name == "wal_subscriber_lag"
                   and any(k == "channel" for k, _ in labels)
                   for name, labels in series)

        status, body = api.handle("GET", "/healthz")
        assert status == 200
        assert body["status"] == "healthy"

    def test_rest_healthz_503_when_down(self, rng):
        cluster = loaded_cluster(rng)
        cluster.fail_query_node(cluster.query_coord.node_names[0])
        status, body = RestApi(cluster).handle("GET", "/healthz")
        assert status == 503
        assert body["status"] == "down"

    def test_configured_alert_rules_installed(self, rng):
        config = ManuConfig(monitoring=MonitoringConfig(
            alert_rules=(("slow-search",
                          "search_latency.p99 > 0.001 for 100ms"),)))
        cluster = ManuCluster(config=config, num_query_nodes=2)
        schema = CollectionSchema([
            FieldSchema("vector", DataType.FLOAT_VECTOR, dim=16)])
        cluster.create_collection("c", schema)
        cluster.insert("c", {"vector": np.random.default_rng(0)
                             .standard_normal((40, 16))
                             .astype(np.float32)})
        cluster.run_for(300)
        cluster.search("c", np.zeros(16, dtype=np.float32), 3,
                       consistency=ConsistencyLevel.STRONG)
        # Any real search latency breaches the absurd threshold; the
        # telemetry timer evaluates and trips the flight recorder.
        cluster.run_for(1_000)
        assert "slow-search" in cluster.alerts.firing()
        bundle = cluster.flight_recorder.last()
        assert bundle is not None
        assert bundle["reason"] == "alert:slow-search"


# ----------------------------------------------------------------------
# lag-aware autoscaler
# ----------------------------------------------------------------------

class TestLagAwareAutoscaler:
    def _cluster(self, **scaling_kwargs):
        policy = ScalingConfig(latency_high_ms=100, latency_low_ms=20,
                               min_query_nodes=1, max_query_nodes=8,
                               evaluation_interval_ms=1000,
                               **scaling_kwargs)
        return ManuCluster(config=ManuConfig(scaling=policy),
                           num_query_nodes=2)

    def test_lag_breach_scales_up(self):
        cluster = self._cluster(lag_high_records=10.0)
        scaler = Autoscaler(cluster)
        cluster.metrics.gauge_family(
            "wal_subscriber_lag", ("channel", "subscriber")) \
            .labels(channel="wal/c/shard-0", subscriber="qn-0").set(500.0)
        event = scaler.evaluate()
        assert event is not None
        assert event.action == "up"
        assert event.reason == "lag"
        assert cluster.num_query_nodes == 4

    def test_lag_breach_vetoes_scale_down(self):
        cluster = self._cluster(lag_high_records=10.0)
        scaler = Autoscaler(cluster)
        cluster.metrics.latency("proxy.search_latency").record(
            cluster.now(), 5.0)   # well under the low band
        cluster.metrics.gauge_family(
            "wal_subscriber_lag", ("channel", "subscriber")) \
            .labels(channel="wal/c/shard-0", subscriber="qn-0").set(500.0)
        event = scaler.evaluate()
        # Lag forces up, not down, even with rosy latency.
        assert event is not None and event.action == "up"

    def test_lag_disabled_by_default(self):
        cluster = self._cluster()   # lag_high_records=0 → ignored
        scaler = Autoscaler(cluster)
        cluster.metrics.gauge_family(
            "wal_subscriber_lag", ("channel", "subscriber")) \
            .labels(channel="wal/c/shard-0", subscriber="qn-0").set(1e9)
        assert scaler.evaluate() is None
        assert cluster.num_query_nodes == 2

    def test_custom_latency_signal_from_config(self):
        cluster = self._cluster(latency_signal="custom.window",
                                latency_agg="p99")
        scaler = Autoscaler(cluster)
        cluster.metrics.latency("custom.window").record(
            cluster.now(), 500.0)
        event = scaler.evaluate()
        assert event is not None and event.action == "up"

    def test_empty_registry_is_noop(self):
        cluster = self._cluster(lag_high_records=10.0)
        scaler = Autoscaler(cluster)
        assert scaler.evaluate() is None
        assert cluster.num_query_nodes == 2
