"""Tests for data, index and query nodes in isolation (wired via a real
broker/loop but without the full cluster)."""

import numpy as np
import pytest

from repro.config import LogConfig, ManuConfig, SegmentConfig
from repro.core.schema import CollectionSchema, DataType, FieldSchema, \
    MetricType
from repro.errors import ClusterStateError
from repro.log.binlog import BinlogReader
from repro.log.broker import LogBroker
from repro.log.wal import (
    CoordRecord,
    DeleteRecord,
    InsertRecord,
    TimeTickRecord,
    shard_channel,
)
from repro.nodes.data_node import DataNode
from repro.nodes.index_node import IndexNode, index_blob_key
from repro.nodes.query_node import QueryNode
from repro.sim.costmodel import CostModel
from repro.sim.events import EventLoop
from repro.storage.object_store import ObjectStore


@pytest.fixture
def schema():
    return CollectionSchema([
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8),
        FieldSchema("price", DataType.FLOAT),
    ])


@pytest.fixture
def rig(schema):
    loop = EventLoop()
    broker = LogBroker(loop, delivery_delay_ms=0.5)
    store = ObjectStore()
    config = ManuConfig(segment=SegmentConfig(seal_entity_count=100,
                                              slice_size=16,
                                              temp_index_nlist=4),
                        log=LogConfig(num_shards=1))
    broker.create_channel(config.log.coord_channel)
    channel = shard_channel("coll", 0)
    broker.create_channel(channel)
    return loop, broker, store, config, channel


def insert_record(rng, ts, pks, segment_id="seg-1"):
    n = len(pks)
    return InsertRecord(ts=ts, collection="coll", shard=0,
                        segment_id=segment_id, pks=tuple(pks),
                        columns={
                            "vector": rng.standard_normal(
                                (n, 8)).astype(np.float32),
                            "price": list(map(float, range(n)))})


class TestDataNode:
    def test_accumulates_and_flushes(self, rig, schema, rng):
        loop, broker, store, config, channel = rig
        node = DataNode("dn", loop, broker, store, config,
                        CostModel(), lambda c: schema)
        node.subscribe(channel)
        broker.publish(channel, insert_record(rng, 10, [1, 2, 3]))
        broker.publish(channel, insert_record(rng, 20, [4, 5]))
        loop.run_for(10)
        assert node.growing_segments() == [("coll", "seg-1", 5)]
        node.seal_and_flush("coll", "seg-1", shard=0)
        loop.run_for(200)
        reader = BinlogReader(store)
        manifest = reader.read_manifest("coll", "seg-1")
        assert manifest.num_rows == 5
        assert manifest.max_lsn == 20
        # Flush announcement lands on the coordination channel.
        entries = broker.read(config.log.coord_channel, 0)
        kinds = [e.payload.kind_name for e in entries]
        assert "segment_flushed" in kinds

    def test_deletes_in_growing_drop_rows_from_binlog(self, rig, schema,
                                                      rng):
        loop, broker, store, config, channel = rig
        node = DataNode("dn", loop, broker, store, config, CostModel(),
                        lambda c: schema)
        node.subscribe(channel)
        broker.publish(channel, insert_record(rng, 10, [1, 2, 3]))
        broker.publish(channel, DeleteRecord(ts=15, collection="coll",
                                             shard=0, pks=(2,)))
        loop.run_for(10)
        node.seal_and_flush("coll", "seg-1", 0)
        loop.run_for(200)
        manifest = BinlogReader(store).read_manifest("coll", "seg-1")
        assert sorted(manifest.pks) == [1, 3]

    def test_miss_deletes_go_to_delta_log(self, rig, schema, rng):
        loop, broker, store, config, channel = rig
        node = DataNode("dn", loop, broker, store, config, CostModel(),
                        lambda c: schema)
        node.subscribe(channel)
        broker.publish(channel, DeleteRecord(ts=5, collection="coll",
                                             shard=0, pks=(42,)))
        loop.run_for(10)
        node.flush_delta_logs()
        from repro.core.checkpoint import read_delete_deltas
        assert read_delete_deltas(store, "coll") == [(42, 5)]

    def test_flush_empty_segment_returns_none(self, rig, schema):
        loop, broker, store, config, channel = rig
        node = DataNode("dn", loop, broker, store, config, CostModel(),
                        lambda c: schema)
        assert node.seal_and_flush("coll", "ghost", 0) is None

    def test_unsubscribe_stops_consumption(self, rig, schema, rng):
        loop, broker, store, config, channel = rig
        node = DataNode("dn", loop, broker, store, config, CostModel(),
                        lambda c: schema)
        node.subscribe(channel)
        node.unsubscribe(channel)
        broker.publish(channel, insert_record(rng, 10, [1]))
        loop.run_for(10)
        assert node.growing_segments() == []


class TestIndexNode:
    def _flushed_segment(self, rig, rng, n=128):
        loop, broker, store, config, channel = rig
        from repro.log.binlog import BinlogWriter
        BinlogWriter(store).write_segment("coll", "seg-1", list(range(n)), {
            "vector": rng.standard_normal((n, 8)).astype(np.float32),
            "price": list(map(float, range(n)))}, 50)

    def test_build_persists_and_announces(self, rig, rng):
        loop, broker, store, config, _ = rig
        self._flushed_segment(rig, rng)
        node = IndexNode("in", loop, broker, store, config, CostModel())
        done = node.submit_build("coll", "seg-1", "vector", "IVF_FLAT",
                                 MetricType.EUCLIDEAN, {"nlist": 8})
        assert done > loop.now()
        assert store.exists(index_blob_key("coll", "seg-1", "vector"))
        loop.run_until(done + 1)
        entries = broker.read(config.log.coord_channel, 0)
        built = [e.payload for e in entries
                 if isinstance(e.payload, CoordRecord)
                 and e.payload.kind_name == "index_built"]
        assert len(built) == 1
        assert built[0].payload["segment_id"] == "seg-1"
        assert node.builds_completed == 1

    def test_tasks_queue_serially(self, rig, rng):
        loop, broker, store, config, _ = rig
        self._flushed_segment(rig, rng)
        node = IndexNode("in", loop, broker, store, config, CostModel())
        first = node.submit_build("coll", "seg-1", "vector", "IVF_FLAT",
                                  MetricType.EUCLIDEAN, {"nlist": 8})
        second = node.submit_build("coll", "seg-1", "vector", "IVF_FLAT",
                                   MetricType.EUCLIDEAN, {"nlist": 8})
        assert second > first  # queued behind the first
        assert node.queue_depth_ms() > 0

    def test_shutdown_suppresses_announcement(self, rig, rng):
        loop, broker, store, config, _ = rig
        self._flushed_segment(rig, rng)
        node = IndexNode("in", loop, broker, store, config, CostModel())
        done = node.submit_build("coll", "seg-1", "vector", "FLAT",
                                 MetricType.EUCLIDEAN)
        node.shutdown()
        loop.run_until(done + 1)
        built = [e for e in broker.read(config.log.coord_channel, 0)
                 if getattr(e.payload, "kind_name", "") == "index_built"]
        assert built == []
        with pytest.raises(RuntimeError):
            node.submit_build("coll", "seg-1", "vector", "FLAT",
                              MetricType.EUCLIDEAN)

    def test_load_index_roundtrip(self, rig, rng):
        loop, broker, store, config, _ = rig
        self._flushed_segment(rig, rng)
        node = IndexNode("in", loop, broker, store, config, CostModel())
        node.submit_build("coll", "seg-1", "vector", "IVF_FLAT",
                          MetricType.EUCLIDEAN, {"nlist": 8})
        index = node.load_index("coll", "seg-1", "vector")
        assert index.ntotal == 128


class TestQueryNode:
    def _node(self, rig, schema):
        loop, broker, store, config, channel = rig
        node = QueryNode("qn", loop, broker, store, config, CostModel(),
                         lambda c: schema)
        node.subscribe("coll", channel, owned=True)
        return node

    def test_growing_segment_searchable(self, rig, schema, rng):
        loop, broker, _store, _config, channel = rig
        node = self._node(rig, schema)
        record = insert_record(rng, 10, [1, 2, 3])
        broker.publish(channel, record)
        loop.run_for(5)
        hits, service_ms, searched = node.search(
            "coll", "vector", record.columns["vector"][1], 2,
            MetricType.EUCLIDEAN)
        assert hits[0][0].pk == 2
        assert service_ms > 0
        assert searched == 1

    def test_non_owned_channel_no_growing_data(self, rig, schema, rng):
        loop, broker, store, config, channel = rig
        node = QueryNode("qn", loop, broker, store, config, CostModel(),
                         lambda c: schema)
        node.subscribe("coll", channel, owned=False)
        broker.publish(channel, insert_record(rng, 10, [1]))
        loop.run_for(5)
        assert node.segments_of("coll") == []
        # ...but the watermark still advances.
        assert node.gate("coll").seen_ts == 10

    def test_timetick_advances_gate(self, rig, schema):
        loop, broker, _store, _config, channel = rig
        node = self._node(rig, schema)
        broker.publish(channel, TimeTickRecord(ts=500, source="t"))
        loop.run_for(5)
        assert node.ready("coll", 400)
        assert not node.ready("coll", 600)

    def test_delete_applied_to_growing(self, rig, schema, rng):
        loop, broker, _store, _config, channel = rig
        node = self._node(rig, schema)
        record = insert_record(rng, 10, [1, 2, 3])
        broker.publish(channel, record)
        broker.publish(channel, DeleteRecord(ts=20, collection="coll",
                                             shard=0, pks=(2,)))
        loop.run_for(5)
        hits, _ms, _n = node.search("coll", "vector",
                                    record.columns["vector"][1], 3,
                                    MetricType.EUCLIDEAN)
        assert 2 not in [h.pk for h in hits[0]]

    def test_load_sealed_segment_applies_late_deletes(self, rig, schema,
                                                      rng):
        loop, broker, store, config, channel = rig
        from repro.log.binlog import BinlogWriter
        BinlogWriter(store).write_segment("coll", "seg-9", [7, 8], {
            "vector": rng.standard_normal((2, 8)).astype(np.float32),
            "price": [1.0, 2.0]}, 30)
        node = self._node(rig, schema)
        # Delete pk 8 at ts 40 (after the binlog's max_lsn 30), before load.
        broker.publish(channel, DeleteRecord(ts=40, collection="coll",
                                             shard=0, pks=(8,)))
        loop.run_for(5)
        load_ms = node.load_segment("coll", "seg-9")
        assert load_ms > 0
        segment = node.segment("coll", "seg-9")
        assert segment.is_sealed
        assert not segment.contains_pk(8)
        assert segment.contains_pk(7)

    def test_bulk_load_reads_delta_log_once(self, rig, schema, rng,
                                            monkeypatch):
        """The persisted delete-delta log is cached per collection."""
        loop, broker, store, config, channel = rig
        from repro.log.binlog import BinlogWriter
        from repro.nodes import query_node as qn_module
        writer = BinlogWriter(store)
        for pk, sid in enumerate(("seg-a", "seg-b", "seg-c")):
            writer.write_segment("coll", sid, [pk], {
                "vector": rng.standard_normal((1, 8)).astype(np.float32),
                "price": [1.0]}, 30)
        node = self._node(rig, schema)
        calls = []
        real = qn_module.read_delete_deltas
        monkeypatch.setattr(
            qn_module, "read_delete_deltas",
            lambda *a, **kw: calls.append(1) or real(*a, **kw))
        for sid in ("seg-a", "seg-b", "seg-c"):
            node.load_segment("coll", sid)
        assert len(calls) == 1
        # A newly consumed delete invalidates the cache: the next load
        # re-reads the (possibly extended) persisted log.
        broker.publish(channel, DeleteRecord(ts=50, collection="coll",
                                             shard=0, pks=(999,)))
        loop.run_for(5)
        writer.write_segment("coll", "seg-d", [77], {
            "vector": rng.standard_normal((1, 8)).astype(np.float32),
            "price": [1.0]}, 30)
        node.load_segment("coll", "seg-d")
        assert len(calls) == 2

    def test_collection_registry_tracks_membership(self, rig, schema,
                                                   rng):
        loop, broker, store, _config, channel = rig
        node = self._node(rig, schema)
        assert not node.holds_collection("coll")
        record = insert_record(rng, 10, [1, 2], segment_id="seg-g")
        broker.publish(channel, record)
        loop.run_for(5)
        assert node.holds_collection("coll")
        assert node.is_growing("coll", "seg-g")
        from repro.log.binlog import BinlogWriter
        BinlogWriter(store).write_segment("coll", "seg-s", [7], {
            "vector": rng.standard_normal((1, 8)).astype(np.float32),
            "price": [1.0]}, 30)
        node.load_segment("coll", "seg-s")
        assert not node.is_growing("coll", "seg-s")
        assert node.segments_of("coll") == ["seg-g", "seg-s"]
        assert node.sealed_segments_of("coll") == ["seg-s"]
        assert node.num_rows("coll") == 3
        node.release_segment("coll", "seg-s")
        node.release_segment("coll", "seg-g")
        assert not node.holds_collection("coll")
        assert node.num_rows("coll") == 0

    def test_attach_index_requires_segment(self, rig, schema):
        node = self._node(rig, schema)
        with pytest.raises(ClusterStateError):
            node.attach_index("coll", "ghost", "vector", "index/x")

    def test_release_segment(self, rig, schema, rng):
        loop, broker, store, _config, channel = rig
        from repro.log.binlog import BinlogWriter
        BinlogWriter(store).write_segment("coll", "seg-9", [7], {
            "vector": rng.standard_normal((1, 8)).astype(np.float32),
            "price": [1.0]}, 30)
        node = self._node(rig, schema)
        node.load_segment("coll", "seg-9")
        assert node.release_segment("coll", "seg-9")
        assert not node.release_segment("coll", "seg-9")
        assert node.segments_of("coll") == []

    def test_fail_drops_everything(self, rig, schema, rng):
        loop, broker, _store, _config, channel = rig
        node = self._node(rig, schema)
        broker.publish(channel, insert_record(rng, 10, [1]))
        loop.run_for(5)
        node.fail()
        assert not node.alive
        assert node.num_rows() == 0
        broker.publish(channel, insert_record(rng, 20, [2]))
        loop.run_for(5)
        assert node.num_rows() == 0  # no longer consuming
