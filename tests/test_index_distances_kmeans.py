"""Tests for distance kernels and k-means."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.schema import MetricType
from repro.index.distances import (
    adjusted_distances,
    cosine,
    inner_product,
    squared_l2,
    to_user_score,
    topk_smallest,
)
from repro.index.kmeans import hierarchical_balanced_kmeans, kmeans


def naive_l2(q, d):
    return np.array([[np.sum((qi - di) ** 2) for di in d] for qi in q])


class TestDistances:
    def test_squared_l2_matches_naive(self, rng):
        q = rng.standard_normal((5, 8)).astype(np.float32)
        d = rng.standard_normal((7, 8)).astype(np.float32)
        assert np.allclose(squared_l2(q, d), naive_l2(q, d), atol=1e-3)

    def test_l2_nonnegative(self, rng):
        q = rng.standard_normal((10, 16)).astype(np.float32) * 100
        assert (squared_l2(q, q) >= 0).all()

    def test_l2_self_distance_zero(self, rng):
        x = rng.standard_normal((6, 8)).astype(np.float32)
        assert np.allclose(np.diag(squared_l2(x, x)), 0.0, atol=1e-3)

    def test_inner_product(self):
        q = np.array([[1.0, 0.0]], dtype=np.float32)
        d = np.array([[2.0, 5.0], [0.0, 1.0]], dtype=np.float32)
        assert np.allclose(inner_product(q, d), [[2.0, 0.0]])

    def test_cosine_bounds_and_zero_vectors(self, rng):
        q = rng.standard_normal((4, 8)).astype(np.float32)
        d = rng.standard_normal((6, 8)).astype(np.float32)
        sims = cosine(q, d)
        assert (sims <= 1.0 + 1e-5).all() and (sims >= -1.0 - 1e-5).all()
        zero = np.zeros((1, 8), dtype=np.float32)
        assert np.allclose(cosine(zero, d), 0.0)

    def test_adjusted_smaller_is_more_similar(self, rng):
        q = rng.standard_normal((1, 8)).astype(np.float32)
        near = q + 0.01
        far = q + 10.0
        d = np.concatenate([near, far])
        for metric in MetricType:
            adj = adjusted_distances(q, d, metric)[0]
            assert adj[0] < adj[1], metric

    def test_1d_queries_accepted(self, rng):
        q = rng.standard_normal(8).astype(np.float32)
        d = rng.standard_normal((3, 8)).astype(np.float32)
        assert adjusted_distances(q, d, MetricType.EUCLIDEAN).shape == (1, 3)

    def test_to_user_score_euclidean_sqrt(self):
        assert to_user_score(np.array([9.0]), MetricType.EUCLIDEAN) == \
            pytest.approx([3.0])

    def test_to_user_score_ip_negates(self):
        assert to_user_score(np.array([-0.5]),
                             MetricType.INNER_PRODUCT) == pytest.approx([0.5])

    @given(hnp.arrays(np.float32, (6, 4),
                      elements=st.floats(-100, 100, width=32)))
    @settings(max_examples=30)
    def test_l2_symmetry_property(self, data):
        d = squared_l2(data, data)
        assert np.allclose(d, d.T, atol=1e-1)


class TestTopkSmallest:
    def test_returns_sorted_smallest(self):
        values = np.array([5.0, 1.0, 3.0, 2.0, 4.0])
        ids, vals = topk_smallest(values, 3)
        assert ids.tolist() == [1, 3, 2]
        assert vals.tolist() == [1.0, 2.0, 3.0]

    def test_k_larger_than_n(self):
        ids, vals = topk_smallest(np.array([2.0, 1.0]), 5)
        assert ids.tolist() == [1, 0]

    def test_k_zero(self):
        ids, _vals = topk_smallest(np.array([1.0]), 0)
        assert len(ids) == 0

    def test_2d_batched(self, rng):
        values = rng.standard_normal((4, 20))
        ids, vals = topk_smallest(values, 5)
        assert ids.shape == (4, 5)
        for row in range(4):
            expected = np.sort(values[row])[:5]
            assert np.allclose(vals[row], expected)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100),
           st.integers(1, 20))
    @settings(max_examples=40)
    def test_matches_full_sort(self, values, k):
        arr = np.asarray(values)
        _ids, vals = topk_smallest(arr, k)
        assert np.allclose(vals, np.sort(arr)[:min(k, len(arr))])


class TestKMeans:
    def test_separated_clusters_recovered(self, rng):
        centers = np.array([[0, 0], [50, 50], [-50, 50]], dtype=np.float32)
        data = np.concatenate([
            centers[i] + rng.standard_normal((30, 2)).astype(np.float32)
            for i in range(3)])
        result = kmeans(data, 3, seed=1)
        # Each true cluster maps to exactly one k-means cluster.
        labels = [set(result.assignments[i * 30:(i + 1) * 30])
                  for i in range(3)]
        assert all(len(s) == 1 for s in labels)
        assert len(set.union(*labels)) == 3

    def test_deterministic_for_seed(self, rng):
        data = rng.standard_normal((100, 4)).astype(np.float32)
        a = kmeans(data, 5, seed=3)
        b = kmeans(data, 5, seed=3)
        assert np.array_equal(a.centroids, b.centroids)
        assert np.array_equal(a.assignments, b.assignments)

    def test_k_clamped_to_n(self, rng):
        data = rng.standard_normal((3, 4)).astype(np.float32)
        result = kmeans(data, 10)
        assert result.k == 3

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 4), dtype=np.float32), 2)

    def test_identical_points_handled(self):
        data = np.ones((20, 4), dtype=np.float32)
        result = kmeans(data, 4)
        assert result.assignments.shape == (20,)

    def test_assignments_are_nearest_centroid(self, rng):
        data = rng.standard_normal((80, 6)).astype(np.float32)
        result = kmeans(data, 6, seed=2)
        dists = squared_l2(data, result.centroids)
        assert np.array_equal(result.assignments, dists.argmin(axis=1))


class TestHierarchicalKMeans:
    def test_respects_size_cap(self, rng):
        data = rng.standard_normal((500, 8)).astype(np.float32)
        result = hierarchical_balanced_kmeans(data, max_cluster_size=32)
        sizes = np.bincount(result.assignments, minlength=result.k)
        assert sizes.max() <= 32
        assert sizes.sum() == 500

    def test_every_point_assigned(self, rng):
        data = rng.standard_normal((200, 4)).astype(np.float32)
        result = hierarchical_balanced_kmeans(data, max_cluster_size=16)
        assert (result.assignments >= 0).all()
        assert (result.assignments < result.k).all()

    def test_degenerate_identical_points(self):
        data = np.ones((100, 4), dtype=np.float32)
        result = hierarchical_balanced_kmeans(data, max_cluster_size=10)
        sizes = np.bincount(result.assignments, minlength=result.k)
        assert sizes.max() <= 10

    def test_small_input_single_leaf(self, rng):
        data = rng.standard_normal((5, 4)).astype(np.float32)
        result = hierarchical_balanced_kmeans(data, max_cluster_size=32)
        assert result.k == 1

    def test_bad_cap_rejected(self, rng):
        with pytest.raises(ValueError):
            hierarchical_balanced_kmeans(
                rng.standard_normal((5, 2)).astype(np.float32), 0)
