"""Tests for the whole-program manu-lint passes (PR 2).

Fixture trees exercise each pass both ways (violation fires / clean
counterpart stays silent), and a golden test pins the *recovered* pub/sub
topology of ``src/repro`` to the declared graph in
``repro/analysis/topology.py`` — a refactor that moves a publish or
subscribe to a new module must update the declaration deliberately.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis import recover_topology, run_analysis
from repro.analysis.topology import (
    DECLARED_PUBLISHERS, DECLARED_SUBSCRIBERS, declared_edges,
    topology_to_dot,
)

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def make_tree(tmp_path, files):
    root = tmp_path / "repro_root"
    for relpath, source in files.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def lint(tmp_path, files, rule=None):
    select = [rule] if rule else None
    return run_analysis(make_tree(tmp_path, files), select=select)


def findings_at(report, rule):
    return [(f.path, f.line) for f in report.findings if f.rule == rule]


# ----------------------------------------------------------------------
# pubsub-topology
# ----------------------------------------------------------------------

BROKER_STUB = """
class LogBroker:
    pass
"""


class TestPubSubTopologyPass:
    def test_declared_publisher_is_clean(self, tmp_path):
        report = lint(tmp_path, {
            "log/broker.py": BROKER_STUB,
            "log/logger_node.py": """
                from repro.log.broker import LogBroker

                def shard_channel(collection, shard):
                    return f"wal/{collection}/shard-{shard}"

                class Logger:
                    def __init__(self, broker: LogBroker) -> None:
                        self._broker = broker

                    def publish_insert(self, collection, shard, record):
                        self._broker.publish(
                            shard_channel(collection, shard), record)
            """,
        }, rule="pubsub-topology")
        assert report.findings == []

    def test_undeclared_wal_publisher_fires(self, tmp_path):
        report = lint(tmp_path, {
            "coord/query.py": """
                from repro.log.broker import LogBroker

                class QueryCoord:
                    def __init__(self, broker: LogBroker) -> None:
                        self._broker = broker

                    def oops(self, record):
                        self._broker.publish("wal/c/shard-0", record)
            """,
        }, rule="pubsub-topology")
        assert findings_at(report, "pubsub-topology") == [
            ("coord/query.py", 9)]
        assert "not a declared publisher" in report.findings[0].message

    def test_undeclared_channel_literal_fires(self, tmp_path):
        report = lint(tmp_path, {
            "nodes/data_node.py": """
                from repro.log.broker import LogBroker

                class DataNode:
                    def __init__(self, broker: LogBroker) -> None:
                        self._broker = broker

                    def gossip(self, record):
                        self._broker.publish("wal/gossip", record)
            """,
        }, rule="pubsub-topology")
        assert len(report.findings) == 1
        assert "'wal/gossip'" in report.findings[0].message

    def test_dynamic_channel_outside_allowance_fires(self, tmp_path):
        report = lint(tmp_path, {
            "nodes/query_node.py": """
                from repro.log.broker import LogBroker

                class QueryNode:
                    def __init__(self, broker: LogBroker) -> None:
                        self._broker = broker

                    def tap(self, channel):
                        self._sub = self._broker.subscribe(channel, "tap")
            """,
        }, rule="pubsub-topology")
        assert len(report.findings) == 1
        assert "statically unresolvable" in report.findings[0].message

    def test_channel_resolved_through_caller(self, tmp_path):
        # The channel is a bare parameter at the subscribe site; the
        # caller passes a shard channel, so the edge resolves to
        # wal-shard and data_node is a declared subscriber.
        report = lint(tmp_path, {
            "nodes/data_node.py": """
                from repro.log.broker import LogBroker

                class DataNode:
                    def __init__(self, broker: LogBroker) -> None:
                        self._broker = broker
                        self._subs = {}

                    def subscribe(self, channel):
                        self._subs[channel] = self._broker.subscribe(
                            channel, "dn")
            """,
            "cluster/manu.py": """
                def shard_channel(collection, shard):
                    return f"wal/{collection}/shard-{shard}"

                def wire(node, collection):
                    for shard in range(2):
                        node.subscribe(shard_channel(collection, shard))
            """,
        }, rule="pubsub-topology")
        assert report.findings == []

    def test_wrapper_subscribe_not_confused_with_broker(self, tmp_path):
        # node.subscribe(...) on a non-broker receiver is a worker
        # wrapper, not a log subscription — never flagged.
        report = lint(tmp_path, {
            "coord/query.py": """
                class QueryCoord:
                    def assign(self, node, channel):
                        node.subscribe("anything-goes", channel)
            """,
        }, rule="pubsub-topology")
        assert report.findings == []

    def test_binlog_writer_restricted(self, tmp_path):
        report = lint(tmp_path, {
            "coord/data.py": """
                class DataCoord:
                    def sneak(self, writer, collection):
                        writer.write_segment(collection, "seg", [], [])
            """,
        }, rule="pubsub-topology")
        assert len(report.findings) == 1
        assert "binlog" in report.findings[0].message

    def test_harness_layers_exempt(self, tmp_path):
        # Top-level files (tests/benchmarks analyzed from their own
        # roots) may publish freely.
        report = lint(tmp_path, {
            "test_broker.py": """
                def test_publish(broker):
                    broker.publish("events", object())
            """,
        }, rule="pubsub-topology")
        assert report.findings == []


class TestGoldenTopology:
    def test_recovered_matches_declared(self):
        topo = recover_topology(REPO_SRC)
        assert topo["matches_declared"], json.dumps(topo, indent=2)

    def test_declared_graph_spot_checks(self):
        # The load-bearing §3.3 facts, stated directly.
        assert DECLARED_PUBLISHERS["wal-shard"] == {"log/logger_node.py"}
        assert DECLARED_PUBLISHERS["ddl"] == {"coord/root.py"}
        assert "coord/query.py" not in DECLARED_PUBLISHERS["coord"]
        assert "nodes/query_node.py" in DECLARED_SUBSCRIBERS["wal-shard"]

    def test_dot_export_renders_every_edge(self):
        dot = topology_to_dot(declared_edges())
        assert dot.startswith("digraph")
        assert '"log/logger_node.py" -> "chan:wal-shard";' in dot
        assert '"chan:coord" -> "coord/query.py";' in dot


# ----------------------------------------------------------------------
# consistency-discipline
# ----------------------------------------------------------------------

PROXY_HEADER = """
    from repro.core.consistency import guarantee_ts

    class Proxy:
        def _wait_for_consistency(self, collection, nodes, guarantee):
            while any(not n.ready(collection, guarantee) for n in nodes):
                self._loop.step()
"""


class TestConsistencyDisciplinePass:
    def test_clean_proxy_pattern_passes(self, tmp_path):
        report = lint(tmp_path, {
            "nodes/proxy.py": PROXY_HEADER + """
        def search(self, collection, queries, k, consistency, staleness):
            issue_ts = self._tso.allocate_packed()
            guarantee = guarantee_ts(consistency, issue_ts, staleness,
                                     self._session_ts)
            plan = self._query_coord.search_plan(collection)
            nodes = [node for node, _scope in plan]
            self._wait_for_consistency(collection, nodes, guarantee)
            out = []
            for node, scope in plan:
                out.append(node.search(collection, queries, k,
                                       scope=scope))
            return out
            """,
        }, rule="consistency-discipline")
        assert report.findings == []

    def test_missing_guarantee_ts_fires(self, tmp_path):
        report = lint(tmp_path, {
            "nodes/proxy.py": """
                class Proxy:
                    def search(self, collection, queries, k):
                        plan = self._query_coord.search_plan(collection)
                        return [node.search(collection, queries, k)
                                for node, _scope in plan]
            """,
        }, rule="consistency-discipline")
        assert len(report.findings) == 1
        assert "without a guarantee timestamp" in report.findings[0].message

    def test_skipped_ready_wait_fires(self, tmp_path):
        report = lint(tmp_path, {
            "nodes/proxy.py": """
                from repro.core.consistency import guarantee_ts

                class Proxy:
                    def search(self, collection, queries, k, level, stale):
                        guarantee = guarantee_ts(level, 1, stale, 0)
                        plan = self._query_coord.search_plan(collection)
                        return [node.search(collection, queries, k,
                                            guarantee)
                                for node, _scope in plan]
            """,
        }, rule="consistency-discipline")
        assert len(report.findings) == 1
        assert "without waiting" in report.findings[0].message

    def test_wait_after_dispatch_fires(self, tmp_path):
        report = lint(tmp_path, {
            "nodes/proxy.py": PROXY_HEADER + """
        def search(self, collection, queries, k, level, stale):
            guarantee = guarantee_ts(level, 1, stale, 0)
            plan = self._query_coord.search_plan(collection)
            out = [node.search(collection, queries, k)
                   for node, _scope in plan]
            self._wait_for_consistency(collection,
                                       [n for n, _s in plan], guarantee)
            return out
            """,
        }, rule="consistency-discipline")
        assert len(report.findings) == 1
        assert "after" in report.findings[0].message

    def test_hardcoded_guarantee_fires(self, tmp_path):
        report = lint(tmp_path, {
            "api/pymanu.py": """
                class Collection:
                    def poke(self, node, collection):
                        return node.ready(collection, 12345)
            """,
        }, rule="consistency-discipline")
        assert len(report.findings) == 1
        assert "hard-coded guarantee" in report.findings[0].message

    def test_guarantee_may_be_threaded_via_parameter(self, tmp_path):
        report = lint(tmp_path, {
            "nodes/helper.py": """
                class Helper:
                    def fan_out(self, collection, queries, k, guarantee):
                        plan = self._coord.search_plan(collection)
                        for node, scope in plan:
                            node.ready(collection, guarantee)
                        return [node.search(collection, queries, k)
                                for node, _s in plan]
            """,
        }, rule="consistency-discipline")
        assert report.findings == []

    def test_entry_path_named_in_finding(self, tmp_path):
        report = lint(tmp_path, {
            "api/pymanu.py": """
                class Collection:
                    def search(self, collection, queries, k):
                        return self._cluster.do_search(collection,
                                                       queries, k)
            """,
            "nodes/proxy.py": """
                class Proxy:
                    def do_search(self, collection, queries, k):
                        plan = self._query_coord.search_plan(collection)
                        return [node.search(collection, queries, k)
                                for node, _scope in plan]
            """,
        }, rule="consistency-discipline")
        assert len(report.findings) == 1
        assert "entry path: Collection.search -> Proxy.do_search" \
            in report.findings[0].message

    def test_real_repo_is_clean(self):
        report = run_analysis(REPO_SRC,
                              select=["consistency-discipline"])
        assert report.findings == [], \
            "\n".join(f.format() for f in report.findings)


# ----------------------------------------------------------------------
# resource-discipline
# ----------------------------------------------------------------------


class TestResourceDisciplinePass:
    def test_discarded_subscription_fires(self, tmp_path):
        report = lint(tmp_path, {
            "nodes/query_node.py": """
                from repro.log.broker import LogBroker

                class QueryNode:
                    def __init__(self, broker: LogBroker) -> None:
                        self._broker = broker

                    def tap(self):
                        self._broker.subscribe("wal/c/shard-0", "tap")
            """,
        }, rule="resource-discipline")
        assert findings_at(report, "resource-discipline") == [
            ("nodes/query_node.py", 9)]
        assert "discarded" in report.findings[0].message

    def test_retained_subscription_is_clean(self, tmp_path):
        report = lint(tmp_path, {
            "nodes/query_node.py": """
                from repro.log.broker import LogBroker

                class QueryNode:
                    def __init__(self, broker: LogBroker) -> None:
                        self._broker = broker
                        self._subs = {}

                    def tap(self, channel):
                        self._subs[channel] = self._broker.subscribe(
                            channel, "tap")
            """,
        }, rule="resource-discipline")
        assert report.findings == []

    def test_open_outside_with_fires(self, tmp_path):
        report = lint(tmp_path, {
            "storage/object_store.py": """
                def slurp(path):
                    f = open(path, "rb")
                    return f.read()
            """,
        }, rule="resource-discipline")
        assert len(report.findings) == 1
        assert "open()" in report.findings[0].message

    def test_open_in_with_is_clean(self, tmp_path):
        report = lint(tmp_path, {
            "storage/object_store.py": """
                def slurp(path):
                    with open(path, "rb") as f:
                        return f.read()
            """,
        }, rule="resource-discipline")
        assert report.findings == []

    def test_bare_acquire_fires_and_finally_release_is_clean(
            self, tmp_path):
        report = lint(tmp_path, {
            "storage/locks.py": """
                def bad(lock):
                    lock.acquire()
                    return 1

                def good(lock):
                    lock.acquire()
                    try:
                        return 1
                    finally:
                        lock.release()

                def best(lock):
                    with lock:
                        return 1
            """,
        }, rule="resource-discipline")
        assert findings_at(report, "resource-discipline") == [
            ("storage/locks.py", 3)]

    def test_real_repo_is_clean(self):
        report = run_analysis(REPO_SRC, select=["resource-discipline"])
        assert report.findings == [], \
            "\n".join(f.format() for f in report.findings)


# ----------------------------------------------------------------------
# CLI: --format github/dot, --baseline
# ----------------------------------------------------------------------


class TestCliExtensions:
    def _bad_root(self, tmp_path):
        return make_tree(tmp_path, {
            "core/bad.py": "from repro.api import rest\n"})

    def test_github_format(self, tmp_path, capsys):
        from repro.analysis.cli import main
        assert main([str(self._bad_root(tmp_path)),
                     "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("::error file=core/bad.py,line=1,"
                              "title=manu-lint layering::")

    def test_dot_format(self, tmp_path, capsys):
        from repro.analysis.cli import main
        assert main([str(REPO_SRC), "--format", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph manu_pubsub")
        assert '"log/logger_node.py" -> "chan:wal-shard";' in out

    def test_json_embeds_topology(self, capsys):
        from repro.analysis.cli import main
        assert main([str(REPO_SRC), "--strict", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["topology"]["matches_declared"] is True
        assert "wal-shard" in payload["topology"]["publishers"]

    def test_baseline_roundtrip(self, tmp_path, capsys):
        from repro.analysis.cli import main
        root = self._bad_root(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([str(root), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        capsys.readouterr()
        # With the baseline in place the same finding no longer fails.
        assert main([str(root), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out
        # A fresh violation still fails through the baseline.
        (root / "core" / "worse.py").write_text(
            "from repro.nodes import proxy\n", encoding="utf-8")
        assert main([str(root), "--baseline", str(baseline)]) == 1

    def test_update_baseline_requires_file(self, capsys):
        from repro.analysis.cli import main
        assert main([str(REPO_SRC), "--update-baseline"]) == 2
