"""Tests for the SSD index and the attribute indexes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schema import MetricType
from repro.errors import IndexBuildError
from repro.index.attr import BTreeIndex, LabelIndex, SortedListIndex
from repro.index.flat import FlatIndex
from repro.index.ssd import BLOCK_BYTES, SsdIndex


@pytest.fixture(scope="module")
def ssd_data():
    rng = np.random.default_rng(9)
    centers = rng.standard_normal((16, 64)).astype(np.float32) * 5
    assign = rng.integers(0, 16, 2000)
    data = centers[assign] + rng.standard_normal((2000, 64)).astype(
        np.float32)
    queries = data[rng.choice(2000, 15, replace=False)]
    return data, queries


class TestSsdIndex:
    def test_buckets_fit_4kb_blocks(self, ssd_data):
        data, _ = ssd_data
        index = SsdIndex(MetricType.EUCLIDEAN, 64, replicas=1)
        index.build(data)
        # 64 dims at 1 byte each -> 64 vectors per 4 KB block.
        assert index.bucket_capacity == BLOCK_BYTES // 64
        assert index.bucket_sizes().max() <= index.bucket_capacity

    def test_replication_improves_recall(self):
        # Multi-assignment pays off when k-means boundaries split query
        # neighborhoods — uniform data is the boundary-dominated regime.
        rng = np.random.default_rng(9)
        data = rng.standard_normal((2000, 64)).astype(np.float32)
        queries = data[rng.choice(2000, 20, replace=False)] + \
            rng.standard_normal((20, 64)).astype(np.float32) * 0.05
        flat = FlatIndex(MetricType.EUCLIDEAN, 64)
        flat.build(data)
        truth, _ = flat.search(queries, 10)

        def recall(replicas):
            index = SsdIndex(MetricType.EUCLIDEAN, 64, nprobe=8,
                             replicas=replicas, seed=3)
            index.build(data)
            ids, _ = index.search(queries, 10)
            hits = sum(len(set(map(int, r)) & set(map(int, t)))
                       for r, t in zip(ids, truth))
            return hits / truth.size

        assert recall(3) > recall(1)

    def test_ssd_blocks_counted(self, ssd_data):
        data, queries = ssd_data
        index = SsdIndex(MetricType.EUCLIDEAN, 64, nprobe=6, replicas=1)
        index.build(data)
        index.search(queries[:3], 5)
        # 3 queries x 6 buckets x 1 block each.
        assert index.stats.ssd_blocks_read == 18

    def test_no_duplicate_results(self, ssd_data):
        data, queries = ssd_data
        index = SsdIndex(MetricType.EUCLIDEAN, 64, nprobe=8, replicas=3)
        index.build(data)
        ids, _ = index.search(queries, 20)
        for row in ids:
            valid = [int(x) for x in row if x >= 0]
            assert len(valid) == len(set(valid))

    def test_dram_far_smaller_than_ssd(self, ssd_data):
        data, _ = ssd_data
        index = SsdIndex(MetricType.EUCLIDEAN, 64, replicas=1)
        index.build(data)
        assert index.dram_bytes() < data.nbytes / 4
        assert index.ssd_bytes() >= index.num_buckets * BLOCK_BYTES

    def test_invalid_replicas(self):
        with pytest.raises(IndexBuildError):
            SsdIndex(MetricType.EUCLIDEAN, 64, replicas=0)

    def test_large_dim_multi_block_buckets(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((100, 8192)).astype(np.float32)
        index = SsdIndex(MetricType.EUCLIDEAN, 8192, replicas=1)
        assert index.blocks_per_bucket == 2  # 8192 bytes SQ = 2 blocks


class TestSortedListIndex:
    def test_range_queries(self):
        index = SortedListIndex([5.0, 1.0, 3.0, 2.0, 4.0])
        assert index.range(2.0, 4.0).tolist() == [2, 3, 4]  # rows of 3,2,4
        assert index.range(low=3.0).tolist() == [0, 2, 4]
        assert index.range(high=2.0).tolist() == [1, 3]
        assert index.range().tolist() == [0, 1, 2, 3, 4]

    def test_open_intervals(self):
        index = SortedListIndex([1.0, 2.0, 3.0])
        assert index.range(1.0, 3.0, include_low=False,
                           include_high=False).tolist() == [1]

    def test_equal_and_duplicates(self):
        index = SortedListIndex([2.0, 1.0, 2.0])
        assert index.equal(2.0).tolist() == [0, 2]
        assert index.equal(9.0).tolist() == []

    def test_selectivity(self):
        index = SortedListIndex([1.0, 2.0, 3.0, 4.0])
        assert index.selectivity(2.0, 3.0) == 0.5
        assert index.min_value() == 1.0 and index.max_value() == 4.0

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=60),
           st.floats(-100, 100), st.floats(-100, 100))
    @settings(max_examples=40)
    def test_matches_naive_filter(self, values, a, b):
        low, high = min(a, b), max(a, b)
        index = SortedListIndex(values)
        expected = sorted(i for i, v in enumerate(values)
                          if low <= v <= high)
        assert index.range(low, high).tolist() == expected


class TestBTreeIndex:
    def test_insert_and_range(self):
        tree = BTreeIndex(order=4)
        values = [9, 1, 7, 3, 5, 2, 8, 4, 6, 0]
        tree.insert_many(values, range(10))
        got = tree.range(3, 7)
        expected = sorted(i for i, v in enumerate(values) if 3 <= v <= 7)
        assert got.tolist() == expected

    def test_duplicates_accumulate(self):
        tree = BTreeIndex(order=4)
        for row in range(5):
            tree.insert(1.0, row)
        assert tree.equal(1.0).tolist() == [0, 1, 2, 3, 4]

    def test_balanced_depth(self):
        tree = BTreeIndex(order=8)
        tree.insert_many(range(500), range(500))
        # order-8 B-tree over 500 keys stays shallow.
        assert tree.depth() <= 5
        assert tree.n == 500

    def test_open_ranges(self):
        tree = BTreeIndex(order=4)
        tree.insert_many([1, 2, 3], [0, 1, 2])
        assert tree.range(low=2).tolist() == [1, 2]
        assert tree.range(high=2, include_high=False).tolist() == [0]

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BTreeIndex(order=2)

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=120),
           st.integers(-50, 50), st.integers(-50, 50))
    @settings(max_examples=40)
    def test_matches_naive_filter(self, values, a, b):
        low, high = min(a, b), max(a, b)
        tree = BTreeIndex(order=6)
        tree.insert_many(values, range(len(values)))
        expected = sorted(i for i, v in enumerate(values)
                          if low <= v <= high)
        assert tree.range(low, high).tolist() == expected


class TestLabelIndex:
    def test_equal_and_isin(self):
        index = LabelIndex(["a", "b", "a", "c"])
        assert index.equal("a").tolist() == [0, 2]
        assert index.isin(["a", "c"]).tolist() == [0, 2, 3]
        assert index.equal("zzz").tolist() == []

    def test_incremental_add(self):
        index = LabelIndex()
        for label in ("x", "y", "x"):
            index.add(label)
        assert index.equal("x").tolist() == [0, 2]
        assert index.vocabulary() == ["x", "y"]

    def test_selectivity(self):
        index = LabelIndex(["a", "a", "b", "c"])
        assert index.selectivity(["a"]) == 0.5
        assert LabelIndex().selectivity(["a"]) == 0.0
