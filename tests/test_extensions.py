"""Tests for the future-work extensions: tiered index, keyword
co-processor + hybrid search, coordinator leader election, and the text
dashboard."""

import numpy as np
import pytest

from repro.cluster.manu import ManuCluster
from repro.coord.election import LeaderElection
from repro.coproc.keyword import KeywordCoProcessor, hybrid_search, tokenize
from repro.core.results import SearchHit, SearchResult
from repro.core.schema import CollectionSchema, DataType, FieldSchema, \
    MetricType
from repro.errors import IndexBuildError
from repro.index.flat import FlatIndex
from repro.index.tiered import TieredIndex
from repro.monitoring.dashboard import collection_view, render, system_view
from repro.sim.events import EventLoop
from repro.storage.metastore import MetaStore


class TestTieredIndex:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(13)
        centers = rng.standard_normal((10, 32)).astype(np.float32) * 5
        assign = rng.integers(0, 10, 1500)
        vectors = centers[assign] + rng.standard_normal(
            (1500, 32)).astype(np.float32)
        queries = vectors[rng.choice(1500, 20, replace=False)]
        return vectors, queries

    def test_results_match_flat_oracle(self, data):
        vectors, queries = data
        tiered = TieredIndex(MetricType.EUCLIDEAN, 32, hot_fraction=0.1,
                             nprobe=16)
        tiered.build(vectors)
        flat = FlatIndex(MetricType.EUCLIDEAN, 32)
        flat.build(vectors)
        truth, _ = flat.search(queries, 10)
        ids, _ = tiered.search(queries, 10)
        hits = sum(len(set(map(int, r)) & set(map(int, t)))
                   for r, t in zip(ids, truth))
        assert hits / truth.size > 0.8

    def test_no_duplicate_results(self, data):
        vectors, queries = data
        tiered = TieredIndex(MetricType.EUCLIDEAN, 32)
        tiered.build(vectors)
        ids, _ = tiered.search(queries, 20)
        for row in ids:
            valid = [int(x) for x in row if x >= 0]
            assert len(valid) == len(set(valid))

    def test_rebalance_promotes_popular(self, data):
        vectors, queries = data
        tiered = TieredIndex(MetricType.EUCLIDEAN, 32, hot_fraction=0.05)
        tiered.build(vectors)
        # Hammer a skewed query set; the returned vectors become hot.
        hot_queries = queries[:3]
        for _ in range(5):
            ids, _ = tiered.search(hot_queries, 10)
        popular = set(int(x) for x in ids.ravel() if x >= 0)
        changed = tiered.rebalance()
        assert changed > 0
        hot = set(tiered.hot_set().tolist())
        overlap = len(popular & hot) / len(popular)
        assert overlap > 0.8, "popular vectors should be promoted"

    def test_hot_tier_size_respected(self, data):
        vectors, _ = data
        tiered = TieredIndex(MetricType.EUCLIDEAN, 32, hot_fraction=0.2)
        tiered.build(vectors)
        assert tiered.hot_size == int(1500 * 0.2)
        tiered.rebalance()
        assert tiered.hot_size == int(1500 * 0.2)

    def test_dram_far_below_full(self, data):
        vectors, _ = data
        tiered = TieredIndex(MetricType.EUCLIDEAN, 32, hot_fraction=0.1)
        tiered.build(vectors)
        assert tiered.dram_bytes() < vectors.nbytes / 2

    def test_bad_fraction_rejected(self):
        with pytest.raises(IndexBuildError):
            TieredIndex(MetricType.EUCLIDEAN, 32, hot_fraction=1.5)


class TestKeywordCoProcessor:
    @pytest.fixture
    def rig(self):
        cluster = ManuCluster(num_query_nodes=1)
        schema = CollectionSchema([
            FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8),
            FieldSchema("title", DataType.STRING),
        ])
        cluster.create_collection("docs", schema)
        coproc = KeywordCoProcessor(cluster.broker, "docs", "title",
                                    cluster.config.log.num_shards)
        return cluster, coproc

    def _insert(self, cluster, titles, rng):
        return cluster.insert("docs", {
            "vector": rng.standard_normal(
                (len(titles), 8)).astype(np.float32),
            "title": titles})

    def test_tokenize(self):
        assert tokenize("Hello, World! 42") == ["hello", "world", "42"]

    def test_indexes_from_log(self, rig, rng):
        cluster, coproc = rig
        pks = self._insert(cluster, ["red shoes", "blue shoes",
                                     "red wine"], rng)
        cluster.run_for(100)
        assert coproc.num_documents == 3
        hits = coproc.search("red")
        assert {h.pk for h in hits} == {pks[0], pks[2]}

    def test_tfidf_ranking(self, rig, rng):
        cluster, coproc = rig
        pks = self._insert(cluster, [
            "rare gem", "gem gem gem", "common word salad"], rng)
        cluster.run_for(100)
        hits = coproc.search("gem")
        # The gem-dense document ranks first.
        assert hits[0].pk == pks[1]

    def test_deletes_consumed_from_log(self, rig, rng):
        cluster, coproc = rig
        pks = self._insert(cluster, ["alpha beta", "alpha gamma"], rng)
        cluster.run_for(100)
        cluster.delete("docs", f"_auto_id == {pks[0]}")
        cluster.run_for(100)
        hits = coproc.search("alpha")
        assert [h.pk for h in hits] == [pks[1]]
        assert coproc.num_documents == 1

    def test_consistency_gate_advances(self, rig, rng):
        cluster, coproc = rig
        self._insert(cluster, ["tick tock"], rng)
        cluster.run_for(200)  # several time-ticks
        assert coproc.gate.ticks_consumed > 0
        assert coproc.ready(0)

    def test_empty_query(self, rig):
        _cluster, coproc = rig
        assert coproc.search("") == []
        assert coproc.search("!!!") == []

    def test_close_stops_consumption(self, rig, rng):
        cluster, coproc = rig
        coproc.close()
        self._insert(cluster, ["late arrival"], rng)
        cluster.run_for(100)
        assert coproc.num_documents == 0


class TestHybridSearch:
    def _vector_result(self, pks):
        hits = [SearchHit(float(i), pk) for i, pk in enumerate(pks)]
        return SearchResult(hits=hits, metric=MetricType.EUCLIDEAN,
                            latency_ms=1.0)

    def test_agreement_boosts(self):
        vector = self._vector_result([1, 2, 3])
        keyword = [SearchHit(-2.0, 3), SearchHit(-1.0, 4)]
        fused = hybrid_search(vector, keyword, k=4)
        # pk 3 appears in both rankings -> first.
        assert fused.pks[0] == 3
        assert set(fused.pks) == {1, 2, 3, 4}

    def test_k_zero(self):
        fused = hybrid_search(self._vector_result([1]), [], k=0)
        assert len(fused) == 0

    def test_keyword_only(self):
        fused = hybrid_search(self._vector_result([]),
                              [SearchHit(-1.0, "a")], k=3)
        assert fused.pks == ["a"]


class TestLeaderElection:
    def _make(self, loop, meta, name, events, ttl=300.0, hb=100.0):
        return LeaderElection(
            meta, loop, "root-coord", name, lease_ttl_ms=ttl,
            heartbeat_ms=hb,
            on_elected=lambda c: events.append(("up", c)),
            on_deposed=lambda c: events.append(("down", c)))

    def test_first_candidate_wins(self):
        loop = EventLoop()
        meta = MetaStore()
        events = []
        a = self._make(loop, meta, "coord-a", events)
        a.start()
        assert a.is_leader
        assert a.current_leader() == "coord-a"
        assert events == [("up", "coord-a")]

    def test_backup_does_not_usurp(self):
        loop = EventLoop()
        meta = MetaStore()
        events = []
        a = self._make(loop, meta, "coord-a", events)
        b = self._make(loop, meta, "coord-b", events)
        a.start()
        b.start()
        loop.run_for(1_000)
        assert a.is_leader and not b.is_leader
        assert a.current_leader() == "coord-a"

    def test_failover_on_crash(self):
        loop = EventLoop()
        meta = MetaStore()
        events = []
        a = self._make(loop, meta, "coord-a", events)
        b = self._make(loop, meta, "coord-b", events)
        a.start()
        b.start()
        loop.run_for(500)
        a.crash()  # stops heart-beating without releasing the lease
        loop.run_for(1_000)  # lease (300 ms) expires; b campaigns
        assert b.is_leader
        assert b.current_leader() == "coord-b"

    def test_graceful_stop_hands_over_immediately(self):
        loop = EventLoop()
        meta = MetaStore()
        events = []
        a = self._make(loop, meta, "coord-a", events)
        b = self._make(loop, meta, "coord-b", events)
        a.start()
        b.start()
        a.stop()
        loop.run_for(200)  # next heartbeat of b
        assert b.is_leader
        assert ("down", "coord-a") in events

    def test_heartbeat_must_beat_lease(self):
        with pytest.raises(ValueError):
            LeaderElection(MetaStore(), EventLoop(), "e", "c",
                           lease_ttl_ms=100.0, heartbeat_ms=200.0)


class TestDashboard:
    def test_renders_live_cluster(self, rng):
        cluster = ManuCluster(num_query_nodes=2)
        schema = CollectionSchema(
            [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8)])
        cluster.create_collection("demo", schema)
        cluster.insert("demo", {"vector": rng.standard_normal(
            (100, 8)).astype(np.float32)})
        cluster.run_for(200)
        cluster.flush("demo")
        cluster.create_index("demo", "vector", "FLAT",
                             MetricType.EUCLIDEAN)
        cluster.wait_for_indexes("demo")
        cluster.search("demo", rng.standard_normal(8), 3)

        text = render(cluster)
        assert "MANU SYSTEM VIEW" in text
        assert "QUERY NODES" in text
        assert "qn-0" in text and "qn-1" in text
        assert "demo" in text
        assert "vector:FLAT" in text
        assert "LOADED" in text

    def test_views_standalone(self):
        cluster = ManuCluster(num_query_nodes=1)
        assert "SYSTEM VIEW" in system_view(cluster)
        assert "COLLECTIONS" in collection_view(cluster)
