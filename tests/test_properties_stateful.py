"""Stateful (model-based) property tests with hypothesis.

Each machine drives a component through random operation sequences and
checks it against a trivially correct model after every step:

* :class:`BrokerMachine` — the log broker vs an append-only list per
  channel: FIFO order, offset density, truncation and cursor semantics;
* :class:`SegmentMachine` — a growing segment vs a dict model: append /
  delete visibility and exact top-1 search against brute force;
* :class:`RingMachine` — the consistent-hash ring: ownership is always a
  member, and churn only moves keys touching the changed node.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.config import SegmentConfig
from repro.core.schema import CollectionSchema, DataType, FieldSchema, \
    MetricType
from repro.core.segment import Segment
from repro.log.broker import LogBroker
from repro.log.hashring import HashRing


class BrokerMachine(RuleBasedStateMachine):
    """The broker must behave like a truncatable append-only list."""

    def __init__(self):
        super().__init__()
        self.broker = LogBroker()
        self.broker.create_channel("ch")
        self.model: list[int] = []
        self.base = 0
        self.cursor = self.broker.subscribe("ch", "model-reader")
        self.consumed: list[int] = []
        self.counter = 0

    @rule()
    def publish(self):
        offset = self.broker.publish("ch", self.counter)
        assert offset == self.base + len(self.model)
        self.model.append(self.counter)
        self.counter += 1

    @rule(n=st.integers(1, 5))
    def poll(self, n):
        entries = self.cursor.poll(max_entries=n)
        self.consumed.extend(e.payload for e in entries)

    @rule(keep=st.integers(0, 3))
    def truncate(self, keep):
        target = max(self.base,
                     self.base + len(self.model) - keep)
        dropped = self.broker.truncate("ch", target)
        self.model = self.model[dropped:]
        self.base += dropped

    @invariant()
    def offsets_are_dense(self):
        assert self.broker.begin_offset("ch") == self.base
        assert self.broker.end_offset("ch") == self.base + len(self.model)

    @invariant()
    def retained_entries_match_model(self):
        entries = self.broker.read("ch", self.base, max_entries=10_000)
        assert [e.payload for e in entries] == self.model
        assert [e.offset for e in entries] == list(
            range(self.base, self.base + len(self.model)))

    @invariant()
    def consumption_is_fifo_subsequence(self):
        assert self.consumed == sorted(self.consumed)
        assert len(set(self.consumed)) == len(self.consumed)


TestBroker = BrokerMachine.TestCase
TestBroker.settings = settings(max_examples=30,
                               stateful_step_count=30,
                               deadline=None)


class SegmentMachine(RuleBasedStateMachine):
    """A segment must agree with a dict model + brute-force search."""

    def __init__(self):
        super().__init__()
        schema = CollectionSchema(
            [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=4)])
        self.segment = Segment("s", "c", schema,
                               SegmentConfig(slice_size=8,
                                             temp_index_nlist=2,
                                             seal_entity_count=10**9))
        self.model: dict[int, np.ndarray] = {}
        self.next_pk = 0
        self.rng = np.random.default_rng(0)

    @rule(n=st.integers(1, 6))
    def append(self, n):
        pks = list(range(self.next_pk, self.next_pk + n))
        vectors = self.rng.standard_normal((n, 4)).astype(np.float32)
        self.segment.append(pks, {"vector": vectors}, lsn=self.next_pk)
        for pk, vec in zip(pks, vectors):
            self.model[pk] = vec
        self.next_pk += n

    @rule(which=st.integers(0, 200))
    def delete(self, which):
        pk = which % max(1, self.next_pk)
        applied = self.segment.apply_delete([pk], lsn=10**6)
        assert applied == (1 if pk in self.model else 0)
        self.model.pop(pk, None)

    @invariant()
    def row_counts_agree(self):
        assert self.segment.num_live_rows == len(self.model)

    @invariant()
    def exact_search_agrees_with_brute_force(self):
        if not self.model:
            return
        # Probe with an existing vector: brute force over the model must
        # name the same nearest pk (exact tie-free by construction).
        pk = sorted(self.model)[0]
        query = self.model[pk]
        results = self.segment.search("vector", query, 1,
                                      MetricType.EUCLIDEAN)
        got = results[0]
        pks = np.array(sorted(self.model))
        vectors = np.stack([self.model[p] for p in pks])
        dists = ((vectors - query) ** 2).sum(axis=1)
        expected = int(pks[int(dists.argmin())])
        assert got and got[0].pk == expected

    @invariant()
    def contains_matches_model(self):
        for pk in list(self.model)[:3]:
            assert self.segment.contains_pk(pk)
        assert not self.segment.contains_pk(self.next_pk + 1)


TestSegment = SegmentMachine.TestCase
TestSegment.settings = settings(max_examples=20,
                                stateful_step_count=25,
                                deadline=None)


class RingChurnMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ring = HashRing(["seed-node"])
        self.members = {"seed-node"}
        self.keys = [f"key-{i}" for i in range(64)]
        self.owners = {k: self.ring.owner(k) for k in self.keys}
        self.counter = 0

    @rule()
    def add_node(self):
        name = f"node-{self.counter}"
        self.counter += 1
        before = dict(self.owners)
        self.ring.add_node(name)
        self.members.add(name)
        after = {k: self.ring.owner(k) for k in self.keys}
        # New nodes may only steal keys; nothing else moves.
        for key in self.keys:
            assert after[key] in (before[key], name)
        self.owners = after

    @rule(pick=st.integers(0, 1000))
    def remove_node(self, pick):
        removable = sorted(self.members)
        if len(removable) <= 1:
            return
        victim = removable[pick % len(removable)]
        before = dict(self.owners)
        self.ring.remove_node(victim)
        self.members.discard(victim)
        after = {k: self.ring.owner(k) for k in self.keys}
        # Only the victim's keys move.
        for key in self.keys:
            if before[key] != victim:
                assert after[key] == before[key]
            else:
                assert after[key] != victim
        self.owners = after

    @invariant()
    def owners_are_members(self):
        for key in self.keys[:8]:
            assert self.ring.owner(key) in self.members


TestRingChurn = RingChurnMachine.TestCase
TestRingChurn.settings = settings(max_examples=20,
                                  stateful_step_count=20,
                                  deadline=None)
