"""Tests for collection schemas."""

import pytest

from repro.core.schema import (
    AUTO_ID_FIELD,
    CollectionSchema,
    DataType,
    FieldSchema,
    MetricType,
    simple_schema,
)
from repro.errors import FieldNotFound, SchemaError


class TestFieldSchema:
    def test_vector_field_needs_dim(self):
        with pytest.raises(SchemaError):
            FieldSchema("v", DataType.FLOAT_VECTOR)

    def test_scalar_field_rejects_dim(self):
        with pytest.raises(SchemaError):
            FieldSchema("x", DataType.FLOAT, dim=8)

    def test_vector_cannot_be_primary(self):
        with pytest.raises(SchemaError):
            FieldSchema("v", DataType.FLOAT_VECTOR, dim=8, is_primary=True)

    def test_primary_must_be_int_or_string(self):
        with pytest.raises(SchemaError):
            FieldSchema("x", DataType.FLOAT, is_primary=True)
        FieldSchema("x", DataType.INT64, is_primary=True)
        FieldSchema("y", DataType.STRING, is_primary=True)

    def test_reserved_names_rejected(self):
        with pytest.raises(SchemaError):
            FieldSchema(AUTO_ID_FIELD, DataType.INT64)

    def test_bad_name_rejected(self):
        with pytest.raises(SchemaError):
            FieldSchema("has space", DataType.INT64)


class TestCollectionSchema:
    def test_auto_id_added_when_no_primary(self):
        schema = CollectionSchema(
            [FieldSchema("v", DataType.FLOAT_VECTOR, dim=4)])
        assert schema.auto_id
        assert schema.primary_field.name == AUTO_ID_FIELD

    def test_explicit_primary_respected(self):
        schema = CollectionSchema([
            FieldSchema("pk", DataType.INT64, is_primary=True),
            FieldSchema("v", DataType.FLOAT_VECTOR, dim=4),
        ])
        assert not schema.auto_id
        assert schema.primary_field.name == "pk"

    def test_needs_vector_field(self):
        with pytest.raises(SchemaError):
            CollectionSchema([FieldSchema("x", DataType.FLOAT)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            CollectionSchema([
                FieldSchema("v", DataType.FLOAT_VECTOR, dim=4),
                FieldSchema("v", DataType.FLOAT),
            ])

    def test_two_primaries_rejected(self):
        with pytest.raises(SchemaError):
            CollectionSchema([
                FieldSchema("a", DataType.INT64, is_primary=True),
                FieldSchema("b", DataType.INT64, is_primary=True),
                FieldSchema("v", DataType.FLOAT_VECTOR, dim=4),
            ])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            CollectionSchema([])

    def test_field_lookup(self):
        schema = simple_schema(8, with_price=True)
        assert schema.field("price").dtype is DataType.FLOAT
        with pytest.raises(FieldNotFound):
            schema.field("nope")
        assert schema.has_field("vector")
        assert not schema.has_field("nope")

    def test_vector_and_scalar_partitions(self):
        schema = simple_schema(8, with_label=True, with_price=True)
        assert [f.name for f in schema.vector_fields] == ["vector"]
        assert {f.name for f in schema.scalar_fields} == {"label", "price"}

    def test_multi_vector_fields(self):
        schema = CollectionSchema([
            FieldSchema("image", DataType.FLOAT_VECTOR, dim=8),
            FieldSchema("text", DataType.FLOAT_VECTOR, dim=4),
        ])
        assert len(schema.vector_fields) == 2
        assert schema.default_vector_field().name == "image"

    def test_dict_roundtrip(self):
        schema = simple_schema(8, with_label=True, with_price=True)
        again = CollectionSchema.from_dict(schema.to_dict())
        assert again == schema

    def test_dict_roundtrip_explicit_primary(self):
        schema = CollectionSchema([
            FieldSchema("pk", DataType.STRING, is_primary=True),
            FieldSchema("v", DataType.FLOAT_VECTOR, dim=4),
        ])
        again = CollectionSchema.from_dict(schema.to_dict())
        assert again == schema
        assert not again.auto_id


class TestMetricType:
    def test_higher_is_better(self):
        assert not MetricType.EUCLIDEAN.higher_is_better
        assert MetricType.INNER_PRODUCT.higher_is_better
        assert MetricType.COSINE.higher_is_better
