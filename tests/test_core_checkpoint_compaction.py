"""Tests for time-travel checkpoints and the compaction policy."""

import numpy as np
import pytest

from repro.config import SegmentConfig
from repro.core.checkpoint import (
    Checkpoint,
    CheckpointManager,
    apply_retention,
    read_delete_deltas,
    write_delete_delta,
)
from repro.core.compaction import (
    CompactionPolicy,
    SegmentMeta,
    compact_segments,
)
from repro.core.tso import Timestamp
from repro.log.binlog import BinlogReader, BinlogWriter
from repro.log.broker import LogBroker
from repro.log.wal import shard_channel
from repro.storage.object_store import ObjectStore


class TestCheckpointManager:
    def test_write_and_lookup(self):
        store = ObjectStore()
        manager = CheckpointManager(store)
        for ts in (100, 200, 300):
            manager.write(Checkpoint("coll", ts, ("s1",), {"ch": ts // 10}))
        assert manager.latest_before("coll", 250).ts == 200
        assert manager.latest_before("coll", 300).ts == 300
        assert manager.latest_before("coll", 50) is None
        assert len(manager.list_checkpoints("coll")) == 3

    def test_json_roundtrip(self):
        checkpoint = Checkpoint("c", 42, ("a", "b"), {"ch1": 7})
        again = Checkpoint.from_json(checkpoint.to_json())
        assert again == checkpoint


class TestDeleteDeltas:
    def test_write_read_ordering(self):
        store = ObjectStore()
        write_delete_delta(store, "coll", 0, [(1, 100), (2, 200)])
        write_delete_delta(store, "coll", 1, [(3, 300)])
        got = read_delete_deltas(store, "coll")
        assert (1, 100) in got and (3, 300) in got
        assert len(got) == 3

    def test_empty_write_noop(self):
        store = ObjectStore()
        write_delete_delta(store, "coll", 0, [])
        assert store.list("delta/") == []


class TestRetention:
    def test_expires_old_checkpoints_and_truncates(self):
        store = ObjectStore()
        broker = LogBroker()
        channel = shard_channel("coll", 0)
        broker.create_channel(channel)
        for i in range(20):
            broker.publish(channel, i)
        manager = CheckpointManager(store)
        old_ts = Timestamp.from_physical(100).pack()
        new_ts = Timestamp.from_physical(1000).pack()
        manager.write(Checkpoint("coll", old_ts, (), {channel: 5}))
        manager.write(Checkpoint("coll", new_ts, (), {channel: 12}))
        dropped = apply_retention(store, broker, "coll", 1,
                                  expire_before_ms=500)
        assert dropped == 1 + 12  # one checkpoint + 12 WAL entries
        assert broker.begin_offset(channel) == 12
        remaining = manager.list_checkpoints("coll")
        assert [c.ts for c in remaining] == [new_ts]

    def test_no_survivors_keeps_wal(self):
        store = ObjectStore()
        broker = LogBroker()
        channel = shard_channel("coll", 0)
        broker.create_channel(channel)
        broker.publish(channel, 1)
        dropped = apply_retention(store, broker, "coll", 1, 10_000)
        assert dropped == 0
        assert broker.begin_offset(channel) == 0


class TestCompactionPolicy:
    def test_small_segments_grouped(self):
        config = SegmentConfig(compaction_min_size=100,
                               compaction_target_size=250)
        policy = CompactionPolicy(config)
        metas = [SegmentMeta(f"s{i}", 80) for i in range(5)]
        groups = policy.plan(metas)
        assert groups  # something to merge
        grouped = [sid for group in groups for sid in group]
        assert len(set(grouped)) == len(grouped)
        for group in groups:
            assert len(group) > 1

    def test_large_segments_untouched(self):
        policy = CompactionPolicy(SegmentConfig(compaction_min_size=100))
        assert policy.plan([SegmentMeta("big", 5000)]) == []

    def test_delete_heavy_segment_compacted_alone(self):
        policy = CompactionPolicy(delete_rebuild_ratio=0.2)
        groups = policy.plan([SegmentMeta("dirty", 1000, num_deleted=300)])
        assert groups == [["dirty"]]

    def test_single_small_segment_not_merged(self):
        policy = CompactionPolicy(SegmentConfig(compaction_min_size=100))
        assert policy.plan([SegmentMeta("lonely", 10)]) == []

    def test_empty_segments_skipped(self):
        policy = CompactionPolicy()
        assert policy.plan([SegmentMeta("empty", 0)]) == []


class TestCompactSegments:
    def _write(self, store, rng, segment_id, pks, lsn):
        writer = BinlogWriter(store)
        n = len(pks)
        writer.write_segment("coll", segment_id, pks, {
            "vector": rng.standard_normal((n, 4)).astype(np.float32),
            "price": list(np.arange(n, dtype=float))}, lsn)

    def test_merge_preserves_rows(self, rng):
        store = ObjectStore()
        self._write(store, rng, "s1", [1, 2, 3], 10)
        self._write(store, rng, "s2", [4, 5], 20)
        manifest = compact_segments(store, "coll", ["s1", "s2"])
        assert manifest.num_rows == 5
        assert manifest.max_lsn == 20
        assert sorted(manifest.pks) == [1, 2, 3, 4, 5]
        reader = BinlogReader(store)
        assert reader.list_segments("coll") == [manifest.segment_id]
        vectors = reader.read_field("coll", manifest.segment_id, "vector")
        assert vectors.shape == (5, 4)

    def test_deleted_pks_dropped(self, rng):
        store = ObjectStore()
        self._write(store, rng, "s1", [1, 2, 3], 10)
        manifest = compact_segments(store, "coll", ["s1"],
                                    deleted_pks={2})
        assert sorted(manifest.pks) == [1, 3]

    def test_per_segment_delete_mapping(self, rng):
        store = ObjectStore()
        self._write(store, rng, "s1", [1, 2], 10)
        self._write(store, rng, "s2", [3, 4], 20)
        manifest = compact_segments(store, "coll", ["s1", "s2"],
                                    deleted_pks={"s1": {1}, "s2": {4}})
        assert sorted(manifest.pks) == [2, 3]

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            compact_segments(ObjectStore(), "coll", [])


class TestCheckpointFieldRoundTrip:
    """Property: every Checkpoint field survives write -> restore.

    The field list is auto-discovered from the dataclass, so adding a
    recoverable field to ``Checkpoint`` without carrying it through
    ``to_json``/``from_json`` fails here instead of silently dropping
    state on recovery."""

    GENERATORS = {
        "str": lambda rng: f"coll-{int(rng.integers(10_000))}",
        "int": lambda rng: int(rng.integers(1, 2 ** 60)),
        "tuple[str, ...]": lambda rng: tuple(
            f"seg-{int(n)}"
            for n in rng.integers(0, 1_000,
                                  size=int(rng.integers(0, 6)))),
        "Mapping[str, int]": lambda rng: {
            f"wal/c/shard-{k}": int(rng.integers(0, 1 << 40))
            for k in range(int(rng.integers(0, 4)))},
    }

    def test_all_fields_round_trip(self):
        import dataclasses

        rng = np.random.default_rng(1234)
        store = ObjectStore()
        manager = CheckpointManager(store)
        fields = dataclasses.fields(Checkpoint)
        for trial in range(25):
            kwargs = {}
            for f in fields:
                gen = self.GENERATORS.get(str(f.type))
                assert gen is not None, (
                    f"Checkpoint.{f.name}: no generator for type "
                    f"{f.type!r}; extend the round-trip property along "
                    "with the new field")
                kwargs[f.name] = gen(rng)
            kwargs["collection"] = f"{kwargs['collection']}-{trial}"
            checkpoint = Checkpoint(**kwargs)
            manager.write(checkpoint)
            restored = manager.latest_before(checkpoint.collection,
                                             checkpoint.ts)
            assert restored is not None
            for f in fields:
                want = getattr(checkpoint, f.name)
                got = getattr(restored, f.name)
                if isinstance(want, tuple):
                    got = tuple(got)
                elif isinstance(want, dict):
                    got = dict(got)
                assert got == want, \
                    f"Checkpoint.{f.name} did not round-trip"
