"""Tier-1 integration: the repository itself must stay manu-lint clean.

This is the pytest wiring that makes every tier-1 run also enforce the
paper's invariants statically — a refactor that introduces a forbidden
layer edge, raw LSN arithmetic, a wall-clock read, a non-ManuError raise
in the public API, or a frozen-record mutation fails here with the exact
file:line and a fix hint.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import run_analysis

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def test_repo_is_manu_lint_clean_strict():
    report = run_analysis(REPO_SRC, strict=True)
    details = "\n".join(f.format() for f in
                        report.parse_errors + report.findings)
    assert report.ok, f"manu-lint findings:\n{details}"
    assert report.modules_checked > 80  # the whole tree was actually walked


def test_every_repo_suppression_is_justified():
    report = run_analysis(REPO_SRC, strict=True)
    for finding, suppression in report.suppressed:
        assert suppression.reason, (
            f"{finding.path}:{finding.line} suppressed without a reason")
