"""Tier-1 integration: the repository itself must stay manu-lint clean.

This is the pytest wiring that makes every tier-1 run also enforce the
paper's invariants statically — a refactor that introduces a forbidden
layer edge, raw LSN arithmetic, a wall-clock read, a non-ManuError raise
in the public API, or a frozen-record mutation fails here with the exact
file:line and a fix hint.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import run_analysis

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src" / "repro"
TESTS_ROOT = REPO_ROOT / "tests"
BENCHMARKS_ROOT = REPO_ROOT / "benchmarks"


def _assert_clean(root, min_modules):
    report = run_analysis(root, strict=True)
    details = "\n".join(f.format() for f in
                        report.parse_errors + report.findings)
    assert report.ok, f"manu-lint findings under {root.name}:\n{details}"
    # the whole tree was actually walked
    assert report.modules_checked >= min_modules


def test_repo_is_manu_lint_clean_strict():
    _assert_clean(REPO_SRC, min_modules=80)


def test_tests_are_manu_lint_clean_strict():
    _assert_clean(TESTS_ROOT, min_modules=40)


def test_benchmarks_are_manu_lint_clean_strict():
    _assert_clean(BENCHMARKS_ROOT, min_modules=10)


def test_every_repo_suppression_is_justified():
    for root in (REPO_SRC, TESTS_ROOT, BENCHMARKS_ROOT):
        report = run_analysis(root, strict=True)
        for finding, suppression in report.suppressed:
            assert suppression.reason, (
                f"{finding.path}:{finding.line} suppressed without a reason")
