"""Tests for dataset generators, baseline engines and the BOHB tuner."""

import numpy as np
import pytest

from repro.baselines.engines import (
    ElasticsearchLikeEngine,
    ManuEngine,
    ValdLikeEngine,
    VearchLikeEngine,
    VespaLikeEngine,
)
from repro.baselines.milvus import MilvusLikeCluster
from repro.core.schema import CollectionSchema, DataType, FieldSchema, \
    MetricType
from repro.datasets.synthetic import (
    ground_truth,
    make_deep_like,
    make_sift_like,
    recall_at_k,
)
from repro.tuning.bohb import (
    BohbTuner,
    CategoricalParam,
    IntParam,
    SearchSpace,
)


class TestDatasets:
    def test_sift_like_statistics(self):
        dataset = make_sift_like(n=2000, nq=20)
        assert dataset.dim == 128
        assert dataset.metric is MetricType.EUCLIDEAN
        assert dataset.vectors.min() >= 0  # SIFT is non-negative
        assert dataset.vectors.max() <= 218.0
        assert dataset.queries.shape == (20, 128)

    def test_deep_like_statistics(self):
        dataset = make_deep_like(n=2000, nq=20)
        assert dataset.dim == 96
        assert dataset.metric is MetricType.INNER_PRODUCT
        norms = np.linalg.norm(dataset.vectors, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-4)

    def test_deterministic_for_seed(self):
        a = make_sift_like(n=500, seed=3)
        b = make_sift_like(n=500, seed=3)
        assert np.array_equal(a.vectors, b.vectors)

    def test_subset(self):
        dataset = make_sift_like(n=1000, nq=10)
        sub = dataset.subset(100)
        assert sub.size == 100
        assert np.array_equal(sub.vectors, dataset.vectors[:100])
        with pytest.raises(ValueError):
            dataset.subset(5000)

    def test_ground_truth_exactness(self):
        dataset = make_sift_like(n=500, nq=10)
        truth = ground_truth(dataset, 5)
        assert truth.shape == (10, 5)
        # Verify one query by hand.
        dists = ((dataset.vectors - dataset.queries[0]) ** 2).sum(axis=1)
        assert set(truth[0]) == set(np.argsort(dists)[:5])

    def test_recall_at_k(self):
        truth = np.array([[1, 2, 3], [4, 5, 6]])
        perfect = recall_at_k(truth, truth)
        assert perfect == 1.0
        half = recall_at_k(np.array([[1, 2, 99], [4, 98, 97]]), truth)
        assert half == pytest.approx(0.5)
        padded = recall_at_k(np.array([[1, -1, -1], [4, -1, -1]]), truth)
        assert padded == pytest.approx(1 / 3)

    def test_clustered_data_helps_ivf(self):
        """The generated data must be clustered enough that IVF probing a
        fraction of lists beats its probe fraction — that property drives
        every paper figure involving indexes."""
        from repro.index.ivf import IvfFlatIndex
        dataset = make_sift_like(n=3000, nq=30)
        truth = ground_truth(dataset, 10)
        index = IvfFlatIndex(dataset.metric, dataset.dim, nlist=40,
                             nprobe=8)
        index.build(dataset.vectors)
        ids, _ = index.search(dataset.queries, 10)
        recall = recall_at_k(ids, truth)
        assert recall > 0.6  # far above the 20% probe fraction


class TestEngines:
    @pytest.fixture(scope="class")
    def bench(self):
        dataset = make_sift_like(n=1500, nq=20)
        truth = ground_truth(dataset, 10)
        return dataset, truth

    def test_engine_curves_monotone_in_recall(self, bench):
        dataset, truth = bench
        engine = ManuEngine(index_type="IVF_FLAT")
        engine.fit(dataset)
        results = engine.measure(10, truth)
        recalls = [r.recall for r in results]
        assert recalls == sorted(recalls)  # larger nprobe, higher recall
        assert results[-1].recall > 0.9

    def test_latency_grows_with_effort(self, bench):
        dataset, truth = bench
        engine = ManuEngine(index_type="IVF_FLAT")
        engine.fit(dataset)
        results = engine.measure(10, truth)
        assert results[-1].latency_ms > results[0].latency_ms

    def test_es_slower_than_manu(self, bench):
        dataset, truth = bench
        manu = ManuEngine(index_type="HNSW")
        manu.fit(dataset)
        es = ElasticsearchLikeEngine()
        es.fit(dataset)
        manu_results = {round(r.recall, 1): r for r in manu.measure(
            10, truth)}
        es_results = es.measure(10, truth)
        # At comparable recall, ES throughput is far below Manu's.
        for es_point in es_results:
            key = round(es_point.recall, 1)
            if key in manu_results:
                assert es_point.qps < manu_results[key].qps / 3

    def test_vearch_overhead_visible(self, bench):
        dataset, truth = bench
        manu = ManuEngine(index_type="IVF_FLAT")
        manu.fit(dataset)
        vearch = VearchLikeEngine()
        vearch.fit(dataset)
        m = manu.measure(10, truth)
        v = vearch.measure(10, truth)
        # Same sweep, same index family: Vearch pays aggregation overhead.
        for m_point, v_point in zip(m, v):
            assert v_point.latency_ms > m_point.latency_ms

    def test_graph_engines_close_to_manu(self, bench):
        dataset, truth = bench
        vald = ValdLikeEngine()
        vald.fit(dataset)
        vespa = VespaLikeEngine()
        vespa.fit(dataset)
        for engine in (vald, vespa):
            results = engine.measure(10, truth)
            assert max(r.recall for r in results) > 0.85

    def test_qps_property(self):
        from repro.baselines.engines import EngineResult
        point = EngineResult("x", {}, 1.0, 2.0)
        assert point.qps == 500.0


class TestMilvusBaseline:
    def test_ingestion_charges_write_node(self, rng):
        schema = CollectionSchema(
            [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8)])
        cluster = MilvusLikeCluster(num_query_nodes=1,
                                    ingest_ms_per_row=1.0)
        cluster.create_collection("c", schema)
        cluster.insert("c", {"vector": rng.standard_normal(
            (100, 8)).astype(np.float32)})
        # 100 rows at 1 ms each queued on the combined write node.
        assert cluster.write_node.busy_until_ms >= 100.0

    def test_temp_indexes_disabled(self, rng):
        schema = CollectionSchema(
            [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8)])
        cluster = MilvusLikeCluster(num_query_nodes=1)
        cluster.create_collection("c", schema)
        cluster.insert("c", {"vector": rng.standard_normal(
            (2000, 8)).astype(np.float32)})
        cluster.run_for(500)
        for node in cluster.query_coord.live_nodes():
            for sid in node.segments_of("c"):
                segment = node.segment("c", sid)
                assert segment.num_temp_indexes("vector") == 0

    def test_search_always_eventual(self, rng):
        schema = CollectionSchema(
            [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8)])
        cluster = MilvusLikeCluster(num_query_nodes=1)
        cluster.create_collection("c", schema)
        data = {"vector": rng.standard_normal((50, 8)).astype(np.float32)}
        cluster.insert("c", data)
        cluster.run_for(200)
        from repro.core.consistency import ConsistencyLevel
        result = cluster.search("c", data["vector"][0], 1,
                                consistency=ConsistencyLevel.STRONG)[0]
        assert result.consistency_wait_ms == 0.0  # forced eventual


class TestBohb:
    def test_finds_good_config_on_synthetic_objective(self):
        space = SearchSpace((
            IntParam("nprobe", 1, 64, log=True),
            CategoricalParam("index", ("ivf", "hnsw")),
        ))

        def utility(config, budget):
            # Peak at nprobe=32 with hnsw; budget adds precision.
            base = 1.0 - abs(config["nprobe"] - 32) / 64.0
            bonus = 0.2 if config["index"] == "hnsw" else 0.0
            return (base + bonus) * budget

        tuner = BohbTuner(space, utility, seed=1,
                          min_budget_fraction=0.25)
        best = tuner.run(num_brackets=3, initial_configs=16)
        assert best.budget_fraction == 1.0
        assert abs(best.config["nprobe"] - 32) <= 16
        assert len(tuner.trials) > 10

    def test_budget_allocation_increases(self):
        space = SearchSpace((IntParam("x", 0, 10),))
        tuner = BohbTuner(space, lambda c, b: -abs(c["x"] - 5), seed=0,
                          min_budget_fraction=0.25)
        tuner.run(num_brackets=1, initial_configs=8)
        budgets = sorted({t.budget_fraction for t in tuner.trials})
        assert budgets[0] == 0.25
        assert budgets[-1] == 1.0
        # Fewer trials at larger budgets (successive halving).
        small = sum(t.budget_fraction == budgets[0] for t in tuner.trials)
        big = sum(t.budget_fraction == budgets[-1] for t in tuner.trials)
        assert small > big

    def test_param_sampling_bounds(self):
        rng = np.random.default_rng(0)
        param = IntParam("x", 4, 64, log=True)
        for _ in range(100):
            value = param.sample(rng)
            assert 4 <= value <= 64
            assert 4 <= param.perturb(value, rng) <= 64

    def test_categorical_perturb_stays_in_choices(self):
        rng = np.random.default_rng(0)
        param = CategoricalParam("c", ("a", "b"))
        for _ in range(50):
            assert param.perturb("a", rng) in ("a", "b")

    def test_invalid_settings(self):
        space = SearchSpace((IntParam("x", 0, 1),))
        with pytest.raises(ValueError):
            BohbTuner(space, lambda c, b: 0, min_budget_fraction=0)
        with pytest.raises(ValueError):
            BohbTuner(space, lambda c, b: 0, eta=1)

    def test_best_before_run_rejected(self):
        space = SearchSpace((IntParam("x", 0, 1),))
        tuner = BohbTuner(space, lambda c, b: 0)
        with pytest.raises(RuntimeError):
            tuner.best()
