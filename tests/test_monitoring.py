"""Direct unit tests for monitoring/metrics.py plus a smoke test of the
Attu-style text dashboard against a live cluster."""

import numpy as np
import pytest

from repro.cluster.manu import ManuCluster
from repro.core.consistency import ConsistencyLevel
from repro.core.schema import CollectionSchema, DataType, FieldSchema, \
    MetricType
from repro.monitoring import dashboard
from repro.monitoring.metrics import (
    Counter,
    Gauge,
    LatencyWindow,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.inc(-1.0)
        assert counter.value == 0.0


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge()
        gauge.set(10)
        assert gauge.value == 10.0
        gauge.add(-3.5)
        assert gauge.value == 6.5


class TestLatencyWindow:
    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            LatencyWindow(window_ms=0.0)

    def test_count_prunes_old_samples(self):
        window = LatencyWindow(window_ms=100.0)
        window.record(0.0, 5.0)
        window.record(50.0, 7.0)
        window.record(120.0, 9.0)
        assert window.count(130.0) == 2   # the t=0 sample fell out
        assert window.count(500.0) == 0

    def test_qps_over_window(self):
        window = LatencyWindow(window_ms=1_000.0)
        for t in range(10):
            window.record(float(t), 1.0)
        assert window.qps(10.0) == pytest.approx(10.0)

    def test_mean_and_empty(self):
        window = LatencyWindow(window_ms=1_000.0)
        assert window.mean(0.0) is None
        window.record(0.0, 2.0)
        window.record(1.0, 4.0)
        assert window.mean(1.0) == pytest.approx(3.0)

    def test_percentile_rank_math(self):
        window = LatencyWindow(window_ms=10_000.0)
        for i, lat in enumerate([10.0, 20.0, 30.0, 40.0, 50.0]):
            window.record(float(i), lat)
        assert window.percentile(5.0, 0) == 10.0
        assert window.percentile(5.0, 50) == 30.0
        assert window.percentile(5.0, 100) == 50.0
        # Out-of-range percentiles clamp instead of indexing out of bounds.
        assert window.percentile(5.0, 200) == 50.0
        assert LatencyWindow().percentile(0.0, 99) is None


class TestMetricsRegistry:
    def test_namespacing_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.latency("l") is registry.latency("l")
        assert registry.counter("a.b") is not registry.counter("a.c")

    def test_snapshot_keys(self):
        registry = MetricsRegistry()
        registry.counter("reqs").inc(3)
        registry.gauge("mem").set(42.0)
        registry.latency("lat").record(0.0, 8.0)
        snap = registry.snapshot(1.0)
        assert snap["reqs.count"] == 3.0
        assert snap["mem.value"] == 42.0
        assert snap["lat.mean_ms"] == pytest.approx(8.0)
        assert "lat.qps" in snap

    def test_snapshot_omits_empty_window_mean(self):
        registry = MetricsRegistry()
        registry.latency("lat")
        snap = registry.snapshot(0.0)
        assert "lat.mean_ms" not in snap
        assert snap["lat.qps"] == 0.0


class TestRequestLatencyWindows:
    """Every proxy request type records into its own metric window."""

    @pytest.fixture
    def loaded_cluster(self, rng):
        cluster = ManuCluster(num_query_nodes=2)
        schema = CollectionSchema([
            FieldSchema("vector", DataType.FLOAT_VECTOR, dim=16),
            FieldSchema("price", DataType.FLOAT),
        ])
        cluster.create_collection("c", schema)
        data = {"vector": rng.standard_normal((80, 16)).astype(np.float32),
                "price": rng.uniform(0, 100, 80)}
        cluster.insert("c", data)
        cluster.run_for(200)
        return cluster, data

    def test_search_latency_recorded(self, loaded_cluster):
        cluster, data = loaded_cluster
        cluster.search("c", data["vector"][0], 5,
                       consistency=ConsistencyLevel.STRONG)
        window = cluster.metrics.latency("proxy.search_latency")
        assert window.count(cluster.now()) == 1

    def test_range_search_latency_recorded(self, loaded_cluster):
        cluster, data = loaded_cluster
        cluster.proxies[0].range_search("c", data["vector"][0], radius=50.0,
                                        consistency=ConsistencyLevel.STRONG)
        window = cluster.metrics.latency("proxy.range_search_latency")
        assert window.count(cluster.now()) == 1

    def test_multivector_latency_recorded(self, loaded_cluster):
        cluster, data = loaded_cluster
        from repro.core.multivector import MultiVectorQuery
        query = MultiVectorQuery(fields=("vector",),
                                 queries={"vector": data["vector"][1]},
                                 weights={"vector": 1.0},
                                 metric=MetricType.EUCLIDEAN)
        cluster.proxies[0].search_multivector(
            "c", query, 5, consistency=ConsistencyLevel.STRONG)
        window = cluster.metrics.latency("proxy.multivector_latency")
        assert window.count(cluster.now()) == 1


class TestDashboardSmoke:
    def test_render_live_cluster(self, rng):
        cluster = ManuCluster(num_query_nodes=2, num_index_nodes=1)
        schema = CollectionSchema([
            FieldSchema("vector", DataType.FLOAT_VECTOR, dim=16)])
        cluster.create_collection("c", schema)
        cluster.insert("c", {
            "vector": rng.standard_normal((120, 16)).astype(np.float32)})
        cluster.run_for(300)
        cluster.flush("c")
        cluster.create_index("c", "vector", "IVF_FLAT",
                             MetricType.EUCLIDEAN,
                             {"nlist": 4, "nprobe": 4})
        cluster.wait_for_indexes("c")
        cluster.search("c", rng.standard_normal(16).astype(np.float32), 3,
                       consistency=ConsistencyLevel.STRONG)

        text = dashboard.render(cluster)
        assert "MANU SYSTEM VIEW" in text
        assert "QUERY NODES" in text
        assert "INDEX NODES" in text
        assert "COLLECTIONS" in text
        assert "c" in text
        assert "IVF_FLAT" in text
        # Every line stays within a terminal-ish width.
        assert all(len(line) < 100 for line in text.splitlines())

    def test_render_empty_cluster(self):
        cluster = ManuCluster()
        text = dashboard.render(cluster)
        assert "MANU SYSTEM VIEW" in text
        assert "COLLECTIONS" in text
