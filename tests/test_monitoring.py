"""Direct unit tests for monitoring/metrics.py plus a smoke test of the
Attu-style text dashboard against a live cluster."""

import numpy as np
import pytest

from repro.cluster.manu import ManuCluster
from repro.core.consistency import ConsistencyLevel
from repro.core.schema import CollectionSchema, DataType, FieldSchema, \
    MetricType
from repro.monitoring import dashboard
from repro.monitoring.metrics import (
    Counter,
    Gauge,
    Histogram,
    LatencyWindow,
    MetricFamily,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.inc(-1.0)
        assert counter.value == 0.0


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge()
        gauge.set(10)
        assert gauge.value == 10.0
        gauge.add(-3.5)
        assert gauge.value == 6.5


class TestHistogram:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((5.0, 1.0))

    def test_observe_buckets_and_overflow(self):
        hist = Histogram((1.0, 10.0))
        for value in (0.5, 1.0, 3.0, 50.0):
            hist.observe(value)
        assert hist.bucket_counts == [2, 1, 1]  # le=1, le=10, +inf
        assert hist.count == 4
        assert hist.sum == pytest.approx(54.5)
        assert hist.mean == pytest.approx(54.5 / 4)

    def test_empty_percentile_is_none(self):
        hist = Histogram()
        assert hist.percentile(99) is None
        assert hist.mean is None

    def test_percentile_clamps_to_observed_range(self):
        hist = Histogram((2.5, 5.0))
        hist.observe(3.0)  # lone sample in the (2.5, 5] bucket
        assert hist.percentile(99) == pytest.approx(3.0)
        assert hist.percentile(0) == pytest.approx(3.0)

    def test_percentile_orders_buckets(self):
        hist = Histogram((10.0, 20.0, 30.0))
        for value in [5.0] * 90 + [25.0] * 10:
            hist.observe(value)
        p50 = hist.percentile(50)
        p99 = hist.percentile(99)
        assert p50 <= 10.0
        assert 20.0 <= p99 <= 25.0

    def test_merge_adds_counts(self):
        a, b = Histogram((1.0, 10.0)), Histogram((1.0, 10.0))
        a.observe(0.5)
        b.observe(5.0)
        b.observe(100.0)
        merged = a.merge(b)
        assert merged.count == 3
        assert merged.sum == pytest.approx(105.5)
        assert merged.bucket_counts == [1, 1, 1]
        # operands are untouched
        assert a.count == 1 and b.count == 2

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            Histogram((1.0,)).merge(Histogram((2.0,)))

    def test_merged_of_none(self):
        assert Histogram.merged([]) is None

    def test_cumulative_buckets_end_with_inf(self):
        hist = Histogram((1.0, 10.0))
        hist.observe(0.5)
        hist.observe(99.0)
        buckets = hist.cumulative_buckets()
        assert buckets == [(1.0, 1), (10.0, 1), (float("inf"), 2)]


class TestMetricFamily:
    def test_labels_get_or_create(self):
        family = MetricFamily("lag", "gauge", ("channel",))
        child = family.labels(channel="wal/c/shard-0")
        assert family.labels(channel="wal/c/shard-0") is child
        assert len(family) == 1
        family.labels(channel="wal/c/shard-1")
        assert len(family) == 2

    def test_label_schema_enforced(self):
        family = MetricFamily("lag", "gauge", ("channel",))
        with pytest.raises(ValueError):
            family.labels(chan="x")
        with pytest.raises(ValueError):
            family.labels()

    def test_samples_sorted(self):
        family = MetricFamily("lag", "gauge", ("channel",))
        family.labels(channel="b").set(2.0)
        family.labels(channel="a").set(1.0)
        rows = list(family.samples())
        assert [labels["channel"] for labels, _ in rows] == ["a", "b"]

    def test_set_gauges_drops_stale_series(self):
        family = MetricFamily("lag", "gauge", ("channel", "subscriber"))
        family.set_gauges({("c1", "s1"): 5.0, ("c1", "s2"): 7.0})
        assert len(family) == 2
        family.set_gauges({("c1", "s1"): 3.0})
        rows = list(family.samples())
        assert len(rows) == 1
        assert rows[0][1].value == 3.0

    def test_set_gauges_rejected_on_counter(self):
        with pytest.raises(ValueError):
            MetricFamily("n", "counter").set_gauges({(): 1.0})

    def test_aggregate_counter_and_gauge(self):
        counters = MetricFamily("reqs", "counter", ("proxy",))
        assert counters.aggregate() is None
        counters.labels(proxy="p0").inc(3)
        counters.labels(proxy="p1").inc(5)
        assert counters.aggregate() == 8.0          # default: sum
        assert counters.aggregate("max") == 5.0
        gauges = MetricFamily("depth", "gauge", ("channel",))
        gauges.labels(channel="a").set(2.0)
        gauges.labels(channel="b").set(9.0)
        assert gauges.aggregate() == 9.0            # default: max
        assert gauges.aggregate("mean") == pytest.approx(5.5)

    def test_aggregate_histogram_percentile(self):
        family = MetricFamily("lat", "histogram", ("node",))
        for i in range(10):
            family.labels(node="n0").observe(1.0 + i * 0.1)
        family.labels(node="n1").observe(400.0)
        p99 = family.aggregate("p99")
        assert p99 > 100.0  # the cross-node merge sees the outlier
        assert family.aggregate("count") == 11.0

    def test_remove(self):
        family = MetricFamily("lag", "gauge", ("channel",))
        family.labels(channel="a")
        assert family.remove(channel="a") is True
        assert family.remove(channel="a") is False
        assert len(family) == 0


class TestLatencyWindow:
    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            LatencyWindow(window_ms=0.0)

    def test_count_prunes_old_samples(self):
        window = LatencyWindow(window_ms=100.0)
        window.record(0.0, 5.0)
        window.record(50.0, 7.0)
        window.record(120.0, 9.0)
        assert window.count(130.0) == 2   # the t=0 sample fell out
        assert window.count(500.0) == 0

    def test_qps_over_window(self):
        window = LatencyWindow(window_ms=1_000.0)
        for t in range(10):
            window.record(float(t), 1.0)
        assert window.qps(10.0) == pytest.approx(10.0)

    def test_mean_and_empty(self):
        window = LatencyWindow(window_ms=1_000.0)
        assert window.mean(0.0) is None
        window.record(0.0, 2.0)
        window.record(1.0, 4.0)
        assert window.mean(1.0) == pytest.approx(3.0)

    def test_percentile_rank_math(self):
        window = LatencyWindow(window_ms=10_000.0)
        for i, lat in enumerate([10.0, 20.0, 30.0, 40.0, 50.0]):
            window.record(float(i), lat)
        assert window.percentile(5.0, 0) == 10.0
        assert window.percentile(5.0, 50) == 30.0
        assert window.percentile(5.0, 100) == 50.0
        # Out-of-range percentiles clamp instead of indexing out of bounds.
        assert window.percentile(5.0, 200) == 50.0
        assert LatencyWindow().percentile(0.0, 99) is None

    def test_record_prunes_without_reads(self):
        """Regression: a window that is written but never queried used to
        grow without bound; record() itself must prune expired samples."""
        window = LatencyWindow(window_ms=100.0)
        for t in range(10_000):
            window.record(float(t), 1.0)
        # Only the samples inside the trailing 100 ms survive.
        assert len(window) <= 101

    def test_max_samples_caps_burst_within_window(self):
        window = LatencyWindow(window_ms=1e9, max_samples=16)
        for _ in range(1_000):
            window.record(0.0, 1.0)
        assert len(window) == 16


class TestMetricsRegistry:
    def test_namespacing_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.latency("l") is registry.latency("l")
        assert registry.counter("a.b") is not registry.counter("a.c")

    def test_snapshot_keys(self):
        registry = MetricsRegistry()
        registry.counter("reqs").inc(3)
        registry.gauge("mem").set(42.0)
        registry.latency("lat").record(0.0, 8.0)
        snap = registry.snapshot(1.0)
        assert snap["reqs.count"] == 3.0
        assert snap["mem.value"] == 42.0
        assert snap["lat.mean_ms"] == pytest.approx(8.0)
        assert "lat.qps" in snap

    def test_snapshot_omits_empty_window_mean(self):
        registry = MetricsRegistry()
        registry.latency("lat")
        snap = registry.snapshot(0.0)
        assert "lat.mean_ms" not in snap
        assert snap["lat.qps"] == 0.0


class TestRequestLatencyWindows:
    """Every proxy request type records into its own metric window."""

    @pytest.fixture
    def loaded_cluster(self, rng):
        cluster = ManuCluster(num_query_nodes=2)
        schema = CollectionSchema([
            FieldSchema("vector", DataType.FLOAT_VECTOR, dim=16),
            FieldSchema("price", DataType.FLOAT),
        ])
        cluster.create_collection("c", schema)
        data = {"vector": rng.standard_normal((80, 16)).astype(np.float32),
                "price": rng.uniform(0, 100, 80)}
        cluster.insert("c", data)
        cluster.run_for(200)
        return cluster, data

    def test_search_latency_recorded(self, loaded_cluster):
        cluster, data = loaded_cluster
        cluster.search("c", data["vector"][0], 5,
                       consistency=ConsistencyLevel.STRONG)
        window = cluster.metrics.latency("proxy.search_latency")
        assert window.count(cluster.now()) == 1

    def test_range_search_latency_recorded(self, loaded_cluster):
        cluster, data = loaded_cluster
        cluster.proxies[0].range_search("c", data["vector"][0], radius=50.0,
                                        consistency=ConsistencyLevel.STRONG)
        window = cluster.metrics.latency("proxy.range_search_latency")
        assert window.count(cluster.now()) == 1

    def test_multivector_latency_recorded(self, loaded_cluster):
        cluster, data = loaded_cluster
        from repro.core.multivector import MultiVectorQuery
        query = MultiVectorQuery(fields=("vector",),
                                 queries={"vector": data["vector"][1]},
                                 weights={"vector": 1.0},
                                 metric=MetricType.EUCLIDEAN)
        cluster.proxies[0].search_multivector(
            "c", query, 5, consistency=ConsistencyLevel.STRONG)
        window = cluster.metrics.latency("proxy.multivector_latency")
        assert window.count(cluster.now()) == 1


class TestDashboardSmoke:
    def test_render_live_cluster(self, rng):
        cluster = ManuCluster(num_query_nodes=2, num_index_nodes=1)
        schema = CollectionSchema([
            FieldSchema("vector", DataType.FLOAT_VECTOR, dim=16)])
        cluster.create_collection("c", schema)
        cluster.insert("c", {
            "vector": rng.standard_normal((120, 16)).astype(np.float32)})
        cluster.run_for(300)
        cluster.flush("c")
        cluster.create_index("c", "vector", "IVF_FLAT",
                             MetricType.EUCLIDEAN,
                             {"nlist": 4, "nprobe": 4})
        cluster.wait_for_indexes("c")
        cluster.search("c", rng.standard_normal(16).astype(np.float32), 3,
                       consistency=ConsistencyLevel.STRONG)

        text = dashboard.render(cluster)
        assert "MANU SYSTEM VIEW" in text
        assert "QUERY NODES" in text
        assert "INDEX NODES" in text
        assert "COLLECTIONS" in text
        assert "c" in text
        assert "IVF_FLAT" in text
        # Telemetry-plane panels: cluster health plus the backbone view.
        assert "cluster health: healthy" in text
        assert "BACKBONE" in text
        assert "wal/c/shard-" in text
        assert "backlog" in text
        # Every line stays within a terminal-ish width.
        assert all(len(line) < 100 for line in text.splitlines())

    def test_render_empty_cluster(self):
        cluster = ManuCluster()
        text = dashboard.render(cluster)
        assert "MANU SYSTEM VIEW" in text
        assert "COLLECTIONS" in text
        assert "cluster health: healthy" in text

    def test_render_shows_down_node_and_firing_alert(self, rng):
        cluster = ManuCluster(num_query_nodes=2)
        cluster.alerts.add_rule_text(
            "node-down", "component_health.max >= 2")
        schema = CollectionSchema([
            FieldSchema("vector", DataType.FLOAT_VECTOR, dim=16)])
        cluster.create_collection("c", schema)
        cluster.insert("c", {
            "vector": rng.standard_normal((40, 16)).astype(np.float32)})
        cluster.run_for(300)
        victim = cluster.query_coord.node_names[0]
        cluster.fail_query_node(victim)
        cluster.run_for(300)
        text = dashboard.system_view(cluster)
        assert "cluster health: down" in text
        assert "FIRING: node-down" in text
        assert f"{victim:8s} DOWN" in text
