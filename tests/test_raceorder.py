"""Unit tests for the raceorder happens-before pass (manu-race static head).

Fixture trees exercise each rule: a known same-tick race that must fire,
ordered counterparts (scheduler edge, publish->deliver edge) that must
stay silent, hidden-coupling and detached fixtures, and determinism /
real-repo-clean checks on the HB graph builder itself.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import run_analysis
from repro.analysis.engine import load_project
from repro.analysis.raceorder import (
    RACEORDER_DETACHED,
    RACEORDER_HIDDEN_COUPLING,
    RACEORDER_SHARED_STATE,
    build_hb_graph,
)

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def make_tree(tmp_path, files):
    root = tmp_path / "repro_root"
    for relpath, source in files.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def lint(tmp_path, files, rule=None):
    return run_analysis(make_tree(tmp_path, files),
                        select=[rule] if rule else None)


def findings_at(report, rule):
    return [(f.path, f.line) for f in report.findings if f.rule == rule]


#: two delivery handlers on different channel groups mutating the same
#: dict with no ordering edge — the canonical same-tick race.
RACY_NODE = """
from repro.log.broker import LogBroker

class Node:
    def __init__(self, broker: LogBroker) -> None:
        self._broker = broker
        self._state = {}
        self._broker.subscribe("wal/c/shard-0", "n", 0,
                               callback=self._on_data)
        self._broker.subscribe("wal/coord", "nc", 0,
                               callback=self._on_ctrl)

    def _on_data(self, entry) -> None:
        self._state[entry.offset] = entry.payload

    def _on_ctrl(self, entry) -> None:
        self._state.clear()
"""


class TestSharedStateRule:
    def test_unordered_conflicting_handlers_fire(self, tmp_path):
        report = lint(tmp_path, {"nodes/node.py": RACY_NODE},
                      rule=RACEORDER_SHARED_STATE)
        found = findings_at(report, RACEORDER_SHARED_STATE)
        assert len(found) == 1
        assert found[0][0] == "nodes/node.py"
        message = report.findings[0].message
        assert "_on_ctrl" in message and "_on_data" in message
        assert "self._state" in message

    def test_scheduler_edge_orders_the_pair(self, tmp_path):
        # _on_data schedules _drain: every _drain instance runs after the
        # _on_data that scheduled it, so the pair is ordered and silent.
        report = lint(tmp_path, {"nodes/node.py": """
            from repro.log.broker import LogBroker
            from repro.sim.events import EventLoop

            class Node:
                def __init__(self, loop: EventLoop,
                             broker: LogBroker) -> None:
                    self._loop = loop
                    self._broker = broker
                    self._state = {}
                    self._broker.subscribe("wal/c/shard-0", "n", 0,
                                           callback=self._on_data)

                def _on_data(self, entry) -> None:
                    self._state[entry.offset] = entry.payload
                    self._loop.call_after(1.0, self._drain)

                def _drain(self) -> None:
                    self._state.clear()
            """}, rule=RACEORDER_SHARED_STATE)
        assert findings_at(report, RACEORDER_SHARED_STATE) == []

    def test_publish_deliver_edge_orders_the_pair(self, tmp_path):
        # The deferred announce publishes the coord group the second
        # handler subscribes to: the flush is scheduled at publish time,
        # so announce precedes the delivery — ordered, silent.
        report = lint(tmp_path, {"nodes/node.py": """
            from repro.log.broker import LogBroker
            from repro.sim.events import EventLoop

            class Node:
                def __init__(self, loop: EventLoop,
                             broker: LogBroker) -> None:
                    self._loop = loop
                    self._broker = broker
                    self._acked = {}
                    self._broker.subscribe("wal/coord", "n", 0,
                                           callback=self._on_ctrl)
                    self._loop.call_after(1.0, self._announce)

                def _announce(self) -> None:
                    self._acked["sent"] = True
                    self._broker.publish("wal/coord", "done")

                def _on_ctrl(self, entry) -> None:
                    self._acked[entry.offset] = entry.payload
            """}, rule=RACEORDER_SHARED_STATE)
        assert findings_at(report, RACEORDER_SHARED_STATE) == []

    def test_disjoint_state_is_silent(self, tmp_path):
        report = lint(tmp_path, {"nodes/node.py": """
            from repro.log.broker import LogBroker

            class Node:
                def __init__(self, broker: LogBroker) -> None:
                    self._broker = broker
                    self._rows = {}
                    self._acks = {}
                    self._broker.subscribe("wal/c/shard-0", "n", 0,
                                           callback=self._on_data)
                    self._broker.subscribe("wal/coord", "nc", 0,
                                           callback=self._on_ctrl)

                def _on_data(self, entry) -> None:
                    self._rows[entry.offset] = entry.payload

                def _on_ctrl(self, entry) -> None:
                    self._acks[entry.offset] = entry.payload
            """}, rule=RACEORDER_SHARED_STATE)
        assert findings_at(report, RACEORDER_SHARED_STATE) == []

    def test_conflict_through_lambda_and_helper(self, tmp_path):
        # The racy write hides one call deep (helper) behind a lambda
        # callback; read side is a periodic timer.
        report = lint(tmp_path, {"nodes/node.py": """
            from repro.log.broker import LogBroker
            from repro.sim.events import EventLoop

            class Node:
                def __init__(self, loop: EventLoop,
                             broker: LogBroker) -> None:
                    self._loop = loop
                    self._broker = broker
                    self._pending = []
                    self._broker.subscribe("wal/c/shard-0", "n", 0,
                                           callback=lambda e:
                                           self._enqueue(e))
                    self._loop.call_every(5.0, self._flush)

                def _enqueue(self, entry) -> None:
                    self._pending.append(entry)

                def _flush(self) -> None:
                    self._pending = []
            """}, rule=RACEORDER_SHARED_STATE)
        found = findings_at(report, RACEORDER_SHARED_STATE)
        assert len(found) == 1

    def test_suppression_with_reason_is_honoured(self, tmp_path):
        racy = RACY_NODE.replace(
            "    def _on_ctrl(self, entry) -> None:",
            "    # manu-lint: disable=raceorder-shared-state -- both "
            "orders converge: clear() then insert re-delivers\n"
            "    def _on_ctrl(self, entry) -> None:")
        report = lint(tmp_path, {"nodes/node.py": racy},
                      rule=RACEORDER_SHARED_STATE)
        assert findings_at(report, RACEORDER_SHARED_STATE) == []
        assert len(report.suppressed) == 1


class TestHiddenCouplingRule:
    def test_handler_reading_broker_private_state_fires(self, tmp_path):
        report = lint(tmp_path, {"nodes/node.py": """
            from repro.log.broker import LogBroker

            class Node:
                def __init__(self, broker: LogBroker) -> None:
                    self._broker = broker
                    self._lag = 0
                    self._broker.subscribe("wal/c/shard-0", "n", 0,
                                           callback=self._on_data)

                def _on_data(self, entry) -> None:
                    self._lag = len(self._broker._channels)
            """}, rule=RACEORDER_HIDDEN_COUPLING)
        found = findings_at(report, RACEORDER_HIDDEN_COUPLING)
        assert len(found) == 1
        assert "_broker._channels" in report.findings[0].message

    def test_handler_reading_coord_private_state_fires(self, tmp_path):
        report = lint(tmp_path, {"nodes/node.py": """
            from repro.log.broker import LogBroker

            class Node:
                def __init__(self, broker: LogBroker, coord) -> None:
                    self._broker = broker
                    self._coord = coord
                    self.seen = 0
                    self._broker.subscribe("wal/coord", "n", 0,
                                           callback=self._on_ctrl)

                def _on_ctrl(self, entry) -> None:
                    self.seen = len(self._coord._assignments)
            """}, rule=RACEORDER_HIDDEN_COUPLING)
        assert len(findings_at(report, RACEORDER_HIDDEN_COUPLING)) == 1

    def test_public_accessor_is_silent(self, tmp_path):
        report = lint(tmp_path, {"nodes/node.py": """
            from repro.log.broker import LogBroker

            class Node:
                def __init__(self, broker: LogBroker) -> None:
                    self._broker = broker
                    self._lag = 0
                    self._broker.subscribe("wal/c/shard-0", "n", 0,
                                           callback=self._on_data)

                def _on_data(self, entry) -> None:
                    self._lag = self._broker.end_offset(entry.channel)
            """}, rule=RACEORDER_HIDDEN_COUPLING)
        assert findings_at(report, RACEORDER_HIDDEN_COUPLING) == []

    def test_non_handler_code_is_silent(self, tmp_path):
        # Private reach-ins outside the scheduled-event graph are the
        # layering/abstraction rules' business, not raceorder's.
        report = lint(tmp_path, {"nodes/node.py": """
            from repro.log.broker import LogBroker

            class Admin:
                def __init__(self, broker: LogBroker) -> None:
                    self._broker = broker

                def debug_dump(self):
                    return dict(self._broker._channels)
            """}, rule=RACEORDER_HIDDEN_COUPLING)
        assert findings_at(report, RACEORDER_HIDDEN_COUPLING) == []


class TestDetachedRule:
    def test_periodic_publisher_without_detached_fires(self, tmp_path):
        report = lint(tmp_path, {"log/ticker.py": """
            from repro.log.broker import LogBroker
            from repro.sim.events import EventLoop

            class Ticker:
                def __init__(self, loop: EventLoop,
                             broker: LogBroker, tracer) -> None:
                    self._loop = loop
                    self._broker = broker
                    self._tracer = tracer
                    self._loop.call_every(10.0, self._emit)

                def _emit(self) -> None:
                    self._broker.publish("wal/coord", "tick")
            """}, rule=RACEORDER_DETACHED)
        found = findings_at(report, RACEORDER_DETACHED)
        assert len(found) == 1
        assert "_emit" in report.findings[0].message

    def test_periodic_publisher_with_detached_is_silent(self, tmp_path):
        report = lint(tmp_path, {"log/ticker.py": """
            from repro.log.broker import LogBroker
            from repro.sim.events import EventLoop

            class Ticker:
                def __init__(self, loop: EventLoop,
                             broker: LogBroker, tracer) -> None:
                    self._loop = loop
                    self._broker = broker
                    self._tracer = tracer
                    self._loop.call_every(10.0, self._emit)

                def _emit(self) -> None:
                    with self._tracer.detached():
                        self._broker.publish("wal/coord", "tick")
            """}, rule=RACEORDER_DETACHED)
        assert findings_at(report, RACEORDER_DETACHED) == []

    def test_quiet_periodic_handler_is_exempt(self, tmp_path):
        # Neither publishes nor opens spans: nothing to detach.
        report = lint(tmp_path, {"log/ticker.py": """
            from repro.sim.events import EventLoop

            class Beat:
                def __init__(self, loop: EventLoop) -> None:
                    self._loop = loop
                    self.beats = 0
                    self._loop.call_every(10.0, self._beat)

                def _beat(self) -> None:
                    self.beats += 1
            """}, rule=RACEORDER_DETACHED)
        assert findings_at(report, RACEORDER_DETACHED) == []


class TestHBGraphBuilder:
    def test_graph_recovers_kinds_and_groups(self, tmp_path):
        root = make_tree(tmp_path, {"nodes/node.py": RACY_NODE})
        graph = build_hb_graph(load_project(root))
        handlers = graph.to_dict()["handlers"]
        data = handlers["nodes/node.py::Node._on_data"]
        ctrl = handlers["nodes/node.py::Node._on_ctrl"]
        assert data["kinds"] == ["delivery"]
        assert data["channel_groups"] == ["wal-shard"]
        assert ctrl["channel_groups"] == ["coord"]
        assert "_state" in data["writes"] and "_state" in ctrl["writes"]

    def test_graph_build_is_deterministic(self, tmp_path):
        root = make_tree(tmp_path, {"nodes/node.py": RACY_NODE})
        first = build_hb_graph(load_project(root)).to_dict()
        second = build_hb_graph(load_project(root)).to_dict()
        assert first == second

    def test_graph_is_cached_per_project(self, tmp_path):
        root = make_tree(tmp_path, {"nodes/node.py": RACY_NODE})
        project = load_project(root)
        assert build_hb_graph(project) is build_hb_graph(project)

    def test_real_repo_graph_has_expected_handlers(self):
        graph = build_hb_graph(load_project(SRC_ROOT))
        handlers = graph.to_dict()["handlers"]
        # Spot checks across the three handler kinds.
        entry = handlers["nodes/data_node.py::DataNode._on_entry"]
        assert entry["kinds"] == ["delivery"]
        assert entry["channel_groups"] == ["wal-shard"]
        assert "periodic" in handlers[
            "cluster/manu.py::ManuCluster._housekeeping"]["kinds"]
        assert "deferred" in handlers[
            "nodes/data_node.py::DataNode._retry_seal"]["kinds"]
        # The parked-seal trio conflicts on _pending_seals but is ordered
        # by scheduler / publish->deliver edges — the protocol's design.
        coord = "nodes/data_node.py::DataNode._on_coord"
        retry = "nodes/data_node.py::DataNode._retry_seal"
        assert graph.reachable(coord, retry)

    def test_real_repo_is_clean_under_strict(self):
        report = run_analysis(
            SRC_ROOT,
            select=[RACEORDER_SHARED_STATE, RACEORDER_HIDDEN_COUPLING,
                    RACEORDER_DETACHED],
            strict=True)
        assert [f.format() for f in report.findings] == []
        # Every raceorder suppression (if any) carries a justification.
        for finding, suppression in report.suppressed:
            if finding.rule.startswith("raceorder-"):
                assert suppression.reason
