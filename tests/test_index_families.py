"""Cross-cutting tests over every vector index family (Table 1).

One parametrized suite asserts the shared :class:`VectorIndex` contract on
all 14 registered index types; family-specific behaviour gets its own test
classes below.
"""

import numpy as np
import pytest

from repro.core.schema import MetricType
from repro.errors import IndexBuildError
from repro.index import available_indexes, create_index
from repro.index.base import index_from_bytes
from repro.index.flat import FlatIndex

DIM = 32
N = 1500

# Minimum recall@10 each family must reach on clustered data with generous
# parameters.  Quantizers trade recall for memory, hence lower bars.
RECALL_FLOORS = {
    "FLAT": 1.0,
    "IVF_FLAT": 0.85,
    "IVF_PQ": 0.55,
    "IVF_SQ8": 0.85,
    "IVF_HNSW": 0.70,
    "PQ": 0.45,
    "OPQ": 0.45,
    "RQ": 0.45,
    "SQ8": 0.90,
    "IMI": 0.50,
    "HNSW": 0.90,
    "NSG": 0.85,
    "NGT": 0.80,
    "SSD": 0.60,
}

GENEROUS_PARAMS = {
    "IVF_FLAT": {"nlist": 32, "nprobe": 8},
    "IVF_PQ": {"nlist": 32, "nprobe": 8, "m": 8},
    "IVF_SQ8": {"nlist": 32, "nprobe": 8},
    "IVF_HNSW": {"nlist": 64, "nprobe": 16},
    "PQ": {"m": 8},
    "OPQ": {"m": 8, "train_iters": 3},
    "RQ": {"stages": 6},
    "IMI": {"ksub": 16, "candidate_factor": 16},
    "HNSW": {"M": 16, "ef_search": 64},
    "NSG": {"knn": 24, "ef_search": 64},
    "NGT": {"edge_size": 16, "ef_search": 64},
    "SSD": {"nprobe": 16, "replicas": 2},
}


@pytest.fixture(scope="module")
def clustered_data():
    rng = np.random.default_rng(5)
    centers = rng.standard_normal((20, DIM)).astype(np.float32) * 6
    assign = rng.integers(0, 20, N)
    data = centers[assign] + rng.standard_normal((N, DIM)).astype(np.float32)
    queries = data[rng.choice(N, 20, replace=False)] + \
        rng.standard_normal((20, DIM)).astype(np.float32) * 0.1
    return data, queries


@pytest.fixture(scope="module")
def truth(clustered_data):
    data, queries = clustered_data
    flat = FlatIndex(MetricType.EUCLIDEAN, DIM)
    flat.build(data)
    ids, _ = flat.search(queries, 10)
    return ids


def build(name, data):
    index = create_index(name, MetricType.EUCLIDEAN, DIM,
                         **GENEROUS_PARAMS.get(name, {}))
    index.build(data)
    return index


@pytest.mark.parametrize("name", sorted(RECALL_FLOORS))
class TestIndexContract:
    def test_recall_floor(self, name, clustered_data, truth):
        data, queries = clustered_data
        index = build(name, data)
        ids, _ = index.search(queries, 10)
        hits = sum(len(set(map(int, row)) & set(map(int, t)))
                   for row, t in zip(ids, truth))
        recall = hits / truth.size
        assert recall >= RECALL_FLOORS[name], f"{name}: recall {recall}"

    def test_result_shape_and_padding(self, name, clustered_data):
        data, _ = clustered_data
        index = build(name, data[:30])
        query = data[:2]
        ids, dists = index.search(query, 50)
        assert ids.shape == (2, 50) and dists.shape == (2, 50)
        # At most 30 real results; the rest padded with -1 / inf.
        assert (ids >= -1).all()
        for row_ids, row_dists in zip(ids, dists):
            valid = row_ids >= 0
            assert np.isfinite(row_dists[valid]).all()

    def test_distances_sorted(self, name, clustered_data):
        data, queries = clustered_data
        index = build(name, data)
        _ids, dists = index.search(queries[:4], 10)
        for row in dists:
            finite = row[np.isfinite(row)]
            assert (np.diff(finite) >= -1e-4).all()

    def test_search_before_build_rejected(self, name):
        index = create_index(name, MetricType.EUCLIDEAN, DIM,
                             **GENEROUS_PARAMS.get(name, {}))
        with pytest.raises(IndexBuildError):
            index.search(np.zeros((1, DIM), dtype=np.float32), 1)

    def test_wrong_dim_rejected(self, name, clustered_data):
        data, _ = clustered_data
        index = build(name, data[:100])
        with pytest.raises(IndexBuildError):
            index.search(np.zeros((1, DIM + 1), dtype=np.float32), 1)

    def test_serialization_roundtrip(self, name, clustered_data):
        data, queries = clustered_data
        index = build(name, data[:200])
        blob = index.to_bytes()
        again = index_from_bytes(blob)
        a_ids, _ = index.search(queries[:3], 5)
        b_ids, _ = again.search(queries[:3], 5)
        assert np.array_equal(a_ids, b_ids)

    def test_stats_populated(self, name, clustered_data):
        data, queries = clustered_data
        index = build(name, data)
        index.search(queries[:2], 5)
        stats = index.stats
        total = (stats.float_comparisons + stats.quantized_comparisons
                 + stats.ssd_blocks_read)
        assert total > 0

    def test_exact_match_found(self, name, clustered_data):
        """Searching for a database vector itself must return it top-1
        (quantizing indexes may rank a twin first, so allow top-10)."""
        data, _ = clustered_data
        index = build(name, data)
        probe = 17
        ids, _ = index.search(data[probe:probe + 1], 10)
        assert probe in set(int(x) for x in ids[0])


class TestRegistry:
    def test_all_expected_registered(self):
        assert set(RECALL_FLOORS) <= set(available_indexes())

    def test_unknown_type_rejected(self):
        with pytest.raises(IndexBuildError):
            create_index("NOPE", MetricType.EUCLIDEAN, 8)

    def test_case_insensitive(self):
        index = create_index("ivf_flat", MetricType.EUCLIDEAN, 8)
        assert index.index_type == "IVF_FLAT"

    def test_bad_dim_rejected(self):
        with pytest.raises(IndexBuildError):
            create_index("FLAT", MetricType.EUCLIDEAN, 0)
