"""Unit tests for the manu-lint rule families (repro.analysis).

Each rule family gets three fixtures: a deliberate violation, a clean
counterpart, and a ``# manu-lint: disable=`` suppression — asserting the
rule fires exactly where expected and nowhere else.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import run_analysis
from repro.analysis.engine import all_rules

MINI_ERRORS = """
class ManuError(Exception):
    pass

class SchemaError(ManuError):
    pass

IndexBuildError = SchemaError
"""


def make_tree(tmp_path, files):
    """Write ``{relpath: source}`` under a fresh analysis root."""
    root = tmp_path / "repro_root"
    for relpath, source in files.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def lint(tmp_path, files, rule=None, strict=False):
    root = make_tree(tmp_path, files)
    select = [rule] if rule else None
    return run_analysis(root, select=select, strict=strict)


def findings_at(report, rule):
    return [(f.path, f.line) for f in report.findings if f.rule == rule]


class TestLayeringRule:
    def test_forbidden_edge_fires_with_edge_named(self, tmp_path):
        report = lint(tmp_path, {
            "core/bad.py": "from repro.nodes.proxy import Proxy\n",
        }, rule="layering")
        assert findings_at(report, "layering") == [("core/bad.py", 1)]
        assert "'core' -> 'nodes'" in report.findings[0].message
        assert "repro.nodes.proxy" in report.findings[0].message

    def test_log_must_not_import_nodes(self, tmp_path):
        report = lint(tmp_path, {
            "log/bad.py": "import repro.nodes.data_node\n",
        }, rule="layering")
        assert findings_at(report, "layering") == [("log/bad.py", 1)]

    def test_allowed_edges_clean(self, tmp_path):
        report = lint(tmp_path, {
            # downward edges and upper-layer imports are all fine
            "log/ok.py": "from repro.core.tso import Timestamp\n",
            "nodes/ok.py": "from repro.index.hnsw import Hnsw\n",
            "api/ok.py": "from repro.cluster.manu import ManuCluster\n",
        }, rule="layering")
        assert report.findings == []

    def test_relative_import_resolves_to_layer(self, tmp_path):
        report = lint(tmp_path, {
            "storage/__init__.py": "",
            "storage/bad.py": "from ..api import rest\n",
        }, rule="layering")
        assert findings_at(report, "layering") == [("storage/bad.py", 1)]

    def test_suppression(self, tmp_path):
        report = lint(tmp_path, {
            "core/sup.py": ("from repro.api import rest  "
                            "# manu-lint: disable=layering -- test\n"),
        }, rule="layering")
        assert report.findings == []
        assert len(report.suppressed) == 1


class TestTimestampDisciplineRule:
    def test_raw_arithmetic_fires(self, tmp_path):
        report = lint(tmp_path, {
            "log/bad.py": """
                def bump(ts, last_lsn):
                    a = ts + 1
                    b = last_lsn - 10
                    return a, b
            """,
        }, rule="timestamp-discipline")
        assert findings_at(report, "timestamp-discipline") == [
            ("log/bad.py", 3), ("log/bad.py", 4)]

    def test_literal_ordering_comparison_fires(self, tmp_path):
        report = lint(tmp_path, {
            "nodes/bad.py": """
                def stale(issue_ts):
                    return issue_ts < 5000
            """,
        }, rule="timestamp-discipline")
        assert findings_at(report, "timestamp-discipline") == [
            ("nodes/bad.py", 3)]

    def test_clean_counterparts(self, tmp_path):
        report = lint(tmp_path, {
            "core/ok.py": """
                def ok(ts, seen_ts, counts, interval_ms):
                    newer = ts > seen_ts      # LSN-vs-LSN ordering is fine
                    sentinel = ts == 0        # equality is fine
                    n = counts + 1            # not an LSN-shaped name
                    later = interval_ms + 5.0
                    return newer, sentinel, n, later
            """,
        }, rule="timestamp-discipline")
        assert report.findings == []

    def test_tso_module_is_exempt(self, tmp_path):
        report = lint(tmp_path, {
            "core/tso.py": """
                def pack(ts):
                    return ts + 1  # the TSO owns the bit layout
            """,
        }, rule="timestamp-discipline")
        assert report.findings == []

    def test_suppression(self, tmp_path):
        report = lint(tmp_path, {
            "log/sup.py": """
                def bump(ts):
                    # manu-lint: disable=timestamp-discipline -- test
                    return ts + 1
            """,
        }, rule="timestamp-discipline")
        assert report.findings == []
        assert len(report.suppressed) == 1


class TestDeterminismRule:
    def test_wall_clock_and_global_random_fire(self, tmp_path):
        report = lint(tmp_path, {
            "index/bad.py": """
                import time
                import random
                import numpy as np

                def f():
                    t = time.time()
                    random.shuffle([1, 2])
                    x = np.random.rand(3)
                    rng = np.random.default_rng()
                    return t, x, rng
            """,
        }, rule="determinism")
        assert findings_at(report, "determinism") == [
            ("index/bad.py", 7), ("index/bad.py", 8),
            ("index/bad.py", 9), ("index/bad.py", 10)]

    def test_from_import_and_datetime_resolve(self, tmp_path):
        report = lint(tmp_path, {
            "coord/bad.py": """
                from time import perf_counter
                from datetime import datetime

                def f():
                    return perf_counter(), datetime.now()
            """,
        }, rule="determinism")
        assert findings_at(report, "determinism") == [
            ("coord/bad.py", 6), ("coord/bad.py", 6)]

    def test_seeded_generators_clean(self, tmp_path):
        report = lint(tmp_path, {
            "index/ok.py": """
                import numpy as np

                def f(rng):
                    seeded = np.random.default_rng(42)
                    draws = rng.random(10)   # generator object, not global
                    return seeded, draws
            """,
        }, rule="determinism")
        assert report.findings == []

    def test_sim_clock_is_whitelisted(self, tmp_path):
        report = lint(tmp_path, {
            "sim/clock.py": "import time\n\ndef now():\n"
                            "    return time.time()\n",
        }, rule="determinism")
        assert report.findings == []

    def test_suppression(self, tmp_path):
        report = lint(tmp_path, {
            "sim/sup.py": """
                import time

                def calibrate():
                    return time.perf_counter()  # manu-lint: disable=determinism -- test
            """,
        }, rule="determinism")
        assert report.findings == []
        assert len(report.suppressed) == 1


class TestErrorHygieneRule:
    def test_public_layer_non_manu_raise_fires(self, tmp_path):
        report = lint(tmp_path, {
            "errors.py": MINI_ERRORS,
            "api/bad.py": """
                def f():
                    raise ValueError("nope")
            """,
        }, rule="error-hygiene")
        assert findings_at(report, "error-hygiene") == [("api/bad.py", 3)]

    def test_manu_subclasses_and_aliases_clean(self, tmp_path):
        report = lint(tmp_path, {
            "errors.py": MINI_ERRORS,
            "cluster/ok.py": """
                from repro.errors import IndexBuildError, SchemaError

                def f(err):
                    if err == "schema":
                        raise SchemaError("bad schema")
                    if err == "index":
                        raise IndexBuildError("bad index")
                    raise err  # re-raising a caught variable is allowed
            """,
        }, rule="error-hygiene")
        assert report.findings == []

    def test_internal_layers_may_raise_builtins(self, tmp_path):
        report = lint(tmp_path, {
            "errors.py": MINI_ERRORS,
            "storage/ok.py": """
                def f():
                    raise ValueError("internal precondition")
            """,
        }, rule="error-hygiene")
        assert report.findings == []

    def test_bare_and_broad_except_fire_everywhere(self, tmp_path):
        report = lint(tmp_path, {
            "errors.py": MINI_ERRORS,
            "index/bad.py": """
                def f():
                    try:
                        pass
                    except Exception:
                        pass
                    try:
                        pass
                    except:
                        pass
            """,
        }, rule="error-hygiene")
        assert findings_at(report, "error-hygiene") == [
            ("index/bad.py", 5), ("index/bad.py", 9)]

    def test_suppression(self, tmp_path):
        report = lint(tmp_path, {
            "errors.py": MINI_ERRORS,
            "api/sup.py": """
                def f():
                    try:
                        pass
                    except Exception:  # manu-lint: disable=error-hygiene -- test
                        pass
            """,
        }, rule="error-hygiene")
        assert report.findings == []
        assert len(report.suppressed) == 1


class TestFrozenRecordRule:
    FIXTURE_WAL = """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class WalRecord:
            ts: int

        @dataclass(frozen=True)
        class InsertRecord(WalRecord):
            pks: tuple = ()
    """

    def test_setattr_and_annotated_mutation_fire(self, tmp_path):
        report = lint(tmp_path, {
            "log/wal.py": self.FIXTURE_WAL,
            "log/bad.py": """
                from repro.log.wal import InsertRecord

                def mutate(rec: InsertRecord):
                    rec.pks = (1,)
                    object.__setattr__(rec, "ts", 0)
            """,
        }, rule="frozen-record")
        assert findings_at(report, "frozen-record") == [
            ("log/bad.py", 5), ("log/bad.py", 6)]

    def test_constructor_assignment_tracked(self, tmp_path):
        report = lint(tmp_path, {
            "log/wal.py": self.FIXTURE_WAL,
            "nodes/bad.py": """
                from repro.log.wal import InsertRecord

                def build():
                    rec = InsertRecord(ts=1)
                    rec.ts = 2
                    return rec
            """,
        }, rule="frozen-record")
        assert findings_at(report, "frozen-record") == [("nodes/bad.py", 6)]

    def test_post_init_and_replace_clean(self, tmp_path):
        report = lint(tmp_path, {
            "log/wal.py": self.FIXTURE_WAL,
            "log/ok.py": """
                from dataclasses import dataclass, replace
                from repro.log.wal import InsertRecord

                @dataclass(frozen=True)
                class Derived:
                    n: int

                    def __post_init__(self):
                        object.__setattr__(self, "n", abs(self.n))

                def rewrite(rec: InsertRecord):
                    return replace(rec, pks=(9,))
            """,
        }, rule="frozen-record")
        assert report.findings == []

    def test_mutating_non_record_objects_clean(self, tmp_path):
        report = lint(tmp_path, {
            "log/wal.py": self.FIXTURE_WAL,
            "nodes/ok.py": """
                def f(cursor):
                    cursor.offset = 3  # plain mutable object
            """,
        }, rule="frozen-record")
        assert report.findings == []

    def test_suppression(self, tmp_path):
        report = lint(tmp_path, {
            "log/wal.py": self.FIXTURE_WAL,
            "log/sup.py": """
                from repro.log.wal import InsertRecord

                def mutate(rec: InsertRecord):
                    # manu-lint: disable=frozen-record -- test
                    rec.pks = (1,)
            """,
        }, rule="frozen-record")
        assert report.findings == []
        assert len(report.suppressed) == 1


class TestSuppressionMechanics:
    def test_file_level_disable(self, tmp_path):
        report = lint(tmp_path, {
            "core/legacy.py": """
                # manu-lint: disable-file=timestamp-discipline -- legacy test
                def f(ts):
                    return ts + 1

                def g(ts):
                    return ts - 1
            """,
        }, rule="timestamp-discipline")
        assert report.findings == []
        assert len(report.suppressed) == 2

    def test_standalone_comment_covers_next_code_line(self, tmp_path):
        report = lint(tmp_path, {
            "core/sup.py": """
                def f(ts):
                    # manu-lint: disable=timestamp-discipline -- spans the
                    # follow-on comment line too
                    return ts + 1
            """,
        }, rule="timestamp-discipline")
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_suppressing_one_rule_does_not_hide_another(self, tmp_path):
        report = lint(tmp_path, {
            "core/mixed.py": """
                import time

                def f(ts):
                    return ts + int(time.time())  # manu-lint: disable=determinism -- test
            """,
        })
        assert findings_at(report, "timestamp-discipline") == [
            ("core/mixed.py", 5)]
        assert findings_at(report, "determinism") == []

    def test_strict_mode_requires_justification(self, tmp_path):
        report = lint(tmp_path, {
            "core/sup.py": """
                def f(ts):
                    return ts + 1  # manu-lint: disable=timestamp-discipline
            """,
        }, strict=True)
        assert findings_at(report, "suppression-hygiene") == [
            ("core/sup.py", 3)]
        # Non-strict mode accepts the same suppression silently.
        relaxed = lint(tmp_path, {
            "core/sup2.py": """
                def f(ts):
                    return ts + 1  # manu-lint: disable=timestamp-discipline
            """,
        })
        assert relaxed.findings == []


class TestEngineAndCli:
    def test_unknown_rule_rejected(self, tmp_path):
        root = make_tree(tmp_path, {"core/x.py": "pass\n"})
        with pytest.raises(ValueError, match="unknown rule"):
            run_analysis(root, select=["no-such-rule"])

    def test_parse_error_reported_not_crashing(self, tmp_path):
        report = lint(tmp_path, {"core/broken.py": "def f(:\n"})
        assert not report.ok
        assert report.parse_errors[0].rule == "parse-error"

    def test_rule_registry_complete(self):
        assert sorted(rule.id for rule in all_rules()) == [
            "consistency-discipline", "determinism",
            "durability-ack-before-durable",
            "durability-checkpoint-coverage",
            "durability-replay-unguarded",
            "durability-unlogged-mutation",
            "error-hygiene",
            "frozen-record", "layering", "pubsub-topology",
            "raceorder-detached", "raceorder-hidden-coupling",
            "raceorder-shared-state", "resource-discipline",
            "timestamp-discipline"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.analysis.cli import main
        root = make_tree(tmp_path, {
            "core/bad.py": "from repro.api import rest\n"})
        assert main([str(root)]) == 1
        out = capsys.readouterr().out
        assert "core/bad.py:1" in out and "[layering]" in out
        clean = make_tree(tmp_path / "clean", {"core/ok.py": "x = 1\n"})
        assert main([str(clean)]) == 0
        assert main([str(clean), "--format", "json"]) == 0
