"""Tests for the PyManu ORM API (Table 2)."""

import numpy as np
import pytest

from repro import (
    Collection,
    CollectionSchema,
    DataType,
    FieldSchema,
    ManuError,
    connect,
    connections,
    parse_metric,
)
from repro.core.schema import MetricType
from repro.errors import CollectionNotFound


@pytest.fixture(autouse=True)
def fresh_connection():
    cluster = connect("default", num_query_nodes=2)
    yield cluster
    connections.disconnect("default")


@pytest.fixture
def schema():
    return CollectionSchema([
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8),
        FieldSchema("price", DataType.FLOAT),
    ])


def make_rows(rng, n):
    return {"vector": rng.standard_normal((n, 8)).astype(np.float32),
            "price": rng.uniform(0, 100, n)}


class TestConnections:
    def test_connect_builds_embedded_cluster(self):
        cluster = connections.get("default")
        assert cluster.num_query_nodes == 2

    def test_unknown_alias_rejected(self):
        with pytest.raises(ManuError):
            connections.get("nope")

    def test_named_aliases(self, fresh_connection):
        other = connect("secondary", cluster=fresh_connection)
        assert connections.get("secondary") is fresh_connection
        connections.disconnect("secondary")
        assert not connections.has_connection("secondary")


class TestMetricParsing:
    @pytest.mark.parametrize("name,expected", [
        ("Euclidean", MetricType.EUCLIDEAN),
        ("L2", MetricType.EUCLIDEAN),
        ("IP", MetricType.INNER_PRODUCT),
        ("inner_product", MetricType.INNER_PRODUCT),
        ("COSINE", MetricType.COSINE),
    ])
    def test_aliases(self, name, expected):
        assert parse_metric(name) is expected

    def test_unknown_metric(self):
        with pytest.raises(ManuError):
            parse_metric("manhattan")


class TestCollectionApi:
    def test_create_and_reopen(self, schema):
        Collection("demo", schema)
        handle = Collection("demo")  # reopen without schema
        assert handle.schema == schema

    def test_missing_collection_without_schema(self):
        with pytest.raises(CollectionNotFound):
            Collection("ghost")

    def test_schema_conflict_rejected(self, schema):
        Collection("demo", schema)
        other = CollectionSchema(
            [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=4)])
        with pytest.raises(ManuError):
            Collection("demo", other)

    def test_insert_search_paper_style(self, schema, rng,
                                       fresh_connection):
        coll = Collection("demo", schema)
        data = make_rows(rng, 100)
        pks = coll.insert(data)
        assert len(pks) == 100
        res = coll.search(vec=data["vector"][7],
                          field="vector",
                          param={"metric_type": "Euclidean"},
                          limit=2,
                          consistency_level="strong")
        assert res[0].pks[0] == pks[7]
        assert len(res[0]) == 2

    def test_query_with_expr(self, schema, rng, fresh_connection):
        coll = Collection("demo", schema)
        vectors = rng.standard_normal((60, 8)).astype(np.float32)
        prices = np.arange(60, dtype=np.float64)
        coll.insert({"vector": vectors, "price": prices})
        res = coll.query(vec=vectors[0],
                         param={"metric_type": "Euclidean"},
                         expr="price < 10", limit=5,
                         consistency_level="strong")
        assert all(pk - 1 < 10 for pk in res[0].pks)

    def test_query_requires_expr(self, schema, rng):
        coll = Collection("demo", schema)
        coll.insert(make_rows(rng, 10))
        with pytest.raises(ManuError):
            coll.query(vec=np.zeros(8))

    def test_search_requires_vector(self, schema):
        coll = Collection("demo", schema)
        with pytest.raises(ManuError):
            coll.search(limit=3)

    def test_unknown_search_kwargs_rejected(self, schema, rng):
        coll = Collection("demo", schema)
        with pytest.raises(ManuError):
            coll.search(vec=np.zeros(8), bogus=1)

    def test_unknown_consistency_rejected(self, schema, rng):
        coll = Collection("demo", schema)
        coll.insert(make_rows(rng, 5))
        with pytest.raises(ManuError):
            coll.search(vec=np.zeros(8), consistency_level="quantum")

    def test_delete_expr_forms(self, schema, rng, fresh_connection):
        coll = Collection("demo", schema)
        pks = coll.insert(make_rows(rng, 10))
        assert coll.delete(f"_auto_id == {pks[0]}") == 1
        assert coll.delete(f"_auto_id in [{pks[1]}, {pks[2]}]") == 2
        with pytest.raises(ManuError):
            coll.delete("price > 5")  # non-pk expressions unsupported

    def test_create_index_and_flush(self, schema, rng, fresh_connection):
        coll = Collection("demo", schema)
        data = make_rows(rng, 120)
        coll.insert(data)
        fresh_connection.run_for(100)
        coll.flush()
        coll.create_index("vector", {"index_type": "IVF_FLAT",
                                     "metric_type": "L2",
                                     "params": {"nlist": 8}})
        assert fresh_connection.wait_for_indexes("demo")
        res = coll.search(vec=data["vector"][3], limit=1,
                          consistency_level="strong")
        assert len(res[0]) == 1

    def test_num_entities(self, schema, rng, fresh_connection):
        coll = Collection("demo", schema)
        coll.insert(make_rows(rng, 25))
        fresh_connection.run_for(100)
        assert coll.num_entities() == 25

    def test_drop(self, schema):
        coll = Collection("demo", schema)
        coll.drop()
        with pytest.raises(CollectionNotFound):
            Collection("demo")

    def test_multivector_search(self, rng, fresh_connection):
        schema = CollectionSchema([
            FieldSchema("image", DataType.FLOAT_VECTOR, dim=8),
            FieldSchema("text", DataType.FLOAT_VECTOR, dim=4),
        ])
        coll = Collection("mv", schema)
        coll.insert({
            "image": rng.standard_normal((50, 8)).astype(np.float32),
            "text": rng.standard_normal((50, 4)).astype(np.float32)})
        fresh_connection.run_for(200)
        res = coll.search_multivector(
            queries={"image": rng.standard_normal(8),
                     "text": rng.standard_normal(4)},
            weights={"image": 1.0, "text": 0.5},
            limit=5, metric_type="IP")
        assert len(res) == 5
