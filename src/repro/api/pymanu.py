"""PyManu: the Python ORM-style API of Table 2.

The paper's API revolves around the ``Collection`` class::

    from repro import connect, Collection, FieldSchema, CollectionSchema
    from repro.core.schema import DataType

    connect()  # embedded in-process cluster (laptop deployment mode)
    schema = CollectionSchema([
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=128),
        FieldSchema("price", DataType.FLOAT),
    ])
    products = Collection("products", schema)
    products.insert({"vector": vecs, "price": prices})
    products.create_index("vector", {"index_type": "IVF_FLAT",
                                     "metric_type": "Euclidean",
                                     "params": {"nlist": 64}})
    res = products.search(vec=query, field="vector",
                          param={"metric_type": "Euclidean"}, limit=2,
                          expr="price > 0")

Deployment adaptivity (Section 4.1): the same API runs against any
:class:`repro.cluster.manu.ManuCluster`, whether it was built embedded
(direct function calls — the personal-computer mode), or wired by a test
harness simulating a larger deployment; applications migrate unchanged.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.cluster.manu import ManuCluster
from repro.core.consistency import ConsistencyLevel
from repro.core.multivector import MultiVectorQuery
from repro.core.results import SearchResult
from repro.core.schema import CollectionSchema, MetricType
from repro.errors import CollectionNotFound, ManuError

_METRIC_ALIASES = {
    "euclidean": MetricType.EUCLIDEAN,
    "l2": MetricType.EUCLIDEAN,
    "inner_product": MetricType.INNER_PRODUCT,
    "ip": MetricType.INNER_PRODUCT,
    "cosine": MetricType.COSINE,
}

_CONSISTENCY_ALIASES = {
    "strong": ConsistencyLevel.STRONG,
    "bounded": ConsistencyLevel.BOUNDED,
    "session": ConsistencyLevel.SESSION,
    "eventual": ConsistencyLevel.EVENTUAL,
}


def parse_metric(name: str) -> MetricType:
    """Map user metric strings ("Euclidean", "IP", ...) to MetricType."""
    try:
        return _METRIC_ALIASES[name.strip().lower()]
    except KeyError:
        raise ManuError(
            f"unknown metric {name!r}; "
            f"expected one of {sorted(_METRIC_ALIASES)}") from None


class _Connections:
    """Process-wide named connections (mirrors pymilvus.connections)."""

    def __init__(self) -> None:
        self._clusters: dict[str, ManuCluster] = {}

    def connect(self, alias: str = "default",
                cluster: Optional[ManuCluster] = None,
                **cluster_kwargs) -> ManuCluster:
        """Open a connection; builds an embedded cluster when none given."""
        if cluster is None:
            cluster = ManuCluster(**cluster_kwargs)
        self._clusters[alias] = cluster
        return cluster

    def get(self, alias: str = "default") -> ManuCluster:
        try:
            return self._clusters[alias]
        except KeyError:
            raise ManuError(
                f"no connection {alias!r}; call connect() first") from None

    def disconnect(self, alias: str = "default") -> None:
        self._clusters.pop(alias, None)

    def has_connection(self, alias: str = "default") -> bool:
        return alias in self._clusters


connections = _Connections()


def connect(alias: str = "default", cluster: Optional[ManuCluster] = None,
            **cluster_kwargs) -> ManuCluster:
    """Module-level convenience for ``connections.connect``."""
    return connections.connect(alias, cluster, **cluster_kwargs)


class Collection:
    """ORM-style handle on one collection (Table 2)."""

    def __init__(self, name: str, schema: Optional[CollectionSchema] = None,
                 using: str = "default",
                 tenant: Optional[str] = None) -> None:
        self.name = name
        self.tenant = tenant
        self._cluster = connections.get(using)
        if tenant is not None:
            # Namespace + authorize before touching the physical layer;
            # an unregistered logical name with a schema is a creation.
            info = self._cluster.tenants.get(tenant)
            if name not in info.collections and schema is not None:
                self.name = self._cluster.tenant_create_collection(
                    tenant, name, schema)
                self.schema = schema
                return
            self.name = name = self._cluster.tenants.resolve(tenant, name)
        existing = self._cluster.root_coord.get_schema(name)
        if existing is None:
            if schema is None:
                raise CollectionNotFound(
                    f"collection {name!r} does not exist and no schema "
                    "was given to create it")
            self._cluster.create_collection(name, schema)
            self.schema = schema
        else:
            if schema is not None and schema != existing:
                raise ManuError(
                    f"collection {name!r} exists with a different schema")
            self.schema = existing

    # ------------------------------------------------------------------
    # Table 2 commands
    # ------------------------------------------------------------------

    def insert(self, data: Mapping) -> tuple:
        """``Collection.insert(vec)``: insert entities; returns their pks."""
        return self._cluster.insert(self.name, data, tenant=self.tenant)

    def delete(self, expr: str) -> int:
        """``Collection.delete(expr)``: delete by primary-key expression."""
        return self._cluster.delete(self.name, expr, tenant=self.tenant)

    def create_index(self, field: str, params: Mapping) -> None:
        """``Collection.create_index(field, params)``.

        ``params`` carries ``index_type`` (Table 1 name),
        ``metric_type`` and index-specific ``params``.
        """
        index_type = params.get("index_type", "IVF_FLAT")
        metric = parse_metric(params.get("metric_type", "Euclidean"))
        self._cluster.create_index(self.name, field, index_type, metric,
                                   params.get("params", {}))

    def search(self, vec=None, field: Optional[str] = None,
               param: Optional[Mapping] = None, limit: int = 10,
               expr: Optional[str] = None,
               consistency_level: str = "bounded",
               staleness_ms: float = 100.0,
               explain: bool = False,
               **extra) -> list[SearchResult]:
        """``Collection.search(vec, params)``: top-``limit`` vector search.

        Accepts the paper's keyword style (``vec=..., field=...,
        param={"metric_type": ...}, limit=..., expr=...``).

        ``explain=True`` attaches the request's EXPLAIN ANALYZE work
        ledger to each result as ``result.profile`` (a
        :class:`~repro.profiling.QueryProfile`; render it with
        ``result.profile.explain()``).
        """
        if vec is None:
            vec = extra.pop("data", None)
        if vec is None:
            raise ManuError("search needs a query vector (vec=...)")
        if extra:
            raise ManuError(f"unknown search arguments {sorted(extra)}")
        param = dict(param or {})
        metric = parse_metric(param.get("metric_type", "Euclidean"))
        level = _CONSISTENCY_ALIASES.get(
            consistency_level.strip().lower())
        if level is None:
            raise ManuError(
                f"unknown consistency level {consistency_level!r}")
        return self._cluster.search(
            self.name, np.asarray(vec, dtype=np.float32), limit,
            field=field, metric=metric, expr=expr, consistency=level,
            staleness_ms=staleness_ms, tenant=self.tenant,
            explain=explain)

    def query(self, vec=None, param: Optional[Mapping] = None,
              expr: Optional[str] = None, limit: int = 10,
              field: Optional[str] = None, **extra) -> list[SearchResult]:
        """``Collection.query(vec, params, expr)``: filtered vector search."""
        if expr is None:
            raise ManuError("query needs a boolean filter expression")
        return self.search(vec=vec, field=field, param=param, limit=limit,
                           expr=expr, **extra)

    # ------------------------------------------------------------------
    # extended surface used by the examples and benches
    # ------------------------------------------------------------------

    def search_multivector(self, queries: Mapping[str, Sequence[float]],
                           weights: Mapping[str, float], limit: int = 10,
                           metric_type: str = "IP") -> SearchResult:
        """Multi-vector entity search over several vector fields."""
        fields = tuple(sorted(queries))
        query = MultiVectorQuery(
            fields=fields,
            queries={f: np.asarray(queries[f], dtype=np.float32)
                     for f in fields},
            weights=dict(weights),
            metric=parse_metric(metric_type))
        return self._cluster.search_multivector(self.name, query, limit)

    def get(self, pks) -> dict:
        """Fetch entities' field values by primary key."""
        return self._cluster.get(self.name, list(pks),
                                 tenant=self.tenant)

    def upsert(self, data: Mapping) -> tuple:
        """Replace-or-insert entities by explicit primary key."""
        return self._cluster.upsert(self.name, data, tenant=self.tenant)

    def range_search(self, vec, radius: float,
                     field: Optional[str] = None,
                     param: Optional[Mapping] = None,
                     expr: Optional[str] = None,
                     limit: Optional[int] = None,
                     consistency_level: str = "bounded"):
        """All entities within a radius (L2) / above a similarity (IP).

        Returns a single :class:`SearchResult` with every qualifying hit.
        """
        param = dict(param or {})
        metric = parse_metric(param.get("metric_type", "Euclidean"))
        level = _CONSISTENCY_ALIASES.get(consistency_level.strip().lower())
        if level is None:
            raise ManuError(
                f"unknown consistency level {consistency_level!r}")
        return self._cluster.range_search(
            self.name, np.asarray(vec, dtype=np.float32), radius,
            field=field, metric=metric, expr=expr, consistency=level,
            limit=limit)

    def flush(self) -> None:
        """Seal and persist all growing segments."""
        self._cluster.flush(self.name)

    def compact(self) -> list[str]:
        return self._cluster.compact(self.name)

    def num_entities(self) -> int:
        return self._cluster.collection_row_count(self.name)

    def drop(self) -> None:
        if self.tenant is not None:
            from repro.tenancy import split_physical
            _, logical = split_physical(self.name)
            self._cluster.tenant_drop_collection(self.tenant, logical)
        else:
            self._cluster.drop_collection(self.name)


class Tenant:
    """Handle on one registered tenant: the namespaced API surface.

    Collections opened through a tenant handle are namespaced
    (``tenant::collection``), authorized against the tenant's registry
    entry, and admitted against its QoS quota buckets at the proxy::

        gold = Tenant.create("acme", qos="gold",
                             quota=TenantQuota(search_qps=100))
        products = gold.create_collection("products", schema)
        products.insert({...})          # charged to acme's insert bucket
    """

    def __init__(self, name: str, using: str = "default") -> None:
        self.name = name
        self._using = using
        self._cluster = connections.get(using)
        self._cluster.tenants.get(name)  # must exist

    @classmethod
    def create(cls, name: str, qos: str = "silver", quota=None,
               using: str = "default") -> "Tenant":
        connections.get(using).create_tenant(name, qos=qos, quota=quota)
        return cls(name, using=using)

    @property
    def info(self):
        return self._cluster.tenants.get(self.name)

    def create_collection(self, name: str,
                          schema: CollectionSchema) -> Collection:
        return Collection(name, schema, using=self._using,
                          tenant=self.name)

    def collection(self, name: str) -> Collection:
        """Open an existing collection in this tenant's namespace."""
        return Collection(name, using=self._using, tenant=self.name)

    def list_collections(self) -> list[str]:
        return sorted(self.info.collections)

    def set_quota(self, quota) -> None:
        self._cluster.set_tenant_quota(self.name, quota)

    def drop(self) -> None:
        self._cluster.drop_tenant(self.name)
