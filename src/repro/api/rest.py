"""RESTful API (Section 4.2).

"Manu provides APIs in popular languages including Python, Java, Go, C++,
along with RESTful APIs."  This module implements the RESTful surface as
a transport-agnostic request handler: ``handle(method, path, body)``
returns ``(status_code, response_dict)``, so it can sit behind any HTTP
server (or be called directly in tests) without this library depending on
one.

Routes
------

==========  =====================================  =========================
method      path                                   action
==========  =====================================  =========================
GET         /collections                           list collections
POST        /collections                           create (name + schema)
GET         /collections/{name}                    describe
DELETE      /collections/{name}                    drop
POST        /collections/{name}/entities           insert rows
POST        /collections/{name}/entities/delete    delete by pk expression
POST        /collections/{name}/entities/get       fetch by pks
POST        /collections/{name}/search             top-k vector search
POST        /collections/{name}/range_search       radius search
POST        /collections/{name}/indexes            declare an index
POST        /collections/{name}/flush              seal + persist segments
GET         /system                                metrics snapshot
GET         /metrics                               Prometheus exposition
GET         /healthz                               component health + alerts
==========  =====================================  =========================

``GET /metrics`` returns the exposition text under a ``text`` key (the
handler is transport-agnostic and always returns a JSON-able dict; an
HTTP server fronting it should serve the ``text`` value with the usual
``text/plain; version=0.0.4`` content type).  ``GET /healthz`` answers
200 while every component is healthy/degraded and 503 once any component
is down — the shape load balancers probe.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.api.pymanu import parse_metric
from repro.cluster.manu import ManuCluster
from repro.core.consistency import ConsistencyLevel
from repro.core.schema import CollectionSchema
from repro.errors import (
    CollectionAlreadyExists,
    CollectionNotFound,
    ExpressionError,
    FieldNotFound,
    ManuError,
    SchemaError,
)

_CONSISTENCY = {level.value: level for level in ConsistencyLevel}


class RestApi:
    """The RESTful endpoint surface over one cluster."""

    def __init__(self, cluster: ManuCluster) -> None:
        self._cluster = cluster

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def handle(self, method: str, path: str,
               body: Optional[dict] = None) -> tuple[int, dict]:
        """Route one request; returns (HTTP status, JSON-able payload)."""
        method = method.upper()
        parts = [p for p in path.split("/") if p]
        try:
            return self._route(method, parts, body or {})
        except CollectionNotFound as exc:
            return 404, {"error": str(exc)}
        except CollectionAlreadyExists as exc:
            return 409, {"error": str(exc)}
        except (SchemaError, ExpressionError, FieldNotFound,
                ManuError, ValueError) as exc:
            return 400, {"error": str(exc)}

    def _route(self, method: str, parts: list[str],
               body: dict) -> tuple[int, dict]:
        if parts == ["system"] and method == "GET":
            return 200, {"metrics": self._cluster.stats_snapshot(),
                         "query_nodes": self._cluster.num_query_nodes,
                         "virtual_time_ms": self._cluster.now()}
        if parts == ["metrics"] and method == "GET":
            # Refresh sampled gauges so a scrape never reads stale lag.
            self._cluster.sample_telemetry()
            return 200, {"text": self._cluster.metrics.expose_text(
                self._cluster.now())}
        if parts == ["healthz"] and method == "GET":
            snapshot = self._cluster.health_snapshot()
            status = 503 if snapshot["status"] == "down" else 200
            return status, snapshot
        if not parts or parts[0] != "collections":
            return 404, {"error": f"unknown path /{'/'.join(parts)}"}

        if len(parts) == 1:
            if method == "GET":
                return 200, {"collections":
                             self._cluster.root_coord.list_collections()}
            if method == "POST":
                return self._create_collection(body)
        elif len(parts) == 2:
            name = parts[1]
            if method == "GET":
                return self._describe(name)
            if method == "DELETE":
                self._cluster.drop_collection(name)
                return 200, {"dropped": name}
        elif len(parts) == 3:
            name, action = parts[1], parts[2]
            if method == "POST":
                return self._collection_action(name, action, body)
        elif len(parts) == 4 and parts[2] == "entities" \
                and method == "POST":
            return self._entity_action(parts[1], parts[3], body)
        return 405, {"error": f"{method} not supported on "
                              f"/{'/'.join(parts)}"}

    # ------------------------------------------------------------------
    # collection routes
    # ------------------------------------------------------------------

    def _create_collection(self, body: dict) -> tuple[int, dict]:
        name = body.get("name")
        schema_dict = body.get("schema")
        if not name or not isinstance(schema_dict, dict):
            raise ManuError("body needs 'name' and 'schema'")
        schema = CollectionSchema.from_dict(schema_dict)
        self._cluster.create_collection(name, schema)
        return 201, {"created": name}

    def _describe(self, name: str) -> tuple[int, dict]:
        schema = self._cluster.root_coord.get_schema(name)
        if schema is None:
            raise CollectionNotFound(name)
        return 200, {
            "name": name,
            "schema": schema.to_dict(),
            "num_entities": self._cluster.collection_row_count(name),
            "indexes": self._cluster.index_coord.index_specs_for(name),
            "loaded": self._cluster.query_coord.is_loaded(name),
        }

    def _collection_action(self, name: str, action: str,
                           body: dict) -> tuple[int, dict]:
        if action == "entities":
            pks = self._cluster.insert(name, self._decode_rows(body))
            return 201, {"insert_count": len(pks), "pks": list(pks)}
        if action == "search":
            return self._search(name, body)
        if action == "range_search":
            return self._range_search(name, body)
        if action == "indexes":
            field = body.get("field")
            if not field:
                raise ManuError("body needs 'field'")
            self._cluster.create_index(
                name, field, body.get("index_type", "IVF_FLAT"),
                parse_metric(body.get("metric_type", "Euclidean")),
                body.get("params", {}))
            return 201, {"index": f"{name}.{field}"}
        if action == "flush":
            self._cluster.flush(name)
            return 200, {"flushed": name}
        return 404, {"error": f"unknown action {action!r}"}

    def _entity_action(self, name: str, action: str,
                       body: dict) -> tuple[int, dict]:
        if action == "delete":
            expr = body.get("expr")
            if not expr:
                raise ManuError("body needs 'expr'")
            deleted = self._cluster.delete(name, expr)
            return 200, {"delete_count": deleted}
        if action == "get":
            pks = body.get("pks")
            if not isinstance(pks, list):
                raise ManuError("body needs 'pks' (a list)")
            rows = self._cluster.get(name, pks)
            return 200, {"entities": {str(pk): _jsonable(values)
                                      for pk, values in rows.items()}}
        return 404, {"error": f"unknown entity action {action!r}"}

    # ------------------------------------------------------------------
    # search routes
    # ------------------------------------------------------------------

    def _common_search_args(self, body: dict) -> dict:
        level = _CONSISTENCY.get(str(body.get("consistency_level",
                                              "bounded")).lower())
        if level is None:
            raise ManuError(
                f"unknown consistency level "
                f"{body.get('consistency_level')!r}")
        return {
            "field": body.get("field"),
            "metric": parse_metric(body.get("metric_type", "Euclidean")),
            "expr": body.get("expr"),
            "consistency": level,
            "staleness_ms": float(body.get("staleness_ms", 100.0)),
        }

    def _search(self, name: str, body: dict) -> tuple[int, dict]:
        vector = body.get("vector")
        if vector is None:
            raise ManuError("body needs 'vector'")
        result = self._cluster.search(
            name, np.asarray(vector, dtype=np.float32),
            int(body.get("limit", 10)),
            **self._common_search_args(body))[0]
        return 200, _result_payload(result)

    def _range_search(self, name: str, body: dict) -> tuple[int, dict]:
        vector = body.get("vector")
        radius = body.get("radius")
        if vector is None or radius is None:
            raise ManuError("body needs 'vector' and 'radius'")
        limit = body.get("limit")
        result = self._cluster.range_search(
            name, np.asarray(vector, dtype=np.float32), float(radius),
            limit=int(limit) if limit is not None else None,
            **self._common_search_args(body))
        return 200, _result_payload(result)

    # ------------------------------------------------------------------
    # encoding helpers
    # ------------------------------------------------------------------

    def _decode_rows(self, body: dict) -> dict:
        rows = body.get("rows")
        if not isinstance(rows, dict):
            raise ManuError("body needs 'rows' (field -> values)")
        return rows


def _result_payload(result) -> dict:
    return {
        "pks": [_json_pk(pk) for pk in result.pks],
        "scores": [float(s) for s in result.scores],
        "latency_ms": result.latency_ms,
        "consistency_wait_ms": result.consistency_wait_ms,
    }


def _json_pk(pk) -> Any:
    return pk if isinstance(pk, str) else int(pk)


def _jsonable(values: dict) -> dict:
    out = {}
    for key, value in values.items():
        if isinstance(value, np.ndarray):
            out[key] = [float(x) for x in value]
        elif isinstance(value, (np.integer, np.floating, np.bool_)):
            out[key] = value.item()
        else:
            out[key] = value
    return out
