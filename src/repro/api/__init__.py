"""PyManu: the user-facing ORM-style API (Table 2)."""

from repro.api.pymanu import Collection, connect, connections

__all__ = ["Collection", "connect", "connections"]
