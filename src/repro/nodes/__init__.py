"""Worker-layer nodes (Section 3.2).

Stateless workers that fetch read-only copies of data and never coordinate
with each other directly — all cooperation flows through the log backbone
and the coordinators:

* :mod:`repro.nodes.data_node` — subscribes to the WAL, accumulates growing
  segments, converts them to column binlogs on seal, maintains delete
  delta logs;
* :mod:`repro.nodes.index_node` — builds indexes for sealed segments from
  binlog columns and persists them to the object store;
* :mod:`repro.nodes.query_node` — serves vector search over growing (WAL)
  and sealed (binlog + index) segments with delta-consistency gating;
* :mod:`repro.nodes.proxy` — stateless user endpoints: validate, route,
  and globally reduce results.
"""

from repro.nodes.data_node import DataNode
from repro.nodes.index_node import IndexNode
from repro.nodes.query_node import QueryNode
from repro.nodes.proxy import Proxy

__all__ = ["DataNode", "IndexNode", "QueryNode", "Proxy"]
