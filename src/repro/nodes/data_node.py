"""Data nodes: WAL -> binlog archiving (Section 3.3).

A data node subscribes to WAL shard channels and materializes the growing
segments referenced by insert records.  When the data coordinator publishes
a seal message (size rollover or idle timeout), the node converts the
segment's rows to a column-based binlog, persists it to the object store,
and announces ``segment_flushed`` on the coordination channel — carrying
the channel offset reached, which checkpointing and failure recovery use as
the WAL replay position.

Deletions that hit a growing segment are applied to its bitmap before the
flush; deletions whose rows live in already-flushed segments are appended
to per-shard delete delta logs (consumed by time travel and compaction).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import ManuConfig
from repro.core.checkpoint import write_delete_delta
from repro.core.schema import CollectionSchema
from repro.core.segment import Segment
from repro.log.binlog import BinlogWriter
from repro.log.broker import LogBroker, LogEntry, Subscription
from repro.log.wal import (
    BatchRecord,
    CoordRecord,
    DeleteRecord,
    InsertRecord,
    TimeTickRecord,
    shard_channel,
)
from repro.sim.costmodel import CostModel
from repro.sim.events import EventLoop
from repro.storage.object_store import ObjectStore
from repro.tracing import NOOP_TRACER, TraceCollector, TraceContext


class DataNode:
    """One log-archiving worker."""

    def __init__(self, name: str, loop: EventLoop, broker: LogBroker,
                 store: ObjectStore, config: ManuConfig,
                 cost_model: CostModel,
                 schema_provider,
                 tracer: Optional[TraceCollector] = None,
                 metrics=None) -> None:
        self.name = name
        self._loop = loop
        self._broker = broker
        self._store = store
        self._config = config
        self._cost = cost_model
        self._schema_provider = schema_provider  # (collection) -> schema
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._component = f"data-node:{name}"
        self._writer = BinlogWriter(store)
        self._subs: dict[str, Subscription] = {}
        # (collection, segment_id) -> growing Segment
        self._growing: dict[tuple[str, str], Segment] = {}
        self._segment_shard: dict[tuple[str, str], int] = {}
        self._channel_offsets: dict[str, int] = {}
        # (collection, shard) -> {pk: latest delete ts}.  Keyed (not
        # appended) so a WAL replay of the same deletion is absorbed
        # instead of duplicating delta entries.
        self._delta_buffer: dict[tuple[str, int], dict] = {}
        # Seal decisions that arrived before (or while) the segment's rows
        # were still in flight on the shard channel:
        # (coll, seg) -> (shard, wire trace context of the seal delivery).
        self._pending_seals: dict[tuple[str, str],
                                  tuple[int, Optional[tuple]]] = {}
        self.segments_flushed = 0
        self._coord_sub: Subscription | None = None
        # Optional repro.monitoring.MetricsRegistry (duck-typed): virtual
        # object-store write duration per flushed segment.
        self._flush_hist = None
        if metrics is not None:
            self._flush_hist = metrics.histogram_family(
                "data_node_flush", ("node",),
                help="binlog flush (object write) duration",
                unit="ms").labels(node=name)

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------

    def subscribe(self, channel: str, from_offset: int = 0) -> None:
        """Start consuming a WAL shard channel."""
        if channel in self._subs:
            return
        self._subs[channel] = self._broker.subscribe(
            channel, f"data-node:{self.name}", from_offset,
            callback=self._on_entry)

    def unsubscribe(self, channel: str) -> None:
        sub = self._subs.pop(channel, None)
        if sub is not None:
            sub.cancel()

    def subscribe_coord(self) -> None:
        """Consume seal decisions from the coordination channel."""
        if self._coord_sub is not None:
            return
        channel = self._config.log.coord_channel
        self._broker.create_channel(channel)
        self._coord_sub = self._broker.subscribe(
            channel, f"data-node-coord:{self.name}",
            from_offset=self._broker.end_offset(channel),
            callback=self._on_coord)

    def _on_coord(self, entry: LogEntry) -> None:
        record = entry.payload
        if isinstance(record, CoordRecord) \
                and record.kind_name == "seal_segment":
            payload = record.payload
            self.handle_seal(payload["collection"], payload["segment_id"],
                             payload["shard"])

    @property
    def channels(self) -> list[str]:
        return sorted(self._subs)

    def _on_entry(self, entry: LogEntry) -> None:
        record = entry.payload
        self._channel_offsets[entry.channel] = entry.offset + 1
        if isinstance(record, BatchRecord):
            # One delivery, N logical records: each inner record keeps
            # its own LSN, so the per-record replay guards below apply
            # unchanged.
            for inner in record.records:
                if isinstance(inner, InsertRecord):
                    self._apply_insert(inner)
                elif isinstance(inner, DeleteRecord):
                    self._apply_delete(inner)
        elif isinstance(record, InsertRecord):
            self._apply_insert(record)
        elif isinstance(record, DeleteRecord):
            self._apply_delete(record)
        elif isinstance(record, TimeTickRecord):
            pass  # archiving needs no watermark
        elif isinstance(record, CoordRecord):
            pass  # coordination arrives on the coord channel

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def _segment(self, collection: str, segment_id: str) -> Segment:
        key = (collection, segment_id)
        if key not in self._growing:
            schema: CollectionSchema = self._schema_provider(collection)
            segment = Segment(segment_id, collection, schema,
                              self._config.segment)
            segment.temp_index_enabled = False  # archiving needs no search
            self._growing[key] = segment
        return self._growing[key]

    def _apply_insert(self, record: InsertRecord) -> None:
        segment = self._segment(record.collection, record.segment_id)
        self._segment_shard[(record.collection, record.segment_id)] = \
            record.shard
        if record.ts <= segment.max_insert_lsn:
            return  # WAL replay of a batch this segment already holds
        segment.append(list(record.pks), dict(record.columns), record.ts,
                       now_ms=self._loop.now())
        # Rotation signal: the shard channel is FIFO, so rows for any
        # *other* pending-seal segment of this shard are fully delivered
        # once a newer segment's rows arrive — flush them now.
        for (coll, sid), (shard, wire) in list(self._pending_seals.items()):
            if coll == record.collection and shard == record.shard \
                    and sid != record.segment_id \
                    and self.has_segment(coll, sid):
                del self._pending_seals[(coll, sid)]
                self.seal_and_flush(coll, sid, shard, trace_parent=wire)

    def _apply_delete(self, record: DeleteRecord) -> None:
        remaining = set(record.pks)
        for (collection, _sid), segment in self._growing.items():
            if collection != record.collection or not remaining:
                continue
            hit = [pk for pk in remaining if segment.contains_pk(pk)]
            if hit:
                segment.apply_delete(hit, record.ts)
                remaining -= set(hit)
        if remaining:
            bucket = self._delta_buffer.setdefault(
                (record.collection, record.shard), {})
            for pk in remaining:
                if record.ts > bucket.get(pk, 0):
                    bucket[pk] = record.ts

    def flush_delta_logs(self) -> None:
        """Persist buffered sealed-segment deletions (periodic event)."""
        for (collection, shard), bucket in self._delta_buffer.items():
            write_delete_delta(self._store, collection, shard,
                               sorted(bucket.items(), key=lambda kv: kv[1]))
        self._delta_buffer = {}

    # ------------------------------------------------------------------
    # sealing & flushing
    # ------------------------------------------------------------------

    def has_segment(self, collection: str, segment_id: str) -> bool:
        return (collection, segment_id) in self._growing

    #: quiescence window before a pending seal is flushed (must exceed
    #: the broker's delivery delay by a wide margin)
    SEAL_SETTLE_MS = 10.0

    def handle_seal(self, collection: str, segment_id: str,
                    shard: int, _retries: int = 0) -> None:
        """React to a seal decision for a shard this node archives.

        Seal messages travel on the coordination channel and are published
        by the allocator *before* the logger publishes the rows that fill
        the segment, so they routinely overtake those rows.  Flushing
        immediately would persist a partial binlog and strand the late
        rows; instead the seal is parked and resolved by either

        * the **rotation signal** in :meth:`_apply_insert` — the shard
          channel is FIFO, so a row for a *newer* segment proves the
          sealed one is complete; or
        * this **quiescence retry**: the segment is flushed once no row
          has arrived for it for :data:`SEAL_SETTLE_MS`.
        """
        channel = shard_channel(collection, shard)
        if channel not in self._subs:
            return  # another data node archives this shard
        key = (collection, segment_id)
        # Capture the seal delivery's context now: the flush runs from a
        # deferred callback where no span is ambient anymore.
        self._pending_seals[key] = (shard, self._tracer.current_wire())
        self._loop.call_after(
            self.SEAL_SETTLE_MS,
            lambda: self._retry_seal(collection, segment_id, shard,
                                     _retries + 1),
            name=f"seal-retry:{segment_id}")

    def _retry_seal(self, collection: str, segment_id: str, shard: int,
                    retries: int) -> None:
        key = (collection, segment_id)
        if key not in self._pending_seals:
            return  # already flushed via the rotation signal
        _shard, wire = self._pending_seals[key]
        # Scheduled retry: the captured wire context is the only causal
        # parent; never adopt whatever frame is stepping the clock.
        with self._tracer.detached():
            self._settle_seal(collection, segment_id, shard, retries, wire)

    def _settle_seal(self, collection: str, segment_id: str, shard: int,
                     retries: int, wire: Optional[tuple]) -> None:
        key = (collection, segment_id)
        segment = self._growing.get(key)
        quiet = (segment is not None
                 and self._loop.now() - segment.last_insert_at_ms
                 >= self.SEAL_SETTLE_MS * 0.5)
        if quiet:
            del self._pending_seals[key]
            self.seal_and_flush(collection, segment_id, shard,
                                trace_parent=wire)
            return
        if retries >= 200:
            # The rows never arrived (lost upstream); flush what exists.
            del self._pending_seals[key]
            if segment is not None:
                self.seal_and_flush(collection, segment_id, shard,
                                    trace_parent=wire)
            return
        self._loop.call_after(
            self.SEAL_SETTLE_MS,
            lambda: self._retry_seal(collection, segment_id, shard,
                                     retries + 1),
            name=f"seal-retry:{segment_id}")

    def seal_and_flush(self, collection: str, segment_id: str,
                       shard: int,
                       trace_parent: Optional[tuple] = None,
                       ) -> Optional[str]:
        """Convert a growing segment to a binlog; returns the segment id.

        The ``segment_flushed`` announcement is published after the virtual
        write duration, so downstream indexing starts at the correct time.
        The flush span covers the whole window up to the announcement;
        ``trace_parent`` carries the wire context of the seal decision
        across the parked-seal deferral.
        """
        key = (collection, segment_id)
        segment = self._growing.pop(key, None)
        if segment is None or segment.num_rows == 0:
            return None
        parent = TraceContext.from_wire(trace_parent) \
            if trace_parent is not None else self._tracer.current()
        segment.seal()
        pks, columns, max_lsn = segment.flush_payload()
        # Drop rows deleted while growing so the binlog holds live data.
        deleted = segment.deleted_mask()
        if deleted.any():
            keep = [i for i in range(len(pks)) if not deleted[i]]
            pks = [pks[i] for i in keep]
            columns = {name: _take(values, keep)
                       for name, values in columns.items()}
        if not pks:
            return None
        write_ms = self._cost.object_write(
            sum(_nbytes(v) for v in columns.values()))
        channel_offset = self._channel_offsets.get(
            shard_channel(collection, shard), 0)
        flush_span = self._tracer.start_span(
            "data_node.flush", self._component, parent=parent,
            collection=collection, segment=segment_id, rows=len(pks))

        # Pipelined conversion: rows reach the binlog sink in fixed-size
        # chunks spread across the virtual write window, so the node
        # keeps draining WAL deliveries between steps instead of
        # stalling on a whole-segment conversion.  The final step writes
        # the manifest (the segment becomes readable atomically) and
        # announces — total virtual duration stays ``write_ms``.
        chunk_rows = max(1, self._config.log.binlog_chunk_rows)
        chunks = [list(range(start, min(start + chunk_rows, len(pks))))
                  for start in range(0, len(pks), chunk_rows)]
        step_ms = write_ms / len(chunks)
        sink = self._writer.open_segment(collection, segment_id)

        def convert(index: int) -> None:
            keep = chunks[index]
            sink.add_chunk([pks[i] for i in keep],
                           {name: _take(values, keep)
                            for name, values in columns.items()})
            if index + 1 < len(chunks):
                self._loop.call_after(
                    step_ms, lambda: convert(index + 1),
                    name=f"flush-chunk:{segment_id}")
                return
            manifest = sink.finish(max_lsn)
            self.segments_flushed += 1
            with self._tracer.activate(flush_span):
                self._broker.publish(
                    self._config.log.coord_channel, CoordRecord(
                        ts=max_lsn, kind_name="segment_flushed", payload={
                            "collection": collection,
                            "segment_id": segment_id,
                            "shard": shard,
                            "num_rows": manifest.num_rows,
                            "max_lsn": max_lsn,
                            "channel_offset": channel_offset,
                            "data_node": self.name,
                        }))
            self._tracer.finish_span(flush_span)

        self._loop.call_after(step_ms, lambda: convert(0),
                              name=f"flush-chunk:{segment_id}")
        if self._flush_hist is not None:
            self._flush_hist.observe(write_ms)
        return segment_id

    def growing_segments(self) -> list[tuple[str, str, int]]:
        """(collection, segment_id, rows) of in-memory growing segments."""
        return sorted((c, s, seg.num_rows)
                      for (c, s), seg in self._growing.items())

    def flush_backlog(self) -> int:
        """Work waiting to reach the object store: parked seals plus
        growing segments still accumulating rows (telemetry signal)."""
        return len(self._pending_seals) + len(self._growing)


def _take(values, keep: list[int]):
    if isinstance(values, np.ndarray):
        return values[keep]
    return [values[i] for i in keep]


def _nbytes(values) -> int:
    if isinstance(values, np.ndarray):
        return values.nbytes
    return sum(len(str(v)) for v in values)
