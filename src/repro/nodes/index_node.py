"""Index nodes: build indexes for sealed segments (Section 3.5).

An index node receives a build task from the index coordinator, loads only
the required vector column from the segment's binlog ("to avoid read
amplification"), builds the index, persists the blob to the object store,
and announces ``index_built`` on the coordination channel at the task's
virtual completion time — queueing delay plus read latency plus a build
duration from the cost model.  Figure 13 (build time vs data volume) and
Figure 6 (index backlog under write/index contention) both emerge from
this mechanism.

``busy_until_ms`` makes an index node a serial resource: tasks submitted
while it is busy complete later, which is exactly the contention Figure 6
demonstrates for Milvus's single combined write/index node.  Because
sealed segments are immutable, the numpy build itself runs eagerly at
submission; only its *announcement* is deferred to the virtual completion
time.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.config import ManuConfig
from repro.core.schema import MetricType
from repro.index.base import VectorIndex, create_index
from repro.log.binlog import BinlogReader
from repro.log.broker import LogBroker
from repro.log.wal import CoordRecord
from repro.sim.costmodel import CostModel
from repro.sim.events import EventLoop
from repro.storage.object_store import ObjectStore
from repro.tracing import NOOP_TRACER, TraceCollector


def index_blob_key(collection: str, segment_id: str, field: str) -> str:
    return f"index/{collection}/{segment_id}/{field}.idx"


def estimate_build_ms(cost: CostModel, index_type: str, n: int, dim: int,
                      params: Mapping) -> float:
    """Virtual build duration for an index build task."""
    index_type = index_type.upper()
    if index_type in ("HNSW", "NSG", "NGT", "IVF_HNSW"):
        ef = int(params.get("ef_construction", params.get("knn", 64)))
        return cost.graph_build(n, dim, ef=ef)
    if index_type in ("IVF_FLAT", "IVF_SQ8", "IMI", "SSD"):
        nlist = int(params.get("nlist", 128))
        return cost.kmeans_build(n, nlist, dim)
    if index_type in ("IVF_PQ", "PQ", "OPQ", "RQ"):
        nlist = int(params.get("nlist", 128))
        m = int(params.get("m", 8))
        return (cost.kmeans_build(n, nlist, dim)
                + cost.kmeans_build(n, 256, dim // max(m, 1)) * m)
    return cost.distance_cost(n, dim)  # FLAT and friends: one pass


class IndexNode:
    """One index-building worker."""

    def __init__(self, name: str, loop: EventLoop, broker: LogBroker,
                 store: ObjectStore, config: ManuConfig,
                 cost_model: CostModel,
                 tracer: Optional[TraceCollector] = None,
                 metrics=None) -> None:
        self.name = name
        self._loop = loop
        self._broker = broker
        self._store = store
        self._config = config
        self._cost = cost_model
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._component = f"index-node:{name}"
        self._reader = BinlogReader(store)
        self.busy_until_ms = 0.0
        self.builds_completed = 0
        self.alive = True
        # Optional repro.monitoring.MetricsRegistry (duck-typed): virtual
        # build duration (read + build) per submitted task.
        self._build_hist = None
        if metrics is not None:
            self._build_hist = metrics.histogram_family(
                "index_node_build", ("node",),
                help="index build duration (read + build)",
                unit="ms").labels(node=name)

    def queue_depth_ms(self) -> float:
        """Virtual time until this node is free (scheduling signal)."""
        return max(0.0, self.busy_until_ms - self._loop.now())

    def submit_build(self, collection: str, segment_id: str, field: str,
                     index_type: str, metric: MetricType,
                     params: Optional[Mapping] = None) -> float:
        """Build an index for one segment; returns virtual completion time."""
        if not self.alive:
            raise RuntimeError(f"index node {self.name} is shut down")
        params = dict(params or {})
        manifest = self._reader.read_manifest(collection, segment_id)
        vectors = np.asarray(
            self._reader.read_field(collection, segment_id, field),
            dtype=np.float32)

        index = create_index(index_type, metric, vectors.shape[1], **params)
        index.build(vectors)
        key = index_blob_key(collection, segment_id, field)
        self._store.put(key, index.to_bytes())
        self.builds_completed += 1

        start_ms = max(self._loop.now(), self.busy_until_ms)
        read_ms = self._cost.object_read(vectors.nbytes)
        build_ms = estimate_build_ms(self._cost, index_type,
                                     vectors.shape[0], vectors.shape[1],
                                     params)
        done_ms = start_ms + read_ms + build_ms
        self.busy_until_ms = done_ms
        # Parent = the ambient span at submission (typically the index
        # coordinator's delivery of ``segment_flushed``); the build span
        # covers the virtual [start, done] window, not submission time.
        build_span = self._tracer.start_span(
            "index_node.build", self._component, start_ms=start_ms,
            collection=collection, segment=segment_id, field=field,
            index_type=index.index_type)

        def announce() -> None:
            if not self.alive:
                return
            with self._tracer.activate(build_span):
                self._broker.publish(
                    self._config.log.coord_channel, CoordRecord(
                        ts=0, kind_name="index_built", payload={
                            "collection": collection,
                            "segment_id": segment_id,
                            "field": field,
                            "index_type": index.index_type,
                            "num_rows": manifest.num_rows,
                            "path": key,
                            "index_node": self.name,
                        }))
            self._tracer.finish_span(build_span, end_ms=done_ms)

        self._loop.call_at(done_ms, announce,
                           name=f"index-done:{segment_id}/{field}")
        if self._build_hist is not None:
            self._build_hist.observe(read_ms + build_ms)
        return done_ms

    def load_index(self, collection: str, segment_id: str,
                   field: str) -> VectorIndex:
        """Fetch a previously built index blob (helper for tests)."""
        from repro.index.base import index_from_bytes
        raw = self._store.get(index_blob_key(collection, segment_id, field))
        return index_from_bytes(raw)

    def shutdown(self) -> None:
        """Stop accepting/announcing work (idle-node cost saving)."""
        self._tracer.mark_incomplete(self._component)
        self.alive = False
