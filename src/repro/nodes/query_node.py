"""Query nodes: serve vector search (Section 3.6).

A query node draws data from the three sources the paper lists:

* the **WAL** — for shard channels the node *owns* it materializes growing
  segments (with temporary slice indexes) so fresh inserts are searchable
  within one log-delivery delay; from channels it does not own it consumes
  only deletions and time-ticks (deletions may target sealed segments it
  hosts, and ticks drive the consistency gate);
* **index files** — sealed-segment indexes built by index nodes, loaded
  from the object store and attached to the local segment copy;
* the **binlog** — sealed segments assigned by the query coordinator are
  loaded column-by-column from the object store.

Search runs the node-local phase of the two-phase reduce: segment-wise
top-k (honoring deletion bitmaps and attribute filters via the cost-based
strategy), merged into the node-wise top-k.  ``busy_until_ms`` accounting
turns concurrent requests into queueing delay, which is what the
elasticity and scalability figures measure.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import ManuConfig
from repro.core.checkpoint import read_delete_deltas
from repro.core.consistency import ConsistencyGate
from repro.core.expr import FilterExpression
from repro.core.filtering import FilterStrategy, filtered_search
from repro.core.multivector import MultiVectorQuery, search_segment
from repro.core.results import HitBatch, ReduceStats, merge_topk
from repro.core.schema import CollectionSchema, MetricType
from repro.core.segment import Segment
from repro.errors import ClusterStateError
from repro.index.base import SearchStats, index_from_bytes
from repro.log.binlog import BinlogReader
from repro.log.broker import LogBroker, LogEntry, Subscription
from repro.log.wal import (
    BatchRecord,
    DeleteRecord,
    InsertRecord,
    TimeTickRecord,
)
from repro.sim.costmodel import CostModel
from repro.sim.events import EventLoop
from repro.storage.object_store import ObjectStore
from repro.tracing import NOOP_TRACER, Span, TraceCollector


class QueryNode:
    """One search worker."""

    def __init__(self, name: str, loop: EventLoop, broker: LogBroker,
                 store: ObjectStore, config: ManuConfig,
                 cost_model: CostModel, schema_provider,
                 tracer: Optional[TraceCollector] = None,
                 metrics=None) -> None:
        self.name = name
        self._loop = loop
        self._broker = broker
        self._store = store
        self._config = config
        self._cost = cost_model
        self._schema_provider = schema_provider
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._component = f"query-node:{name}"
        self._reader = BinlogReader(store)

        self._subs: dict[str, Subscription] = {}
        self._owned_channels: set[str] = set()
        # (collection, segment_id) -> Segment; growing and sealed together.
        # ``_by_collection`` is the per-collection registry the request
        # path iterates, so one collection's search never scans another
        # collection's segment keys.
        self._segments: dict[tuple[str, str], Segment] = {}
        self._by_collection: dict[str, dict[str, Segment]] = {}
        self._growing_ids: set[tuple[str, str]] = set()
        # Growing segment -> its WAL shard, so a fenced channel handoff
        # can find (and release) exactly the old owner's copies.
        self._segment_shard: dict[tuple[str, str], int] = {}
        self._gates: dict[str, ConsistencyGate] = {}  # per collection
        # Deletions seen per collection: pk -> ts (applied to late loads).
        self._seen_deletes: dict[str, dict] = {}
        # Persisted delete-delta log, cached per collection so loading N
        # sealed segments reads the object store once, not N times;
        # invalidated whenever new deletions flow in from the WAL.
        self._delta_cache: dict[str, list[tuple[object, int]]] = {}
        self.busy_until_ms = 0.0
        self.searches_served = 0
        # Cumulative virtual service time of local search work; the
        # rebalancer's load reports and the skew bench read deltas of
        # this to measure per-node serving load.
        self.service_ms_total = 0.0
        self.alive = True
        # Optional repro.monitoring.MetricsRegistry (duck-typed): local
        # scan service time, labeled by node for cross-node comparison.
        self._scan_hist = None
        if metrics is not None:
            self._scan_hist = metrics.histogram_family(
                "query_node_scan", ("node",),
                help="node-local scan service time",
                unit="ms").labels(node=name)

    # ------------------------------------------------------------------
    # log consumption
    # ------------------------------------------------------------------

    def subscribe(self, collection: str, channel: str, owned: bool,
                  from_offset: int = 0) -> None:
        """Consume one WAL shard channel.

        ``owned`` channels materialize growing segments; non-owned channels
        contribute only deletions and the consistency watermark.
        """
        if channel in self._subs:
            if owned:
                self._owned_channels.add(channel)
            return
        if owned:
            self._owned_channels.add(channel)
        self._gates.setdefault(collection, ConsistencyGate())
        self._subs[channel] = self._broker.subscribe(
            channel, f"query-node:{self.name}", from_offset,
            callback=lambda entry, c=collection: self._on_entry(c, entry))

    def unsubscribe(self, channel: str) -> None:
        sub = self._subs.pop(channel, None)
        self._owned_channels.discard(channel)
        if sub is not None:
            sub.cancel()

    def disown_channel(self, channel: str) -> None:
        """Fence this node off a channel it owned.

        The subscription stays (deletions and time-ticks must keep
        applying everywhere) but post-fence inserts are no longer
        materialized — the migration target owns them now.  The node's
        existing growing copies keep serving until the coordinator
        releases them after the new owner catches up.
        """
        self._owned_channels.discard(channel)

    def channel_lag(self, channel: str) -> int:
        """Entries this node has not yet consumed on ``channel``."""
        sub = self._subs.get(channel)
        if sub is None:
            return 0
        return sub.lag()

    def channel_position(self, channel: str) -> int:
        """Next offset this node's subscription will consume."""
        sub = self._subs.get(channel)
        return sub.offset if sub is not None else 0

    def growing_of_shard(self, collection: str, shard: int) -> list[str]:
        """Growing segment ids this node built from one WAL shard."""
        return sorted(
            sid for (coll, sid) in self._growing_ids
            if coll == collection
            and self._segment_shard.get((coll, sid)) == shard)

    @property
    def owned_channels(self) -> set[str]:
        return set(self._owned_channels)

    def _on_entry(self, collection: str, entry: LogEntry) -> None:
        if not self.alive:
            return
        record = entry.payload
        gate = self._gates.setdefault(collection, ConsistencyGate())
        if isinstance(record, TimeTickRecord):
            gate.observe_tick(record.ts)
            return
        gate.observe(record.ts)
        if isinstance(record, BatchRecord):
            # One group-commit delivery, N logical records; the batch ts
            # (max inner LSN) moved the gate above, and each inner record
            # keeps its own LSN for the per-record replay guards.
            for inner in record.records:
                if isinstance(inner, InsertRecord):
                    if entry.channel in self._owned_channels:
                        self._apply_insert(inner)
                elif isinstance(inner, DeleteRecord):
                    self._apply_delete(collection, inner)
        elif isinstance(record, InsertRecord):
            if entry.channel in self._owned_channels:
                self._apply_insert(record)
        elif isinstance(record, DeleteRecord):
            self._apply_delete(collection, record)

    def _apply_insert(self, record: InsertRecord) -> None:
        key = (record.collection, record.segment_id)
        if key not in self._segments:
            schema: CollectionSchema = self._schema_provider(
                record.collection)
            segment = Segment(record.segment_id, record.collection, schema,
                              self._config.segment)
            segment.temp_index_enabled = \
                self._config.segment.enable_temp_index
            self._register(key, segment)
            self._growing_ids.add(key)
        self._segment_shard[key] = record.shard
        segment = self._segments[key]
        if record.ts <= segment.max_insert_lsn:
            return  # WAL replay of a batch this copy already holds
        segment.append(list(record.pks), dict(record.columns),
                       record.ts, now_ms=self._loop.now())

    def _apply_delete(self, collection: str, record: DeleteRecord) -> None:
        history = self._seen_deletes.setdefault(collection, {})
        for pk in record.pks:
            history[pk] = record.ts
        # New deletions may since have been flushed into the persisted
        # delta log too; drop the cached copy so late loads re-read it.
        self._delta_cache.pop(collection, None)
        for segment in self._by_collection.get(collection, {}).values():
            segment.apply_delete(record.pks, record.ts)

    # ------------------------------------------------------------------
    # segment management
    # ------------------------------------------------------------------

    def _register(self, key: tuple[str, str], segment: Segment) -> None:
        self._segments[key] = segment
        self._by_collection.setdefault(key[0], {})[key[1]] = segment

    def _unregister(self, key: tuple[str, str]) -> Optional[Segment]:
        removed = self._segments.pop(key, None)
        per_coll = self._by_collection.get(key[0])
        if per_coll is not None:
            per_coll.pop(key[1], None)
            if not per_coll:
                del self._by_collection[key[0]]
        return removed

    def load_segment(self, collection: str, segment_id: str) -> float:
        """Load a sealed segment from its binlog; returns load duration.

        Deletions consumed before the load are re-applied so late loads
        converge with live copies.
        """
        key = (collection, segment_id)
        if key in self._segments and key not in self._growing_ids:
            return 0.0
        with self._tracer.span("query_node.load_segment", self._component,
                               collection=collection, segment=segment_id):
            return self._load_segment(collection, segment_id)

    def _load_segment(self, collection: str, segment_id: str) -> float:
        key = (collection, segment_id)
        manifest = self._reader.read_manifest(collection, segment_id)
        columns = self._reader.read_fields(collection, segment_id,
                                           manifest.fields)
        schema: CollectionSchema = self._schema_provider(collection)
        segment = Segment(segment_id, collection, schema,
                          self._config.segment)
        segment.temp_index_enabled = False  # sealed data gets real indexes
        segment.append(list(manifest.pks), columns, manifest.max_lsn)
        segment.seal()
        history = self._seen_deletes.get(collection, {})
        late = [pk for pk, ts in history.items() if ts > manifest.max_lsn]
        if late:
            segment.apply_delete(late, max(history[pk] for pk in late))
        # Deletions that predate this node's log subscription live in the
        # persisted delete-delta logs (WAL retention may have dropped
        # them); re-apply any newer than the binlog's progress.  The log
        # is cached per collection so a bulk load of N segments costs one
        # object-store read, not N.
        deltas = self._delta_cache.get(collection)
        if deltas is None:
            deltas = read_delete_deltas(self._store, collection)
            self._delta_cache[collection] = deltas
        for pk, ts in deltas:
            if ts > manifest.max_lsn:
                segment.apply_delete([pk], ts)
        self._register(key, segment)
        self._growing_ids.discard(key)
        nbytes = sum(v.nbytes if isinstance(v, np.ndarray)
                     else sum(len(str(x)) for x in v)
                     for v in columns.values())
        return self._cost.object_read(nbytes)

    def release_segment(self, collection: str, segment_id: str) -> bool:
        """Drop a segment copy (handoff done, rebalance, or release)."""
        removed = self._unregister((collection, segment_id))
        self._growing_ids.discard((collection, segment_id))
        self._segment_shard.pop((collection, segment_id), None)
        return removed is not None

    def attach_index(self, collection: str, segment_id: str, field: str,
                     path: str) -> float:
        """Load an index blob and attach it; returns load duration."""
        key = (collection, segment_id)
        segment = self._segments.get(key)
        if segment is None:
            raise ClusterStateError(
                f"{self.name} does not hold segment {segment_id}")
        with self._tracer.span("query_node.attach_index", self._component,
                               collection=collection, segment=segment_id,
                               field=field):
            raw = self._store.get(path)
            index = index_from_bytes(raw)
            segment.attach_index(field, index)
        return self._cost.object_read(len(raw))

    def segments_of(self, collection: str) -> list[str]:
        return sorted(self._by_collection.get(collection, {}))

    def sealed_segments_of(self, collection: str) -> list[str]:
        return sorted(sid for sid in self._by_collection.get(collection, {})
                      if (collection, sid) not in self._growing_ids)

    def segment(self, collection: str, segment_id: str) -> Optional[Segment]:
        return self._segments.get((collection, segment_id))

    def holds_collection(self, collection: str) -> bool:
        """Whether any segment of the collection lives on this node."""
        return bool(self._by_collection.get(collection))

    def is_growing(self, collection: str, segment_id: str) -> bool:
        """Whether the local copy of a segment is still growing."""
        return (collection, segment_id) in self._growing_ids

    def num_rows(self, collection: Optional[str] = None) -> int:
        if collection is None:
            return sum(seg.num_rows for seg in self._segments.values())
        return sum(seg.num_rows
                   for seg in self._by_collection.get(collection,
                                                      {}).values())

    def memory_bytes(self) -> int:
        return sum(seg.memory_bytes() for seg in self._segments.values())

    # ------------------------------------------------------------------
    # consistency
    # ------------------------------------------------------------------

    def gate(self, collection: str) -> ConsistencyGate:
        return self._gates.setdefault(collection, ConsistencyGate())

    def ready(self, collection: str, guarantee_ts: int) -> bool:
        return self.gate(collection).ready(guarantee_ts)

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def _in_scope(self, key: tuple[str, str],
                  scope: Optional[set[str]]) -> bool:
        """Whether a local segment participates in a scoped search.

        ``scope`` is the proxy's replica plan: the sealed segment ids this
        node should cover (None = everything).  Growing segments are
        always in scope — they exist only on their channel's owner.
        """
        if scope is None or key in self._growing_ids:
            return True
        return key[1] in scope

    def _scoped_segments(self, collection: str,
                         scope: Optional[set[str]]) -> list[Segment]:
        """Local segments participating in a request, in segment-id order."""
        per_coll = self._by_collection.get(collection, {})
        return [segment for sid, segment in sorted(per_coll.items())
                if segment.num_rows > 0
                and self._in_scope((collection, sid), scope)]

    def search(self, collection: str, field: str, queries: np.ndarray,
               k: int, metric: MetricType,
               expr: Optional[FilterExpression] = None,
               forced_strategy: Optional[FilterStrategy] = None,
               scope: Optional[set[str]] = None,
               trace_span: Optional[Span] = None,
               profile=None, acc_stats: Optional[SearchStats] = None,
               ) -> tuple[list[HitBatch], float, int]:
        """Node-local two-phase reduce.

        Returns (per-query node-wise top-k :class:`HitBatch`es, virtual
        service duration from the cost model, number of segments
        searched).  Batches stay array-native end to end: segment scans
        hand back (pks, dists) ndarrays that are merged by concatenation
        and one stable sort per query — no per-hit objects.

        ``trace_span`` is the proxy's per-node scan span; when sampled,
        each segment scan is recorded as a child with its own cost-model
        window, laid end to end from the span's start (segments scan
        sequentially within one node).

        ``profile`` is this node's ``query_node.scan`` stage of a
        :class:`~repro.profiling.QueryProfile` (duck-typed; None on the
        untraced hot path).  Each segment scan becomes a ``segment.scan``
        child stage carrying the counter *delta* it contributed, and the
        node-local merge becomes a ``query_node.reduce`` child — the sum
        of segment counters equals the stage counters by construction.
        ``acc_stats`` accumulates this request's full
        :class:`SearchStats` for proxy-side cost metering.
        """
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[None, :]
        nq = queries.shape[0]
        traced = trace_span is not None and trace_span.sampled
        profiling = profile is not None
        dim = self._probe_dim()
        cursor_ms = trace_span.start_ms if traced else 0.0
        stats = SearchStats()
        per_query_partials: list[list[HitBatch]] = [
            [] for _ in range(nq)]
        searched = 0
        for segment in self._scoped_segments(collection, scope):
            f0, q0, b0 = (stats.float_comparisons,
                          stats.quantized_comparisons,
                          stats.ssd_blocks_read)
            before = stats.as_dict() if profiling else None
            results, _plan = filtered_search(segment, field, queries, k,
                                             metric, expr, stats=stats,
                                             forced=forced_strategy)
            searched += 1
            if profiling:
                delta = {key: value - before[key]
                         for key, value in stats.as_dict().items()}
                growing = (collection,
                           segment.segment_id) in self._growing_ids
                path = ("growing" if growing
                        else "index" if delta["index_scans"] > 0
                        else "brute")
                stage = profile.child("segment.scan",
                                      segment=segment.segment_id,
                                      path=path,
                                      rows=segment.num_rows)
                stage.counters = delta
            if traced:
                seg_ms = (self._cost.distance_cost(
                              stats.float_comparisons - f0, dim)
                          + self._cost.distance_cost(
                              stats.quantized_comparisons - q0, dim,
                              quantized=True)
                          + self._cost.ssd_read(
                              stats.ssd_blocks_read - b0))
                self._tracer.record_span(
                    "segment.scan", self._component,
                    parent=trace_span.context, start_ms=cursor_ms,
                    end_ms=cursor_ms + seg_ms, segment=segment.segment_id)
                cursor_ms += seg_ms
            for qi, batch in enumerate(results):
                if batch:
                    per_query_partials[qi].append(batch)
        reduce_stats = ReduceStats() if profiling else None
        merged = [merge_topk(parts, k, stats=reduce_stats)
                  for parts in per_query_partials]
        service_ms = self.service_time_ms(stats, nq)
        if profiling:
            profile.counters = stats.as_dict()
            profile.meta.update(service_ms=service_ms, segments=searched,
                                nq=nq)
            reduce_stage = profile.child("query_node.reduce")
            reduce_stage.counters = reduce_stats.as_dict()
        if acc_stats is not None:
            acc_stats.add(stats)
        if traced:
            reduce_ms = (self._cost.request_overhead_ms
                         + nq * self._cost.batch_row_overhead_ms)
            self._tracer.record_span(
                "query_node.reduce", self._component,
                parent=trace_span.context, start_ms=cursor_ms,
                end_ms=cursor_ms + reduce_ms, segments=searched)
        self.searches_served += nq
        self.service_ms_total += service_ms
        if self._scan_hist is not None:
            self._scan_hist.observe(service_ms)
        return merged, service_ms, searched

    def search_multivector(self, collection: str, query: MultiVectorQuery,
                           k: int, scope: Optional[set[str]] = None,
                           ) -> tuple[HitBatch, float, int]:
        """Node-local multi-vector search (single query vector set)."""
        stats = SearchStats()
        partials: list[HitBatch] = []
        searched = 0
        for segment in self._scoped_segments(collection, scope):
            batch = search_segment(segment, query, k, stats=stats)
            searched += 1
            if batch:
                partials.append(batch)
        merged = merge_topk(partials, k)
        return merged, self.service_time_ms(stats, 1), searched

    def range_search(self, collection: str, field: str, query: np.ndarray,
                     threshold: float, metric: MetricType,
                     expr: Optional[FilterExpression] = None,
                     scope: Optional[set[str]] = None,
                     ) -> tuple[HitBatch, float]:
        """All local rows within the adjusted-distance threshold."""
        from repro.core.filtering import compute_mask
        stats = SearchStats()
        partials: list[HitBatch] = []
        for segment in self._scoped_segments(collection, scope):
            mask = compute_mask(segment, expr) if expr is not None else None
            partials.append(segment.range_search(field, query, threshold,
                                                 metric, filter_mask=mask,
                                                 stats=stats))
        return HitBatch.concat(partials), self.service_time_ms(stats, 1)

    def fetch(self, collection: str, pks) -> dict:
        """Field values for the given pks held live on this node."""
        out: dict = {}
        per_coll = self._by_collection.get(collection, {})
        for _sid, segment in sorted(per_coll.items()):
            out.update(segment.fetch_rows(pks))
        return out

    def service_time_ms(self, stats: SearchStats, nq: int) -> float:
        """Virtual execution time of measured search work on this node.

        The fixed message overhead is paid once per (possibly batched)
        request plus a small per-row term — the amortization that makes
        Section 3.6's request batching worthwhile.
        """
        dim = self._probe_dim()
        return (self._cost.distance_cost(stats.float_comparisons, dim)
                + self._cost.distance_cost(stats.quantized_comparisons, dim,
                                           quantized=True)
                + self._cost.ssd_read(stats.ssd_blocks_read)
                + self._cost.request_overhead_ms
                + nq * self._cost.batch_row_overhead_ms)

    def _probe_dim(self) -> int:
        for segment in self._segments.values():
            fields = segment.schema.vector_fields
            if fields:
                return fields[0].dim
        return 64

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def fail(self) -> None:
        """Simulate a crash: stop consuming and drop all state."""
        self._tracer.mark_incomplete(self._component)
        self.alive = False
        for channel in list(self._subs):
            self.unsubscribe(channel)
        self._segments.clear()
        self._by_collection.clear()
        self._delta_cache.clear()
        self._growing_ids.clear()
        self._segment_shard.clear()
        self._gates.clear()
