"""Proxies: stateless user endpoints (Section 3.2).

Proxies validate requests against a cached copy of the metadata (rejecting
bad requests early), route inserts/deletes to the loggers and searches to
the query nodes holding the collection's segments, and aggregate partial
search results into the global top-k.

The proxy is also the *session* for session consistency: it remembers the
timestamp of the session's last write so ``ConsistencyLevel.SESSION``
queries read their own writes.

Timing: the proxy computes each request's virtual latency from rpc hops,
the delta-consistency wait (driving the event loop until every involved
query node's watermark passes the guarantee timestamp), per-node queueing
(``busy_until_ms``) and the cost-model service time of the measured search
work.  This is where the cluster's end-to-end latency numbers come from.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.config import ManuConfig
from repro.core.consistency import ConsistencyLevel, guarantee_ts
from repro.core.entity import validate_batch
from repro.core.expr import Const, Compare, Field, FilterExpression, InList
from repro.core.multivector import MultiVectorQuery
from repro.core.results import HitBatch, ReduceStats, SearchResult, \
    merge_topk
from repro.core.schema import MetricType
from repro.core.tso import TimestampOracle
from repro.errors import CollectionNotFound, ConsistencyTimeout, \
    ManuError, QuotaExceeded
from repro.index.base import SearchStats
from repro.log.logger_node import AckFuture, LoggerService
from repro.monitoring.metrics import MetricsRegistry
from repro.profiling import QueryProfile
from repro.tenancy import CostMeter
from repro.sim.costmodel import CostModel
from repro.sim.events import EventLoop
from repro.tracing import (
    NOOP_TRACER,
    SPAN_ERROR,
    SPAN_INCOMPLETE,
    TraceCollector,
)


class PendingSearch:
    """Handle for a search submitted to a proxy batch (future-like)."""

    __slots__ = ("result",)

    def __init__(self) -> None:
        self.result: Optional[SearchResult] = None

    @property
    def done(self) -> bool:
        return self.result is not None


class Proxy:
    """One access-layer endpoint."""

    def __init__(self, name: str, loop: EventLoop, tso: TimestampOracle,
                 config: ManuConfig, cost_model: CostModel,
                 logger_service: LoggerService, root_coord, query_coord,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[TraceCollector] = None,
                 tenants=None, admission=None,
                 cost_meter: Optional[CostMeter] = None,
                 slowlog=None) -> None:
        self.name = name
        self._loop = loop
        self._tso = tso
        self._config = config
        self._cost = cost_model
        self._loggers = logger_service
        self._root = root_coord
        self._query_coord = query_coord
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._component = f"proxy:{name}"
        # Metric handles are live objects; resolve them once instead of
        # rebuilding f-string names on every request.
        self._inserts_counter = self.metrics.counter(
            f"proxy.{name}.inserts")
        self._deletes_counter = self.metrics.counter(
            f"proxy.{name}.deletes")
        self._searches_counter = self.metrics.counter(
            f"proxy.{name}.searches")
        self._batched_counter = self.metrics.counter(
            f"proxy.{name}.batched_searches")
        self._search_latency = self.metrics.latency("proxy.search_latency")
        self._multivector_latency = self.metrics.latency(
            "proxy.multivector_latency")
        self._range_latency = self.metrics.latency(
            "proxy.range_search_latency")
        # Labeled histogram families: cumulative, mergeable across proxies
        # (the exposition endpoint serves both the per-proxy series and the
        # cluster aggregate, e.g. ``search_latency_p99``).
        self._search_hist = self.metrics.histogram_family(
            "search_latency", ("proxy",),
            help="end-to-end search latency", unit="ms").labels(proxy=name)
        self._wait_hist = self.metrics.histogram_family(
            "consistency_wait", ("proxy",),
            help="delta-consistency wait before fan-out",
            unit="ms").labels(proxy=name)
        self._merge_hist = self.metrics.histogram_family(
            "proxy_merge", ("proxy",),
            help="global top-k merge time", unit="ms").labels(proxy=name)
        # Multi-tenancy (duck-typed TenantRegistry / AdmissionController,
        # wired by the cluster): every tenant-scoped request is
        # namespaced and quota-admitted here, at the API boundary.
        self._tenants = tenants
        self._admission = admission
        self._tenant_requests = self.metrics.counter_family(
            "tenant_requests_total", ("tenant", "qos", "verb"),
            help="admitted tenant requests by verb")
        self._tenant_rejections = self.metrics.counter_family(
            "tenant_quota_rejections_total", ("tenant", "verb"),
            help="tenant requests rejected by quota buckets")
        # Cost accounting (DESIGN.md §6g): measured read/write units per
        # tenant, mirrored into labeled counter families for exposition.
        # The meter is usually the cluster-wide one so every proxy charges
        # the same ledger; a private meter keeps standalone proxies working.
        self._cost_meter = cost_meter if cost_meter is not None \
            else CostMeter()
        self._slowlog = slowlog
        self._read_units = self.metrics.counter_family(
            "tenant_read_units_total", ("tenant",),
            help="cumulative read units (rows scanned + bytes "
                 "materialized) charged per tenant")
        self._write_units = self.metrics.counter_family(
            "tenant_write_units_total", ("tenant",),
            help="cumulative write units (rows appended) charged "
                 "per tenant")
        #: physical collection -> queries served; the rebalancer's
        #: search-load attribution reads this (plain dict: the hot path
        #: stays family-lookup-free).
        self.search_counts: dict[str, int] = {}
        self._session_ts = 0
        # Request batching (Section 3.6): same-typed searches accumulated
        # within the configured window, executed as one batch.
        self._batches: dict[tuple, list[tuple[np.ndarray,
                                              PendingSearch]]] = {}
        # Batch key -> QoS dispatch priority (0 = first); tenant batches
        # flush gold before bronze when several windows expire together.
        self._batch_priority: dict[tuple, int] = {}
        self.batches_flushed = 0

    # ------------------------------------------------------------------
    # tenancy gate
    # ------------------------------------------------------------------

    def _tenant_resolve(self, tenant: str, collection: str) -> str:
        """Namespace + authorize a tenant request (API boundary)."""
        if self._tenants is None:
            raise ManuError("multi-tenancy is not enabled")
        return self._tenants.resolve(tenant, collection)

    def _tenant_admit(self, tenant: str, verb: str,
                      units: float = 1.0) -> None:
        """Charge the tenant's quota bucket; count the outcome.

        :class:`QuotaExceeded` (a per-tenant rejection, distinct from
        cluster overload) propagates to the caller after the rejection
        counter moved.
        """
        info = self._tenants.get(tenant)
        if self._admission is not None:
            try:
                self._admission.admit(tenant, verb, units)
            except QuotaExceeded:
                self._tenant_rejections.labels(
                    tenant=tenant, verb=verb).inc()
                raise
        self._tenant_requests.labels(
            tenant=tenant, qos=info.qos.value, verb=verb).inc()

    # ------------------------------------------------------------------
    # cost accounting
    # ------------------------------------------------------------------

    def _charge_read(self, tenant: str, stats: SearchStats) -> None:
        """Meter one search's measured scan work against the tenant."""
        units = self._cost_meter.charge_read(
            tenant, stats.rows_scanned, stats.bytes_materialized)
        self._read_units.labels(tenant=tenant).inc(units)

    def _charge_write(self, tenant: str, rows: int) -> None:
        """Meter one write's appended rows against the tenant."""
        units = self._cost_meter.charge_write(tenant, rows)
        self._write_units.labels(tenant=tenant).inc(units)

    # ------------------------------------------------------------------
    # metadata verification
    # ------------------------------------------------------------------

    def _schema(self, collection: str):
        """Cached-metadata verification: reject unknown collections early."""
        schema = self._root.get_schema(collection)
        if schema is None:
            raise CollectionNotFound(collection)
        return schema

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def insert(self, collection: str, data: Mapping,
               tenant: Optional[str] = None) -> tuple:
        """Validate and publish an insert; returns the assigned pks.

        With ``tenant`` the collection name is tenant-scoped and the
        rows are admitted against the tenant's insert-rate bucket.
        """
        if tenant is not None:
            collection = self._tenant_resolve(tenant, collection)
        schema = self._schema(collection)
        batch = validate_batch(schema, data)
        if tenant is not None:
            self._tenant_admit(tenant, "insert", units=batch.num_rows)
        with self._tracer.span("proxy.insert", self._component,
                               collection=collection, rows=batch.num_rows):
            lsn = self._loggers.insert(collection, batch)
        self._session_ts = max(self._session_ts, lsn)
        self._inserts_counter.inc(batch.num_rows)
        if tenant is not None:
            self._charge_write(tenant, batch.num_rows)
        return batch.pks

    def insert_async(self, collection: str, data: Mapping,
                     tenant: Optional[str] = None
                     ) -> tuple[tuple, "AckFuture"]:
        """Validate and buffer an insert into the loggers' commit groups.

        Returns ``(pks, ack)``: the assigned primary keys plus an
        :class:`~repro.log.logger_node.AckFuture` resolving with the
        durable batch LSN once the group commit flushed.  The session
        timestamp (read-your-writes) and the insert counter advance only
        at that point — an unacked write is not yet readable under
        session consistency.
        """
        if tenant is not None:
            collection = self._tenant_resolve(tenant, collection)
        schema = self._schema(collection)
        batch = validate_batch(schema, data)
        if tenant is not None:
            self._tenant_admit(tenant, "insert", units=batch.num_rows)
        # No per-submit span: buffering is a local memory append, and a
        # span per call would defeat the amortisation this path exists
        # for.  The flush's "logger.publish_batch" span is the traced
        # unit and carries the coalesced row count.
        ack = self._loggers.insert_async(collection, batch)

        def _on_ack(future: "AckFuture") -> None:
            self._session_ts = max(self._session_ts, future.result())
            self._inserts_counter.inc(batch.num_rows)
            if tenant is not None:
                self._charge_write(tenant, batch.num_rows)

        ack.add_done_callback(_on_ack)
        return batch.pks, ack

    def delete(self, collection: str, expr: str,
               tenant: Optional[str] = None) -> int:
        """Delete by primary-key expression; returns the deleted count.

        Like Milvus 2.0, deletion expressions must address primary keys
        directly (``pk in [1, 2]`` or ``pk == 3``).
        """
        if tenant is not None:
            collection = self._tenant_resolve(tenant, collection)
        schema = self._schema(collection)
        pks = _extract_pks(FilterExpression(expr),
                           schema.primary_field.name)
        if tenant is not None:
            self._tenant_admit(tenant, "delete", units=len(pks))
        with self._tracer.span("proxy.delete", self._component,
                               collection=collection, keys=len(pks)):
            lsn, deleted = self._loggers.delete(collection, tuple(pks))
        self._session_ts = max(self._session_ts, lsn)
        self._deletes_counter.inc(deleted)
        return deleted

    def delete_async(self, collection: str, expr: str) -> "AckFuture":
        """Buffer a delete into the loggers' commit groups.

        The returned :class:`~repro.log.logger_node.AckFuture` resolves
        with the durable batch LSN; its ``rows`` reports how many keys
        existed at flush time.  Session timestamp and the delete counter
        advance on resolution.
        """
        schema = self._schema(collection)
        pks = _extract_pks(FilterExpression(expr),
                           schema.primary_field.name)
        # Unspanned for the same reason as insert_async: the flush owns
        # the span.
        ack = self._loggers.delete_async(collection, tuple(pks))

        def _on_ack(future: "AckFuture") -> None:
            self._session_ts = max(self._session_ts, future.result())
            self._deletes_counter.inc(future.rows)

        ack.add_done_callback(_on_ack)
        return ack

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def search(self, collection: str, queries: np.ndarray, k: int,
               field: Optional[str] = None,
               metric: MetricType = MetricType.EUCLIDEAN,
               expr: Optional[str] = None,
               consistency: ConsistencyLevel = ConsistencyLevel.BOUNDED,
               staleness_ms: float = 100.0,
               at_ms: Optional[float] = None,
               tenant: Optional[str] = None,
               explain: bool = False) -> list[SearchResult]:
        """Global top-k search; one :class:`SearchResult` per query row.

        With ``explain=True`` every returned result carries the request's
        :class:`~repro.profiling.QueryProfile` — the EXPLAIN ANALYZE work
        ledger — in ``result.profile``.  A profile is also built (but not
        returned) when the slow-query log is armed, so offenders are
        captured with full per-stage counters; with neither, the hot path
        allocates no profile objects at all.
        """
        if tenant is not None:
            collection = self._tenant_resolve(tenant, collection)
        schema = self._schema(collection)
        if field is None:
            field = schema.default_vector_field().name
        schema.field(field)  # validates existence
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[None, :]
        if tenant is not None:
            self._tenant_admit(tenant, "search",
                               units=float(queries.shape[0]))
        filter_expr = FilterExpression(expr) if expr else None
        # Request-wide scan work, accumulated across the node fan-out for
        # cost metering (always cheap: one SearchStats, no tree).
        req_stats = SearchStats()
        want_profile = explain or (self._slowlog is not None
                                   and self._slowlog.enabled)
        prof = QueryProfile(collection, nq=int(queries.shape[0]),
                            k=k) if want_profile else None

        if at_ms is not None:
            self._loop.run_until(at_ms)
        issue_ms = self._loop.now()
        issue_ts = self._tso.allocate_packed()
        guarantee = guarantee_ts(consistency, issue_ts, staleness_ms,
                                 self._session_ts)

        # The root span covers [issue, done]; it is finished with the
        # *computed* done time, so it is opened by hand rather than with
        # the context-manager helper (which would stamp the clock's value
        # at block exit).  The try/finally still closes it as an error
        # span if anything below raises (e.g. a consistency timeout).
        root = self._tracer.start_span(
            "proxy.search", self._component, start_ms=issue_ms,
            collection=collection, k=k, nq=int(queries.shape[0]))
        try:
            with self._tracer.activate(root):
                plan = self._query_coord.search_plan(collection)
                if not plan:
                    raise ManuError(
                        f"collection {collection!r} is not loaded on any "
                        f"query node")
                nodes = [node for node, _scope in plan]

                wait_ms = self._wait_for_consistency(collection, nodes,
                                                     guarantee)
                ready_ms = self._loop.now()

                per_query_partials = [[] for _ in range(queries.shape[0])]
                finish_times = []
                segments_total = 0
                for node, scope in plan:
                    start = max(ready_ms + self._cost.rpc_hop(),
                                node.busy_until_ms)
                    nspan = self._tracer.start_span(
                        "query_node.scan", f"query-node:{node.name}",
                        parent=root.context, start_ms=ready_ms)
                    node_stage = prof.node_stage(node.name) \
                        if prof is not None else None
                    hits, service_ms, searched = node.search(
                        collection, field, queries, k, metric, filter_expr,
                        scope=scope, trace_span=nspan,
                        profile=node_stage, acc_stats=req_stats)
                    node.busy_until_ms = start + service_ms
                    if node_stage is not None:
                        node_stage.meta["queue_ms"] = start - ready_ms
                    nspan.tags.update(queue_ms=start - ready_ms,
                                      service_ms=service_ms,
                                      segments=searched)
                    self._tracer.finish_span(nspan,
                                             end_ms=node.busy_until_ms)
                    finish_times.append(node.busy_until_ms)
                    segments_total += searched
                    for qi, node_hits in enumerate(hits):
                        per_query_partials[qi].append(node_hits)

                merge_ms = self._cost.topk_merge_cost(len(nodes), k)
                done_ms = max(finish_times) + merge_ms \
                    + self._cost.rpc_hop()
                latency = done_ms - issue_ms
                self._tracer.record_span(
                    "proxy.merge", self._component, parent=root.context,
                    start_ms=max(finish_times), end_ms=done_ms,
                    nodes=len(nodes))
                self._tracer.finish_span(root, end_ms=done_ms)

                trace_id = root.trace_id if root.sampled else None
                if prof is not None:
                    proxy_reduce = ReduceStats()
                else:
                    proxy_reduce = None
                results = []
                for parts in per_query_partials:
                    # Partials stay array-native through the global merge;
                    # hits only become SearchHit objects at the
                    # SearchResult boundary.
                    hits = merge_topk(parts, k, stats=proxy_reduce)
                    results.append(SearchResult(
                        hits=hits.to_hits(), metric=metric,
                        latency_ms=latency, consistency_wait_ms=wait_ms,
                        segments_searched=segments_total,
                        profile=prof if explain else None))
                if prof is not None:
                    prof.finalize(latency_ms=latency, wait_ms=wait_ms,
                                  merge_ms=merge_ms, nodes=len(nodes),
                                  segments=segments_total,
                                  merge_counters=proxy_reduce.as_dict(),
                                  trace_id=trace_id)
                    if self._slowlog is not None:
                        self._slowlog.observe(self._loop.now(), prof)
                if tenant is not None:
                    self._charge_read(tenant, req_stats)
                self._search_latency.record(self._loop.now(), latency)
                # The latency observation carries the trace id as an
                # exemplar: a histogram bucket is one hop from a concrete
                # sampled request that landed in it.
                self._search_hist.observe(latency, exemplar=trace_id)
                self._wait_hist.observe(wait_ms)
                self._merge_hist.observe(merge_ms)
                self._searches_counter.inc(queries.shape[0])
                self.search_counts[collection] = \
                    self.search_counts.get(collection, 0) \
                    + int(queries.shape[0])
                return results
        finally:
            if root.end_ms is None:
                self._tracer.finish_span(root, status=SPAN_ERROR)

    def search_multivector(self, collection: str, query: MultiVectorQuery,
                           k: int,
                           consistency: ConsistencyLevel =
                           ConsistencyLevel.BOUNDED,
                           staleness_ms: float = 100.0) -> SearchResult:
        """Multi-vector entity search (Section 3.6)."""
        self._schema(collection)
        issue_ms = self._loop.now()
        issue_ts = self._tso.allocate_packed()
        guarantee = guarantee_ts(consistency, issue_ts, staleness_ms,
                                 self._session_ts)
        root = self._tracer.start_span(
            "proxy.search_multivector", self._component, start_ms=issue_ms,
            collection=collection, k=k, fields=len(query.fields))
        try:
            with self._tracer.activate(root):
                plan = self._query_coord.search_plan(collection)
                if not plan:
                    raise ManuError(
                        f"collection {collection!r} is not loaded on any "
                        f"query node")
                nodes = [node for node, _scope in plan]
                wait_ms = self._wait_for_consistency(collection, nodes,
                                                     guarantee)
                ready_ms = self._loop.now()

                partials = []
                finish_times = []
                segments_total = 0
                for node, scope in plan:
                    start = max(ready_ms + self._cost.rpc_hop(),
                                node.busy_until_ms)
                    hits, service_ms, searched = node.search_multivector(
                        collection, query, k, scope=scope)
                    node.busy_until_ms = start + service_ms
                    self._tracer.record_span(
                        "query_node.scan", f"query-node:{node.name}",
                        parent=root.context, start_ms=ready_ms,
                        end_ms=node.busy_until_ms, segments=searched)
                    finish_times.append(node.busy_until_ms)
                    segments_total += searched
                    partials.append(hits)
                merge_ms = self._cost.topk_merge_cost(len(nodes), k)
                done_ms = max(finish_times) + merge_ms \
                    + self._cost.rpc_hop()
                latency = done_ms - issue_ms
                self._tracer.record_span(
                    "proxy.merge", self._component, parent=root.context,
                    start_ms=max(finish_times), end_ms=done_ms,
                    nodes=len(nodes))
                self._tracer.finish_span(root, end_ms=done_ms)
                self._multivector_latency.record(self._loop.now(), latency)
                self._wait_hist.observe(wait_ms)
                self._merge_hist.observe(merge_ms)
                return SearchResult(hits=merge_topk(partials, k).to_hits(),
                                    metric=query.metric,
                                    latency_ms=latency,
                                    consistency_wait_ms=wait_ms,
                                    segments_searched=segments_total)
        finally:
            if root.end_ms is None:
                self._tracer.finish_span(root, status=SPAN_ERROR)

    # ------------------------------------------------------------------
    # point reads, upsert, range search
    # ------------------------------------------------------------------

    def get(self, collection: str, pks,
            tenant: Optional[str] = None) -> dict:
        """Fetch live entities' field values by primary key.

        Returns pk -> {field: value} for found keys; missing keys are
        omitted.  Served from the query nodes' live copies.
        """
        if tenant is not None:
            collection = self._tenant_resolve(tenant, collection)
            self._tenant_admit(tenant, "get")
        self._schema(collection)
        out: dict = {}
        for node, scope in self._query_coord.search_plan(collection):
            del scope  # point reads hit any live copy; dedup via dict
            out.update(node.fetch(collection, pks))
        return out

    def upsert(self, collection: str, data: Mapping,
               tenant: Optional[str] = None) -> tuple:
        """Delete-any-existing then insert (explicit-pk schemas only)."""
        if tenant is not None:
            collection = self._tenant_resolve(tenant, collection)
        schema = self._schema(collection)
        if schema.auto_id:
            raise ManuError(
                "upsert requires an explicit primary key schema")
        batch = validate_batch(schema, data)
        if tenant is not None:
            self._tenant_admit(tenant, "upsert", units=batch.num_rows)
        with self._tracer.span("proxy.upsert", self._component,
                               collection=collection, rows=batch.num_rows):
            lsn, _deleted = self._loggers.delete(collection, batch.pks)
            self._session_ts = max(self._session_ts, lsn)
            lsn = self._loggers.insert(collection, batch)
            self._session_ts = max(self._session_ts, lsn)
        if tenant is not None:
            self._charge_write(tenant, batch.num_rows)
        return batch.pks

    def range_search(self, collection: str, query: np.ndarray,
                     radius: float, field: Optional[str] = None,
                     metric: MetricType = MetricType.EUCLIDEAN,
                     expr: Optional[str] = None,
                     consistency: ConsistencyLevel =
                     ConsistencyLevel.BOUNDED,
                     staleness_ms: float = 100.0,
                     limit: Optional[int] = None) -> SearchResult:
        """All entities within ``radius`` of the query (exact).

        ``radius`` is expressed in the metric's own terms: a maximum L2
        distance for Euclidean, a *minimum* similarity for inner product
        and cosine.
        """
        schema = self._schema(collection)
        if field is None:
            field = schema.default_vector_field().name
        schema.field(field)
        if metric is MetricType.EUCLIDEAN:
            if radius < 0:
                raise ManuError("Euclidean radius must be non-negative")
            threshold = float(radius) ** 2  # adjusted = squared L2
        else:
            threshold = -float(radius)      # adjusted = negated similarity
        filter_expr = FilterExpression(expr) if expr else None
        query = np.asarray(query, dtype=np.float32).reshape(-1)

        issue_ms = self._loop.now()
        issue_ts = self._tso.allocate_packed()
        guarantee = guarantee_ts(consistency, issue_ts, staleness_ms,
                                 self._session_ts)
        root = self._tracer.start_span(
            "proxy.range_search", self._component, start_ms=issue_ms,
            collection=collection, radius=float(radius))
        try:
            with self._tracer.activate(root):
                plan = self._query_coord.search_plan(collection)
                if not plan:
                    raise ManuError(
                        f"collection {collection!r} is not loaded on any "
                        f"query node")
                wait_ms = self._wait_for_consistency(
                    collection, [n for n, _s in plan], guarantee)
                ready_ms = self._loop.now()

                partials: list[HitBatch] = []
                finish_times = []
                for node, scope in plan:
                    start = max(ready_ms + self._cost.rpc_hop(),
                                node.busy_until_ms)
                    batch, service_ms = node.range_search(
                        collection, field, query, threshold, metric,
                        expr=filter_expr, scope=scope)
                    node.busy_until_ms = start + service_ms
                    self._tracer.record_span(
                        "query_node.scan", f"query-node:{node.name}",
                        parent=root.context, start_ms=ready_ms,
                        end_ms=node.busy_until_ms, hits=len(batch))
                    finish_times.append(node.busy_until_ms)
                    partials.append(batch)
                # merge_topk dedups replica copies (best hit per pk); with
                # no limit the "k" is the total candidate count, i.e. keep
                # everything.
                k_eff = limit if limit is not None \
                    else sum(len(b) for b in partials)
                ordered = merge_topk(partials, k_eff).to_hits()
                done_ms = max(finish_times) + self._cost.rpc_hop()
                latency = done_ms - issue_ms
                self._tracer.record_span(
                    "proxy.merge", self._component, parent=root.context,
                    start_ms=max(finish_times), end_ms=done_ms,
                    nodes=len(plan))
                self._tracer.finish_span(root, end_ms=done_ms)
                self._range_latency.record(self._loop.now(), latency)
                self._wait_hist.observe(wait_ms)
                return SearchResult(hits=ordered, metric=metric,
                                    latency_ms=latency,
                                    consistency_wait_ms=wait_ms,
                                    segments_searched=len(plan))
        finally:
            if root.end_ms is None:
                self._tracer.finish_span(root, status=SPAN_ERROR)

    # ------------------------------------------------------------------
    # request batching (Section 3.6)
    # ------------------------------------------------------------------

    def submit_search(self, collection: str, query: np.ndarray, k: int,
                      field: Optional[str] = None,
                      metric: MetricType = MetricType.EUCLIDEAN,
                      expr: Optional[str] = None,
                      consistency: ConsistencyLevel =
                      ConsistencyLevel.BOUNDED,
                      staleness_ms: float = 100.0,
                      tenant: Optional[str] = None) -> PendingSearch:
        """Queue one search into the batching window; returns a handle.

        "Requests of the same type (i.e., target the same collection and
        use the same similarity function) are organized into one batch and
        handled by Manu together."  The batch flushes when the configured
        ``batch_window_ms`` elapses; with batching disabled (window 0) the
        search executes immediately.  Drive the event loop (or call
        :meth:`flush_batches`) to resolve handles.

        With ``tenant`` the request is namespaced and quota-admitted at
        submit time, and its batch is dispatched at the QoS class's
        priority: when several windows expire together (or
        :meth:`flush_batches` drains them), gold batches execute before
        bronze ones, so a backlog queues behind gold, not ahead of it.
        """
        priority = 0
        if tenant is not None:
            collection = self._tenant_resolve(tenant, collection)
            self._tenant_admit(tenant, "search")
            if self._admission is not None:
                priority = self._admission.priority(tenant)
        handle = PendingSearch()
        query = np.asarray(query, dtype=np.float32).reshape(1, -1)
        window = self._config.query.batch_window_ms
        if window <= 0:
            handle.result = self.search(
                collection, query, k, field=field, metric=metric,
                expr=expr, consistency=consistency,
                staleness_ms=staleness_ms)[0]
            return handle
        key = (collection, field, metric, expr, consistency, staleness_ms,
               k)
        batch = self._batches.setdefault(key, [])
        self._batch_priority[key] = priority
        batch.append((query, handle))
        if len(batch) == 1:
            self._loop.call_after(window, lambda: self._flush_batch(key),
                                  name=f"batch-flush:{collection}")
        return handle

    def _flush_batch(self, key: tuple) -> None:
        batch = self._batches.pop(key, None)
        self._batch_priority.pop(key, None)
        if not batch:
            return
        (collection, field, metric, expr, consistency, staleness_ms,
         k) = key
        queries = np.concatenate([q for q, _h in batch], axis=0)
        # The window timer fires inside whatever frame steps the clock;
        # detach so the batched search roots its own trace.
        with self._tracer.detached():
            results = self.search(collection, queries, k, field=field,
                                  metric=metric, expr=expr,
                                  consistency=consistency,
                                  staleness_ms=staleness_ms)
        for (_q, handle), result in zip(batch, results):
            handle.result = result
        self.batches_flushed += 1
        self._batched_counter.inc(len(batch))

    def flush_batches(self) -> int:
        """Force-flush all pending batches; returns requests flushed.

        Batches drain in QoS priority order — scheduling priority is
        where a tenant's class bites: gold work executes (and claims the
        nodes' ``busy_until`` windows) before silver and bronze.
        """
        flushed = 0
        for key in sorted(self._batches,
                          key=lambda key: (
                              self._batch_priority.get(key, 0),
                              str(key))):
            flushed += len(self._batches.get(key, ()))
            self._flush_batch(key)
        return flushed

    def _wait_for_consistency(self, collection: str, nodes: Sequence,
                              guarantee: int) -> float:
        """Drive the loop until every node's watermark passes the guarantee.

        Returns the virtual wait duration; raises
        :class:`ConsistencyTimeout` past the configured deadline.
        """
        start_ms = self._loop.now()
        deadline = start_ms + self._config.query.consistency_deadline_ms
        with self._tracer.span("proxy.consistency_wait", self._component,
                               guarantee=guarantee) as wspan:
            # One wait_ready span per node that is behind the guarantee,
            # closed as its watermark catches up.  On timeout the spans
            # still open are flagged incomplete (a node killed mid-wait is
            # closed by its own fail() first; finish_span is idempotent).
            waiting: dict[str, object] = {}
            while True:
                pending = [n for n in nodes
                           if not n.ready(collection, guarantee)]
                for node in pending:
                    if node.name not in waiting:
                        waiting[node.name] = self._tracer.start_span(
                            "query_node.wait_ready",
                            f"query-node:{node.name}",
                            parent=wspan.context, guarantee=guarantee)
                pending_names = {n.name for n in pending}
                for name in list(waiting):
                    if name not in pending_names:
                        self._tracer.finish_span(waiting.pop(name))
                if not pending:
                    return self._loop.now() - start_ms
                nxt = self._loop.peek_time()
                if nxt is None or nxt > deadline:
                    for span in waiting.values():
                        self._tracer.finish_span(span,
                                                 status=SPAN_INCOMPLETE)
                    raise ConsistencyTimeout(
                        f"nodes {[n.name for n in pending]} did not reach "
                        f"guarantee ts within "
                        f"{self._config.query.consistency_deadline_ms}ms")
                self._loop.step()


def _extract_pks(expr: FilterExpression, pk_field: str) -> list:
    """Primary keys addressed by a delete expression."""
    ast = expr.ast
    if isinstance(ast, InList) and isinstance(ast.operand, Field) \
            and ast.operand.name == pk_field and not ast.negated:
        return list(ast.items)
    if isinstance(ast, Compare) and len(ast.operands) == 2 \
            and ast.ops == ("==",):
        left, right = ast.operands
        if isinstance(left, Field) and left.name == pk_field \
                and isinstance(right, Const):
            return [right.value]
        if isinstance(right, Field) and right.name == pk_field \
                and isinstance(left, Const):
            return [left.value]
    raise ManuError(
        "delete expressions must address the primary key, e.g. "
        f"'{pk_field} in [1, 2]' or '{pk_field} == 3' (got {expr.text!r})")
