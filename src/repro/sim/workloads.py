"""Workload generators for the evaluation scenarios.

* :func:`diurnal_traffic` — the Figure 9 search-traffic curve: a one-day
  e-commerce pattern with a deep night valley, an evening peak and sharp
  promotional spikes (the original Taobao trace is not redistributable;
  the statistics are documented here);
* :class:`InsertDriver` — fixed-rate insert load (Figure 6's "insert
  vectors at a fixed rate");
* :class:`SearchDriver` — issues searches at scheduled arrival times and
  records per-request latency curves;
* :func:`poisson_arrivals` — arrival-time generation for open-loop load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.cluster.manu import ManuCluster
from repro.core.consistency import ConsistencyLevel
from repro.core.schema import MetricType


def diurnal_traffic(hours: np.ndarray, base_qps: float = 40.0,
                    peak_qps: float = 400.0,
                    promo_hours: tuple[float, ...] = (10.0, 20.0),
                    promo_boost: float = 1.8) -> np.ndarray:
    """QPS at each hour-of-day: night valley, evening peak, promo spikes.

    Shape: minimum around 4am at ``base_qps``, smooth rise through the day,
    maximum around 9pm near ``peak_qps``; promotional events multiply
    traffic briefly ("very high at promotion events").
    """
    hours = np.asarray(hours, dtype=np.float64)
    # Peak at 21:00, deep valley around 9:00 on the opposite phase.
    peak_phase = (hours - 21.0) / 24.0 * 2.0 * np.pi
    smooth = 0.5 * (1.0 + np.cos(peak_phase)) ** 1.5
    qps = base_qps + (peak_qps - base_qps) * smooth
    for promo in promo_hours:
        bump = np.exp(-0.5 * ((hours - promo) / 0.35) ** 2)
        qps *= 1.0 + (promo_boost - 1.0) * bump
    return qps


def poisson_arrivals(rate_per_s: float, duration_ms: float,
                     rng: np.random.Generator,
                     start_ms: float = 0.0) -> np.ndarray:
    """Open-loop Poisson arrival times (ms) over a window."""
    if rate_per_s <= 0:
        return np.empty(0)
    expected = rate_per_s * duration_ms / 1000.0
    count = rng.poisson(expected)
    times = rng.uniform(start_ms, start_ms + duration_ms, size=count)
    return np.sort(times)


@dataclass
class InsertDriver:
    """Schedules fixed-rate inserts of dataset rows onto the event loop."""

    cluster: ManuCluster
    collection: str
    vectors: np.ndarray
    rate_per_s: float
    batch_size: int = 50
    inserted: int = 0
    _cursor: int = 0

    def start(self, duration_ms: float) -> None:
        """Schedule periodic insert batches for ``duration_ms``."""
        if self.rate_per_s <= 0:
            return
        interval_ms = self.batch_size / self.rate_per_s * 1000.0
        t = self.cluster.now() + interval_ms
        end = self.cluster.now() + duration_ms
        while t <= end and self._cursor < len(self.vectors):
            start_row = self._cursor
            stop_row = min(start_row + self.batch_size, len(self.vectors))
            self._cursor = stop_row
            self.cluster.loop.call_at(
                t, self._make_insert(start_row, stop_row),
                name="insert-driver")
            t += interval_ms

    def _make_insert(self, start_row: int, stop_row: int
                     ) -> Callable[[], None]:
        def do_insert() -> None:
            # Driver events fire inside whatever frame steps the clock;
            # each insert roots its own trace.
            with self.cluster.tracer.detached():
                self.cluster.insert(
                    self.collection,
                    {"vector": self.vectors[start_row:stop_row]})
            self.inserted += stop_row - start_row
        return do_insert


@dataclass
class SearchDriver:
    """Issues searches at given virtual times, recording latencies."""

    cluster: ManuCluster
    collection: str
    queries: np.ndarray
    k: int = 50
    metric: MetricType = MetricType.EUCLIDEAN
    consistency: ConsistencyLevel = ConsistencyLevel.EVENTUAL
    staleness_ms: float = 1_000.0
    times_ms: list[float] = field(default_factory=list)
    latencies_ms: list[float] = field(default_factory=list)
    _rng: Optional[np.random.Generator] = None

    def run_at(self, arrival_times_ms: np.ndarray) -> None:
        """Execute searches at the arrival times, in order.

        Each call advances virtual time to the arrival (running all
        scheduled inserts/flushes/builds in between), then executes the
        search with queueing on the query nodes.
        """
        rng = self._rng or np.random.default_rng(123)
        self._rng = rng
        for at in np.sort(np.asarray(arrival_times_ms, dtype=np.float64)):
            query = self.queries[int(rng.integers(len(self.queries)))]
            results = self.cluster.search(
                self.collection, query, self.k, metric=self.metric,
                consistency=self.consistency,
                staleness_ms=self.staleness_ms,
                at_ms=float(at))
            self.times_ms.append(float(self.cluster.now()))
            self.latencies_ms.append(results[0].latency_ms)

    def mean_latency(self) -> float:
        return float(np.mean(self.latencies_ms)) if self.latencies_ms \
            else float("nan")
