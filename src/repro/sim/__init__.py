"""Discrete-event simulation substrate.

The whole cluster runs on a virtual clock so that every timing experiment in
the paper (mixed workloads, elasticity, consistency waits) is deterministic
and host-independent.  The substrate has three parts:

* :mod:`repro.sim.clock` — the virtual clock;
* :mod:`repro.sim.events` — the event loop scheduling callbacks at virtual
  times, with stable FIFO ordering for simultaneous events;
* :mod:`repro.sim.costmodel` — maps operations (distance computations, object
  store reads, index builds) to virtual durations, calibrated against real
  numpy kernel measurements.
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import EventLoop, Event
from repro.sim.costmodel import CostModel

__all__ = ["VirtualClock", "EventLoop", "Event", "CostModel"]
