"""Operation cost model: maps work to virtual milliseconds.

The timing experiments of the paper (Figures 6, 8-13) depend on how long
operations take relative to one another: a brute-force scan of ``n`` vectors
must cost ~``n * dim`` distance computations, an object-store read must pay a
fixed latency plus size over bandwidth, and so on.  The :class:`CostModel`
encodes those relationships with explicit per-unit constants.

Defaults are calibrated to a mid-range 2020s x86 core running numpy kernels
(~1e9 multiply-accumulate per second effective for batched float32 work) so
the absolute virtual numbers land in the same order of magnitude as the
paper's EC2 ``m5.4xlarge`` measurements.  ``CostModel.calibrated()`` measures
the host's real numpy throughput instead, for users who want virtual time to
track their machine.

All methods return durations in virtual milliseconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class CostModel:
    """Per-unit cost constants (all milliseconds unless noted)."""

    mac_per_ms: float = 1.0e6
    """Multiply-accumulate operations per virtual millisecond (distance
    kernels); one float32 distance over ``dim`` dimensions costs ``dim``
    MACs."""

    quantized_speedup: float = 4.0
    """How much faster table-lookup (PQ/SQ) comparisons are than float32."""

    rpc_latency_ms: float = 0.2
    """One network hop between components (proxy -> query node, etc.)."""

    request_overhead_ms: float = 0.1
    """Fixed per-message parsing/dispatch cost at each component; batched
    requests pay it once per batch (Section 3.6 request batching)."""

    batch_row_overhead_ms: float = 0.01
    """Marginal per-row serialization cost inside a batched message."""

    object_store_latency_ms: float = 20.0
    """First-byte latency of an object-store request (S3-like)."""

    object_store_mb_per_ms: float = 0.4
    """Object-store streaming bandwidth (400 MB/s)."""

    ssd_block_read_ms: float = 0.08
    """One 4 KB-aligned SSD block read (~100 us NVMe random read)."""

    disk_block_read_ms: float = 0.8
    """One block read on an HDD-class disk (ES-like baseline, 10x slower)."""

    kmeans_iter_factor: float = 3.0
    """k-means builds cost ``iters * n * k * dim`` MACs times this factor."""

    graph_build_factor: float = 6.0
    """Graph (HNSW/NSG) builds cost ``n * ef * dim`` MACs times this factor."""

    # ------------------------------------------------------------------
    # search-side costs
    # ------------------------------------------------------------------

    def distance_cost(self, n_comparisons: int, dim: int,
                      quantized: bool = False) -> float:
        """Cost of computing ``n_comparisons`` distances in ``dim`` dims."""
        macs = float(n_comparisons) * float(dim)
        rate = self.mac_per_ms * (self.quantized_speedup if quantized else 1.0)
        return macs / rate

    def topk_merge_cost(self, n_lists: int, k: int) -> float:
        """Cost of merging ``n_lists`` sorted top-k lists."""
        # Heap merge is n_lists * k * log(n_lists); tiny, but non-zero so
        # aggregation layers (Vearch baseline) show up in the model.
        ops = float(n_lists) * float(k) * max(1.0, np.log2(max(n_lists, 2)))
        return ops / self.mac_per_ms

    def rpc_hop(self) -> float:
        """One inter-component message (latency + fixed overhead)."""
        return self.rpc_latency_ms + self.request_overhead_ms

    # ------------------------------------------------------------------
    # storage-side costs
    # ------------------------------------------------------------------

    def object_read(self, nbytes: int) -> float:
        """Read ``nbytes`` from the object store."""
        mb = nbytes / (1024.0 * 1024.0)
        return self.object_store_latency_ms + mb / self.object_store_mb_per_ms

    def object_write(self, nbytes: int) -> float:
        """Write ``nbytes`` to the object store (same model as reads)."""
        return self.object_read(nbytes)

    def ssd_read(self, n_blocks: int) -> float:
        """Read ``n_blocks`` 4 KB-aligned blocks from local SSD."""
        return float(n_blocks) * self.ssd_block_read_ms

    def disk_read(self, n_blocks: int) -> float:
        """Read ``n_blocks`` blocks from HDD-class storage."""
        return float(n_blocks) * self.disk_block_read_ms

    # ------------------------------------------------------------------
    # build-side costs
    # ------------------------------------------------------------------

    def kmeans_build(self, n: int, k: int, dim: int, iters: int = 10) -> float:
        """Cost of training k-means (the core of IVF/PQ builds)."""
        macs = float(iters) * float(n) * float(k) * float(dim)
        return macs * self.kmeans_iter_factor / self.mac_per_ms

    def graph_build(self, n: int, dim: int, ef: int = 64) -> float:
        """Cost of building a proximity graph over ``n`` vectors."""
        macs = float(n) * float(ef) * float(dim) * max(
            1.0, np.log2(max(n, 2)))
        return macs * self.graph_build_factor / self.mac_per_ms

    # ------------------------------------------------------------------
    # calibration
    # ------------------------------------------------------------------

    @classmethod
    def calibrated(cls, sample_n: int = 4096, dim: int = 128) -> "CostModel":
        """Measure the host's numpy MAC rate and return a matching model.

        Used when virtual timings should track the actual machine; the
        default constants are preferred for reproducible experiment output.
        """
        rng = np.random.default_rng(0)
        base = cls()
        data = rng.standard_normal((sample_n, dim), dtype=np.float32)
        query = rng.standard_normal((dim,), dtype=np.float32)
        # Warm up once, then time a handful of full scans.  Calibration
        # deliberately reads the host's real clock: its whole point is to
        # measure the actual machine, and it never runs inside a simulation.
        _ = data @ query
        start = time.perf_counter()  # manu-lint: disable=determinism -- host calibration measures real hardware by design
        reps = 10
        for _ in range(reps):
            diff = data @ query
            _ = float(diff.sum())
        elapsed_ms = (time.perf_counter() - start) * 1000.0  # manu-lint: disable=determinism -- host calibration measures real hardware by design
        macs = float(reps) * sample_n * dim
        measured = macs / max(elapsed_ms, 1e-6)
        return replace(base, mac_per_ms=measured)


DEFAULT_COST_MODEL = CostModel()
