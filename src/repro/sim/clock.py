"""Virtual clock for deterministic timing experiments.

All components of the cluster read time from a :class:`VirtualClock` instead
of the wall clock.  Time is a float in *milliseconds* since cluster start.
Only the event loop (or a test) may advance it, and it can never go backwards.

The clock also owns the *tie-break* question: when several events are due at
the same virtual millisecond, which runs first?  The seed behaviour is FIFO
(scheduling order), which makes runs deterministic but only ever exercises
one legal interleaving.  A :class:`ShuffledSchedulePolicy` — armed with
``MANU_RACE=<seed>`` — replaces the tie-break with a seeded permutation, so
the same scenario can be replayed under many legal same-tick orders and any
order-dependent outcome is pinned to the seed that produced it (the dynamic
head of ``manu-race``; the static head is ``repro.analysis.raceorder``).
"""

from __future__ import annotations

import os
import zlib
from typing import Optional

#: environment variable arming the schedule-shuffle sanitizer.  Unset or
#: empty keeps the FIFO seed behaviour; ``fifo`` is an explicit no-op; any
#: integer (``0`` included) selects a seeded permutation of same-timestamp
#: execution order.
MANU_RACE_ENV = "MANU_RACE"

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a deterministic, platform-stable bit mixer.

    Used instead of :mod:`random` so the tie-break needs no hidden state
    and two processes given the same seed produce byte-identical
    schedules (builtin ``hash`` is salted per process; this is not).
    """
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


class SchedulePolicy:
    """Decides execution order among events due at the same virtual time.

    The event loop asks :meth:`tiebreak` for an ordering key when an event
    is scheduled; the broker asks :meth:`delivery_delay_ms` when it
    schedules a push-delivery flush.  The base class is the FIFO seed
    behaviour: tie-break equals scheduling sequence and delivery delay is
    passed through untouched, so attaching it changes nothing.
    """

    name = "fifo"
    seed: Optional[int] = None

    def tiebreak(self, seq: int) -> int:
        """Ordering key among same-timestamp events (smaller runs first)."""
        return seq

    def delivery_delay_ms(self, base_ms: float, key: str, n: int) -> float:
        """Delay for the ``n``-th delivery flush of subscription ``key``.

        Policies may stretch (never shrink) the delay: per-subscription
        entry order is preserved by the broker regardless, so the only
        legal perturbation is *when* a subscriber's flush lands relative
        to other subscribers' — exactly the reorder bound delta
        consistency tolerates (paper §3.4: per-channel LSN order is the
        contract, cross-channel timing is not).
        """
        return base_ms

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(seed={self.seed!r})"


#: module-level FIFO instance shared by every unarmed loop/broker.
FIFO_POLICY = SchedulePolicy()


class ShuffledSchedulePolicy(SchedulePolicy):
    """Seeded permutation of same-timestamp execution order.

    ``tiebreak`` maps the scheduling sequence number through SplitMix64
    keyed by the seed, so events that collide on a virtual timestamp run
    in a pseudo-random — but fully seed-reproducible — order.  Delivery
    flushes are additionally jittered within ``[base, 2*base)`` so pushes
    to different subscribers interleave differently while each
    subscription still consumes its channel strictly in offset order.
    """

    name = "shuffle"

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._salt = _mix64(self.seed ^ 0xA5C1_55E5_0000_0001)

    def tiebreak(self, seq: int) -> int:
        return _mix64(self._salt ^ _mix64(seq))

    def delivery_delay_ms(self, base_ms: float, key: str, n: int) -> float:
        if base_ms <= 0.0:
            return base_ms
        h = _mix64(self._salt
                   ^ zlib.crc32(key.encode("utf-8"))
                   ^ _mix64(n + 0x5151))
        return base_ms * (1.0 + h / float(1 << 64))


def race_seed(env: Optional[str] = None) -> Optional[int]:
    """The ``MANU_RACE`` seed, or ``None`` when the sanitizer is unarmed.

    ``env`` overrides the environment lookup (used by tests and the race
    runner); ``""`` and ``"fifo"`` mean unarmed, anything else must parse
    as an integer seed.
    """
    raw = os.environ.get(MANU_RACE_ENV, "") if env is None else env
    raw = raw.strip()
    if raw == "" or raw.lower() == "fifo":
        return None
    try:
        return int(raw, 0)
    except ValueError:
        raise ValueError(
            f"{MANU_RACE_ENV} must be an integer seed or 'fifo', "
            f"got {raw!r}") from None


def schedule_policy_from_env(env: Optional[str] = None) -> SchedulePolicy:
    """The schedule policy selected by ``MANU_RACE`` (FIFO when unarmed)."""
    seed = race_seed(env)
    return FIFO_POLICY if seed is None else ShuffledSchedulePolicy(seed)


class VirtualClock:
    """A monotonically advancing virtual clock measured in milliseconds."""

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now_ms = float(start_ms)

    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_ms

    def advance_to(self, t_ms: float) -> None:
        """Jump forward to an absolute virtual time.

        Raises ``ValueError`` on an attempt to move backwards, which would
        indicate an event-ordering bug.
        """
        if t_ms < self._now_ms:
            raise ValueError(
                f"clock cannot go backwards: {t_ms} < {self._now_ms}"
            )
        self._now_ms = float(t_ms)

    def advance_by(self, delta_ms: float) -> None:
        """Move forward by a relative amount of virtual time."""
        if delta_ms < 0:
            raise ValueError(f"negative clock delta: {delta_ms}")
        self._now_ms += float(delta_ms)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now_ms:.3f}ms)"
