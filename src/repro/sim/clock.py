"""Virtual clock for deterministic timing experiments.

All components of the cluster read time from a :class:`VirtualClock` instead
of the wall clock.  Time is a float in *milliseconds* since cluster start.
Only the event loop (or a test) may advance it, and it can never go backwards.
"""

from __future__ import annotations


class VirtualClock:
    """A monotonically advancing virtual clock measured in milliseconds."""

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now_ms = float(start_ms)

    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_ms

    def advance_to(self, t_ms: float) -> None:
        """Jump forward to an absolute virtual time.

        Raises ``ValueError`` on an attempt to move backwards, which would
        indicate an event-ordering bug.
        """
        if t_ms < self._now_ms:
            raise ValueError(
                f"clock cannot go backwards: {t_ms} < {self._now_ms}"
            )
        self._now_ms = float(t_ms)

    def advance_by(self, delta_ms: float) -> None:
        """Move forward by a relative amount of virtual time."""
        if delta_ms < 0:
            raise ValueError(f"negative clock delta: {delta_ms}")
        self._now_ms += float(delta_ms)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now_ms:.3f}ms)"
