"""Discrete-event loop driving the virtual-time cluster.

The loop is a priority queue of ``(time, tiebreak, sequence, callback)``
entries.  Under the default FIFO :class:`~repro.sim.clock.SchedulePolicy`
the tie-break equals the sequence number, so simultaneous events fire in
scheduling order and every run is fully deterministic.  With the
``MANU_RACE=<seed>`` shuffle policy the tie-break is a seeded permutation:
same-timestamp events run in a reproducible but perturbed order, which is
how order-dependent bugs are flushed out (DESIGN.md §6e).  Events can be
cancelled (for example a segment's idle-seal timer is cancelled when a new
insert arrives) and periodic events reschedule themselves until cancelled.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.sim.clock import (
    SchedulePolicy,
    VirtualClock,
    schedule_policy_from_env,
)


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time_ms", "tiebreak", "seq", "callback", "cancelled",
                 "name")

    def __init__(self, time_ms: float, seq: int, callback: Callable[[], None],
                 name: str = "", tiebreak: Optional[int] = None) -> None:
        self.time_ms = time_ms
        self.seq = seq
        self.tiebreak = seq if tiebreak is None else tiebreak
        self.callback = callback
        self.cancelled = False
        self.name = name

    def cancel(self) -> None:
        """Prevent the callback from firing; safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time_ms, self.tiebreak, self.seq) \
            < (other.time_ms, other.tiebreak, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event({self.name or 'anon'}@{self.time_ms:.3f}ms, {state})"


class EventLoop:
    """Virtual-time event loop.

    ``run_until(t)`` executes every pending event with time <= ``t`` and then
    advances the clock to exactly ``t``; ``run_until_idle()`` drains the queue
    entirely.  Callbacks may schedule further events.
    """

    def __init__(self, clock: Optional[VirtualClock] = None,
                 policy: Optional[SchedulePolicy] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        # ``None`` defers to MANU_RACE so existing call sites pick up the
        # sanitizer without plumbing (same pattern as MANU_CHECK).
        self.policy = policy if policy is not None \
            else schedule_policy_from_env()
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._executed = 0
        # Executed-event trace for seed forensics: the race runner sets
        # this to a list and every executed event appends
        # ``(time_ms, seq, name)`` — the schedule artifact a failing seed
        # uploads so the offending interleaving can be read back.
        self.schedule_log: Optional[list[tuple[float, int, str]]] = None

    @property
    def executed_events(self) -> int:
        """Total number of callbacks executed so far (for tests/metrics)."""
        return self._executed

    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self.clock.now()

    def call_at(self, t_ms: float, callback: Callable[[], None],
                name: str = "") -> Event:
        """Schedule ``callback`` to fire at absolute virtual time ``t_ms``.

        Scheduling in the past is clamped to *now* (the event fires on the
        next pump) rather than raising, because distributed components often
        react to messages whose logical timestamp already passed.
        """
        t_ms = max(t_ms, self.clock.now())
        seq = next(self._seq)
        event = Event(t_ms, seq, callback, name,
                      tiebreak=self.policy.tiebreak(seq))
        heapq.heappush(self._queue, event)
        return event

    def call_after(self, delay_ms: float, callback: Callable[[], None],
                   name: str = "") -> Event:
        """Schedule ``callback`` to fire ``delay_ms`` from now."""
        if delay_ms < 0:
            raise ValueError(f"negative delay: {delay_ms}")
        return self.call_at(self.clock.now() + delay_ms, callback, name)

    def call_every(self, interval_ms: float, callback: Callable[[], None],
                   name: str = "", start_delay_ms: Optional[float] = None,
                   ) -> Event:
        """Schedule ``callback`` periodically until the handle is cancelled.

        Returns a handle whose ``cancel()`` stops the recurrence.  The handle
        stays valid across firings (internally the chain reschedules itself
        but honours the original handle's cancelled flag).
        """
        if interval_ms <= 0:
            raise ValueError(f"non-positive interval: {interval_ms}")
        first_delay = interval_ms if start_delay_ms is None else start_delay_ms
        handle = Event(self.clock.now() + first_delay, next(self._seq),
                       lambda: None, name)

        def fire() -> None:
            if handle.cancelled:
                return
            callback()
            if not handle.cancelled:
                self.call_after(interval_ms, fire, name)

        self.call_at(self.clock.now() + first_delay, fire, name)
        return handle

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next pending event, or ``None`` if idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time_ms if self._queue else None

    def step(self) -> bool:
        """Execute the single next pending event; returns False when idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time_ms)
            if self.schedule_log is not None:
                self.schedule_log.append(
                    (event.time_ms, event.seq, event.name))
            event.callback()
            self._executed += 1
            return True
        return False

    def run_until(self, t_ms: float) -> None:
        """Run every event scheduled up to ``t_ms`` then land on ``t_ms``."""
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > t_ms:
                break
            self.step()
        self.clock.advance_to(max(t_ms, self.clock.now()))

    def run_for(self, delta_ms: float) -> None:
        """Run the loop forward by ``delta_ms`` of virtual time."""
        self.run_until(self.clock.now() + delta_ms)

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Drain the queue; returns the number of events executed.

        ``max_events`` guards against runaway self-rescheduling loops (a
        periodic event must be cancelled before calling this).
        """
        count = 0
        while count < max_events and self.step():
            count += 1
        if count >= max_events and self.peek_time() is not None:
            raise RuntimeError(
                "run_until_idle exceeded max_events; "
                "a periodic event is probably still scheduled")
        return count
