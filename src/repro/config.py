"""Cluster-wide configuration.

All tunables from the paper are collected here with the paper's defaults:

* segments seal at 512 MB (Section 3.1) — scaled to an entity-count budget so
  laptop-scale experiments exercise the same sealing logic;
* growing segments are sealed after 10 s without an insertion (Section 3.1);
* slices hold 10 000 vectors and get a temporary IVF-Flat index (Section 3.6);
* time-ticks are emitted every 50 ms by default (Section 3.4 / Figure 12);
* SSD buckets target 4 KB blocks (Section 4.4).

Times are expressed in *virtual milliseconds*: the whole cluster runs on the
discrete-event clock in :mod:`repro.sim.clock`, so experiments are
deterministic and independent of host speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class LogConfig:
    """Log-backbone tunables."""

    num_shards: int = 2
    """Number of WAL shard channels for data-manipulation requests."""

    time_tick_interval_ms: float = 50.0
    """Period between time-tick control messages on every WAL channel."""

    ddl_channel: str = "wal/ddl"
    """Channel carrying data-definition requests (create/drop collection)."""

    coord_channel: str = "wal/coord"
    """Channel carrying system-coordination messages (load/release/seal)."""

    group_commit_enabled: bool = True
    """Coalesce insert/delete records per (collection, shard) into one
    ``BatchRecord`` WAL publish (group commit); off restores the
    record-at-a-time append path."""

    group_commit_rows: int = 64
    """Flush a commit group once it buffers this many rows."""

    group_commit_bytes: int = 256 * 1024
    """Flush a commit group once its estimated payload exceeds this."""

    group_commit_window_ms: float = 2.0
    """Commit window: a non-empty group flushes at most this many virtual
    milliseconds after its first buffered record (0 disables the timer,
    leaving only the row/byte bounds and explicit flushes)."""

    binlog_chunk_rows: int = 1024
    """Rows per column chunk when converting a sealed segment to binlog
    (pipelined conversion instead of a whole-segment stall)."""


@dataclass(frozen=True)
class SegmentConfig:
    """Segment lifecycle tunables."""

    seal_entity_count: int = 4096
    """Growing segments seal after this many entities (paper: 512 MB)."""

    seal_idle_ms: float = 10_000.0
    """Growing segments seal after this long without an insertion."""

    slice_size: int = 1024
    """Vectors per slice in a growing segment (paper default: 10 000)."""

    temp_index_nlist: int = 16
    """``nlist`` of the temporary IVF-Flat index built on full slices."""

    enable_temp_index: bool = True
    """Build temporary slice indexes on growing segments (Section 3.6);
    disabled by the Milvus baseline, which brute-force scans unindexed
    data."""

    compaction_min_size: int = 1024
    """Sealed segments smaller than this are candidates for merging."""

    compaction_target_size: int = 4096
    """Merged segments aim for this many entities."""


@dataclass(frozen=True)
class StorageConfig:
    """Object-store and metastore tunables."""

    object_store_latency_ms: float = 20.0
    """Simulated per-request object-store latency (S3-like)."""

    object_store_bandwidth_mbps: float = 400.0
    """Simulated object-store bandwidth in MB per second."""

    lsm_memtable_limit: int = 1024
    """Logger LSM-tree memtable entries before a flush to SSTable."""


@dataclass(frozen=True)
class QueryConfig:
    """Query-path tunables."""

    default_topk: int = 50
    """Default number of results per search request (paper evaluation)."""

    consistency_deadline_ms: float = 60_000.0
    """Hard deadline on delta-consistency waits before erroring out."""

    replica_number: int = 1
    """Hot replicas per collection for availability/throughput."""

    batch_window_ms: float = 0.0
    """Proxy-side request batching window; 0 disables batching."""


@dataclass(frozen=True)
class ScalingConfig:
    """Autoscaler policy from Figure 9."""

    latency_high_ms: float = 150.0
    """Add query nodes (scale to 2x) when p-avg latency exceeds this."""

    latency_low_ms: float = 100.0
    """Remove query nodes (scale to 0.5x) when latency drops below this."""

    min_query_nodes: int = 1
    max_query_nodes: int = 64
    evaluation_interval_ms: float = 10_000.0
    """How often the autoscaler inspects the latency signal."""

    latency_signal: str = "proxy.search_latency"
    """Registry signal (family or latency window) driving latency scaling."""

    latency_agg: str = "mean"
    """Aggregation applied to ``latency_signal`` (mean/p50/p95/p99/...)."""

    lag_signal: str = "wal_subscriber_lag"
    """Gauge family watched for log-backbone backlog (records behind)."""

    lag_high_records: float = 0.0
    """Scale up when any ``lag_signal`` series exceeds this; 0 disables
    lag-driven scaling (the seed behaviour)."""


@dataclass(frozen=True)
class TracingConfig:
    """Causal-tracing tunables (DESIGN.md §6c)."""

    enabled: bool = True
    """Collect spans; off turns the cluster tracer into a no-op."""

    sample_every: int = 1
    """Head-based sampling: every Nth root request is traced."""

    max_traces: int = 256
    """Retained traces (FIFO eviction) before old ones are dropped."""

    tick_trace_every: int = 0
    """Trace every Nth time-tick emission; 0 keeps ticks untraced."""


@dataclass(frozen=True)
class ProfilingConfig:
    """Query-profiling tunables (DESIGN.md §6g)."""

    slow_query_threshold_ms: float = 0.0
    """Searches whose end-to-end virtual latency meets this threshold are
    captured — full :class:`~repro.profiling.QueryProfile` plus trace id —
    into the slow-query ring.  0 (default) disables capture, and the
    serving path then builds no profile for un-explained requests."""

    slow_query_capacity: int = 32
    """Slow-query ring size; the oldest capture is evicted FIFO."""


@dataclass(frozen=True)
class MonitoringConfig:
    """Telemetry-plane tunables (DESIGN.md §6d)."""

    heartbeat_interval_ms: float = 100.0
    """Period of the cluster heartbeat that refreshes component health."""

    degraded_after_beats: float = 2.0
    """Missed-beat multiple after which a component reads ``degraded``."""

    down_after_beats: float = 4.0
    """Missed-beat multiple after which a component reads ``down``."""

    telemetry_interval_ms: float = 250.0
    """Period of backbone sampling (lag, staleness, backlogs) and alert
    evaluation."""

    flight_capacity: int = 8
    """Flight-recorder ring size (debug bundles retained)."""

    flight_max_traces: int = 5
    """Most recent sampled traces embedded in each flight bundle."""

    alert_rules: tuple = ()
    """Declarative SLO rules: ``(name, "signal.agg > x for 5s")`` pairs
    installed into the cluster's alert engine at construction."""


@dataclass(frozen=True)
class ManuConfig:
    """Top-level configuration for a :class:`repro.cluster.manu.ManuCluster`."""

    log: LogConfig = field(default_factory=LogConfig)
    segment: SegmentConfig = field(default_factory=SegmentConfig)
    storage: StorageConfig = field(default_factory=StorageConfig)
    query: QueryConfig = field(default_factory=QueryConfig)
    scaling: ScalingConfig = field(default_factory=ScalingConfig)
    tracing: TracingConfig = field(default_factory=TracingConfig)
    profiling: ProfilingConfig = field(default_factory=ProfilingConfig)
    monitoring: MonitoringConfig = field(default_factory=MonitoringConfig)

    def with_overrides(self, **sections) -> "ManuConfig":
        """Return a copy with whole sections replaced.

        Example::

            cfg = ManuConfig().with_overrides(log=LogConfig(num_shards=4))
        """
        return replace(self, **sections)


DEFAULT_CONFIG = ManuConfig()
