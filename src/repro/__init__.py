"""Reproduction of *Manu: A Cloud Native Vector Database Management System*
(Guo et al., PVLDB 15(12), 2022).

A from-scratch, in-process implementation of the paper's system: the log
backbone (WAL channels, time-ticks, binlog), delta consistency, the four
coordinators and worker node types, the full Table-1 index catalog, and a
discrete-event virtual clock that makes every evaluation figure
reproducible deterministically.

Quickstart::

    import numpy as np
    from repro import connect, Collection, CollectionSchema, FieldSchema
    from repro.core.schema import DataType

    connect()
    schema = CollectionSchema(
        [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=8)])
    coll = Collection("demo", schema)
    coll.insert({"vector": np.random.rand(100, 8).astype("float32")})
    res = coll.search(vec=np.random.rand(8), limit=5,
                      param={"metric_type": "Euclidean"})
    print(res[0].pks)
"""

from repro.analysis import (
    DURABILITY_ACK,
    DURABILITY_COVERAGE,
    DURABILITY_REPLAY,
    DURABILITY_RULES,
    DURABILITY_UNLOGGED,
    RecoveryModelError,
    build_durability_model,
    durability_model_for_root,
)
from repro.api.pymanu import (
    Collection,
    Tenant,
    connect,
    connections,
    parse_metric,
)
from repro.cluster.manu import ManuCluster
from repro.config import ManuConfig
from repro.core.consistency import ConsistencyLevel
from repro.core.schema import (
    CollectionSchema,
    DataType,
    FieldSchema,
    MetricType,
)
from repro.errors import (
    ChannelNotFound,
    ClusterStateError,
    CollectionAlreadyExists,
    CollectionNotFound,
    ConsistencyTimeout,
    ExpressionError,
    FieldNotFound,
    IndexBuildError,
    ManuError,
    MonotonicityViolation,
    NodeNotFound,
    ObjectNotFound,
    FencedWriteError,
    QuotaExceeded,
    RevisionConflict,
    SchemaError,
    StorageError,
    TenantError,
    TenantNotFound,
    TimeTravelError,
)
from repro.tenancy import (
    QosClass,
    ShardRebalancer,
    TenantQuota,
    TenantRegistry,
)
from repro.race import run_race_sweep
from repro.sim.clock import (
    MANU_RACE_ENV,
    SchedulePolicy,
    ShuffledSchedulePolicy,
    race_seed,
    schedule_policy_from_env,
)
from repro.monitoring import (
    AlertRule,
    FlightRecorder,
    HealthState,
    Histogram,
    MetricFamily,
)
from repro.tracing import Span, TraceCollector, TraceContext

__version__ = "0.1.0"

__all__ = [
    "DURABILITY_ACK",
    "DURABILITY_COVERAGE",
    "DURABILITY_REPLAY",
    "DURABILITY_RULES",
    "DURABILITY_UNLOGGED",
    "RecoveryModelError",
    "build_durability_model",
    "durability_model_for_root",
    "Collection",
    "connect",
    "connections",
    "parse_metric",
    "ManuCluster",
    "ManuConfig",
    "ConsistencyLevel",
    "CollectionSchema",
    "DataType",
    "FieldSchema",
    "MetricType",
    "ManuError",
    "SchemaError",
    "CollectionNotFound",
    "CollectionAlreadyExists",
    "FieldNotFound",
    "IndexBuildError",
    "ExpressionError",
    "ConsistencyTimeout",
    "StorageError",
    "ObjectNotFound",
    "RevisionConflict",
    "ChannelNotFound",
    "MonotonicityViolation",
    "NodeNotFound",
    "ClusterStateError",
    "TimeTravelError",
    "Tenant",
    "TenantError",
    "TenantNotFound",
    "TenantQuota",
    "TenantRegistry",
    "QosClass",
    "QuotaExceeded",
    "FencedWriteError",
    "ShardRebalancer",
    "MANU_RACE_ENV",
    "SchedulePolicy",
    "ShuffledSchedulePolicy",
    "race_seed",
    "schedule_policy_from_env",
    "run_race_sweep",
    "Span",
    "TraceCollector",
    "TraceContext",
    "AlertRule",
    "FlightRecorder",
    "HealthState",
    "Histogram",
    "MetricFamily",
    "__version__",
]
