"""Seeded schedule-shuffle sweep: one chaos scenario, many legal orders.

The scenario is *operation-deterministic*: its operation stream comes from
a numpy RNG with a fixed seed, so across runs the only varying input is
the :class:`~repro.sim.clock.SchedulePolicy` — which same-tick order the
event loop picks and how broker delivery flushes jitter.  Any difference
in the final semantic state is therefore an order-dependence bug, pinned
to the schedule seed that produced it.

Fingerprints are semantic on purpose.  Two legal schedules may assign
different segment ids, interleave seals differently or compact different
groups; what must NOT move is what a client can observe: live row count,
strong-consistency search results (pks and distances), point reads of
known-live entities, and which entities stay deleted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.cluster.manu import ManuCluster
from repro.config import LogConfig, ManuConfig, SegmentConfig
from repro.core.consistency import ConsistencyLevel
from repro.core.schema import CollectionSchema, DataType, FieldSchema, \
    MetricType
from repro.sim.clock import (
    FIFO_POLICY,
    SchedulePolicy,
    ShuffledSchedulePolicy,
)

#: collection name used by the chaos scenario.
COLLECTION = "race"

#: numpy seed feeding the *operation* stream.  Fixed: the sweep varies the
#: schedule, never the workload.
OPS_SEED = 0

#: vector dimensionality of the scenario's collection.
DIM = 12

#: distances are rounded to this many decimals before comparison so float
#: summation-order noise (reductions over differently-ordered segments)
#: does not masquerade as an order-dependence bug.
DISTANCE_DECIMALS = 4


@dataclass
class SeedOutcome:
    """Result of one scenario run under one schedule policy."""

    policy: str                      # "fifo" or "shuffle"
    seed: Optional[int]              # None for the FIFO baseline
    fingerprint: Optional[dict] = None
    error: Optional[str] = None      # exception repr when the run crashed
    schedule_trace: list[tuple[float, int, str]] = field(
        default_factory=list)
    executed_events: int = 0

    @property
    def label(self) -> str:
        return "fifo" if self.seed is None else f"seed={self.seed}"


@dataclass
class RaceSweepReport:
    """A FIFO baseline plus N seeded runs and their diffs."""

    baseline: SeedOutcome
    outcomes: list[SeedOutcome]
    #: seed -> list of human-readable differences vs the baseline
    divergent: dict[int, list[str]]

    @property
    def ok(self) -> bool:
        return (self.baseline.error is None and not self.divergent
                and all(o.error is None for o in self.outcomes))

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "baseline": {"label": self.baseline.label,
                         "error": self.baseline.error,
                         "executed_events": self.baseline.executed_events},
            "seeds": [{"label": o.label, "error": o.error,
                       "executed_events": o.executed_events,
                       "divergences": self.divergent.get(o.seed, [])}
                      for o in self.outcomes],
        }


def _build_cluster(policy: SchedulePolicy,
                   trace: bool = False,
                   log_config: Optional[LogConfig] = None) -> ManuCluster:
    config = ManuConfig(
        segment=SegmentConfig(
            seal_entity_count=64, slice_size=32, compaction_min_size=48,
            compaction_target_size=192),
        log=log_config if log_config is not None else LogConfig())
    cluster = ManuCluster(config=config, num_query_nodes=2,
                          num_index_nodes=1, num_loggers=2,
                          schedule_policy=policy)
    # Arm the runtime monotonicity twin for the whole run: a shuffle that
    # breaks the per-WAL-channel LSN contract must fail loudly, not show
    # up later as a mysterious fingerprint diff.
    cluster.broker.manu_check = True
    if trace:
        cluster.loop.schedule_log = []
    return cluster


def inject_crash(cluster: ManuCluster) -> str:
    """Kill one established query node, deterministically, as a crash
    point, and bring up a replacement.

    Consumes nothing from the scenario RNG *and* restores the node
    count, so the op stream's state-dependent branches (``fail_node``
    needs >1 nodes, ``add_node`` <5, ...) draw the identical RNG
    sequence with and without the crash.  The recovered run must then
    converge to the uncrashed fingerprint: checkpointed segments reload
    from their binlogs and channels replay from the recorded flushed
    offsets.
    """
    victim = cluster.query_coord.node_names[0]
    cluster.add_query_node()
    cluster.run_for(100)
    cluster.fail_query_node(victim)
    return victim


def run_chaos_scenario(policy: SchedulePolicy, steps: int = 30,
                       trace: bool = False,
                       crash_step: Optional[int] = None,
                       log_config: Optional[LogConfig] = None,
                       ) -> tuple[ManuCluster, dict[int, np.ndarray]]:
    """Run the fixed chaos scenario under ``policy``.

    Returns the settled cluster and the model of expected live entities
    (pk -> vector).  The operation stream (inserts, deletes, flushes,
    compactions, node failures, logger churn) is identical for every
    policy; only event interleaving differs.  ``crash_step`` injects
    :func:`inject_crash` after that step's operation has settled.
    ``log_config`` overrides the log/group-commit tuning (the append
    bench uses it to compare group-commit on/off fingerprints).
    """
    rng = np.random.default_rng(OPS_SEED)
    cluster = _build_cluster(policy, trace=trace, log_config=log_config)
    schema = CollectionSchema([
        FieldSchema("pk", DataType.INT64, is_primary=True),
        FieldSchema("vector", DataType.FLOAT_VECTOR, dim=DIM),
    ])
    cluster.create_collection(COLLECTION, schema)
    cluster.create_index(COLLECTION, "vector", "IVF_FLAT",
                         MetricType.EUCLIDEAN, {"nlist": 4, "nprobe": 4})

    model: dict[int, np.ndarray] = {}
    next_pk = 0
    logger_seq = 0

    for step in range(steps):
        op = rng.choice(
            ["insert", "insert", "insert", "delete", "delete", "flush",
             "compact", "fail_node", "add_node", "remove_node",
             "logger_churn", "run"])
        if op == "insert":
            n = int(rng.integers(5, 40))
            pks = list(range(next_pk, next_pk + n))
            vectors = rng.standard_normal((n, DIM)).astype(np.float32)
            cluster.insert(COLLECTION, {"pk": pks, "vector": vectors})
            for pk, vec in zip(pks, vectors):
                model[pk] = vec
            next_pk += n
        elif op == "delete" and model:
            count = min(len(model), int(rng.integers(1, 6)))
            victims = [sorted(model)[int(i)] for i in
                       rng.choice(len(model), count, replace=False)]
            expr = "pk in [" + ", ".join(map(str, victims)) + "]"
            cluster.delete(COLLECTION, expr)
            for pk in victims:
                model.pop(pk)
        elif op == "flush":
            cluster.flush(COLLECTION)
        elif op == "compact":
            cluster.flush(COLLECTION)
            cluster.compact(COLLECTION)
        elif op == "fail_node":
            if cluster.num_query_nodes > 1:
                names = cluster.query_coord.node_names
                cluster.fail_query_node(
                    names[int(rng.integers(len(names)))])
        elif op == "add_node":
            if cluster.num_query_nodes < 5:
                cluster.add_query_node()
        elif op == "remove_node":
            if cluster.num_query_nodes > 2:
                cluster.remove_query_node()
        elif op == "logger_churn":
            cluster.add_logger(f"race-logger-{logger_seq}")
            logger_seq += 1
            if len(cluster.logger_service.logger_names) > 3:
                cluster.fail_logger(
                    cluster.logger_service.logger_names[0])
        cluster.run_for(float(rng.integers(50, 400)))
        if crash_step is not None and step == crash_step:
            inject_crash(cluster)

    # Settle: let deliveries, seals, handoffs and index builds complete so
    # the fingerprint reads a quiescent cluster, not an in-flight one.
    cluster.flush(COLLECTION)
    cluster.run_for(2_000)
    return cluster, model


def cluster_fingerprint(cluster: ManuCluster,
                        model: dict[int, np.ndarray],
                        probes: int = 8) -> dict:
    """Client-observable state: what must be schedule-invariant.

    Deliberately excludes segment ids, LSNs, channel offsets and event
    counts — all legitimately schedule-dependent.
    """
    rng = np.random.default_rng(OPS_SEED + 1)
    fp: dict[str, Any] = {
        "row_count": cluster.collection_row_count(COLLECTION),
        "model_size": len(model),
    }
    pks = sorted(model)
    # Point reads of a deterministic sample of live entities.
    sample = [pks[int(i)] for i in
              rng.choice(len(pks), min(16, len(pks)), replace=False)] \
        if pks else []
    got = cluster.get(COLLECTION, sample)
    fp["point_reads"] = sorted(got)
    # Strong-consistency searches: result pks and rounded distances.
    searches = []
    for _ in range(probes):
        if pks:
            probe = pks[int(rng.integers(len(pks)))]
            query = model[probe]
        else:
            query = rng.standard_normal(DIM).astype(np.float32)
        result = cluster.search(COLLECTION, query, 5,
                                consistency=ConsistencyLevel.STRONG)[0]
        searches.append({
            "pks": list(result.pks),
            "distances": [round(float(d), DISTANCE_DECIMALS)
                          for d in result.distances],
        })
    fp["searches"] = searches
    return fp


def diff_fingerprints(baseline: dict, other: dict) -> list[str]:
    """Human-readable differences between two fingerprints."""
    diffs: list[str] = []
    for key in ("row_count", "model_size", "point_reads"):
        if baseline.get(key) != other.get(key):
            diffs.append(f"{key}: baseline={baseline.get(key)!r} "
                         f"vs {other.get(key)!r}")
    base_searches = baseline.get("searches", [])
    other_searches = other.get("searches", [])
    for i, (a, b) in enumerate(zip(base_searches, other_searches)):
        if a != b:
            diffs.append(f"search[{i}]: baseline={a!r} vs {b!r}")
    return diffs


def _run_one(policy: SchedulePolicy, steps: int,
             trace: bool) -> SeedOutcome:
    outcome = SeedOutcome(policy=policy.name, seed=policy.seed)
    try:
        cluster, model = run_chaos_scenario(policy, steps=steps,
                                            trace=trace)
        outcome.fingerprint = cluster_fingerprint(cluster, model)
        outcome.executed_events = cluster.loop.executed_events
        if cluster.loop.schedule_log is not None:
            outcome.schedule_trace = cluster.loop.schedule_log
    # manu-lint: disable=error-hygiene -- a crashed seed is a *result* the
    # sweep must report (with the seed pinned for replay), never a crash
    # of the sweep itself; any exception type qualifies.
    except Exception as exc:
        outcome.error = f"{type(exc).__name__}: {exc}"
    return outcome


def run_race_sweep(seeds, steps: int = 30,
                   trace: bool = False) -> RaceSweepReport:
    """Run the scenario under FIFO plus each seed; diff the outcomes.

    ``trace=True`` captures each run's executed-event schedule (the
    artifact CI uploads when a seed diverges, replayable with
    ``MANU_RACE=<seed>``).
    """
    baseline = _run_one(FIFO_POLICY, steps, trace)
    outcomes = [_run_one(ShuffledSchedulePolicy(seed), steps, trace)
                for seed in seeds]
    divergent: dict[int, list[str]] = {}
    for outcome in outcomes:
        if outcome.error is not None:
            divergent[outcome.seed] = [f"run failed: {outcome.error}"]
        elif baseline.fingerprint is not None \
                and outcome.fingerprint is not None:
            diffs = diff_fingerprints(baseline.fingerprint,
                                      outcome.fingerprint)
            if diffs:
                divergent[outcome.seed] = diffs
    return RaceSweepReport(baseline=baseline, outcomes=outcomes,
                           divergent=divergent)
