"""manu-race dynamic head: the seeded schedule-shuffle sanitizer.

The virtual-time cluster is deterministic, but determinism cuts both ways:
the event loop only ever executes *one* legal interleaving of same-tick
events, so a handler that silently depends on its neighbours' order passes
every test.  This package perturbs that order — reproducibly — and checks
that the *outcome* does not move:

* :class:`~repro.sim.clock.ShuffledSchedulePolicy` (armed cluster-wide by
  ``MANU_RACE=<seed>``) permutes same-timestamp execution order and
  jitters broker delivery flushes within the declared reorder bounds
  (per-subscription offset order is never violated);
* :func:`run_race_sweep` executes one deterministic chaos scenario under a
  FIFO baseline plus N seeds and diffs the final *semantic* cluster state
  (live rows, strong-consistency search results, point reads, health) —
  identifier-level differences (segment ids, LSN values) are expected and
  ignored;
* ``python -m repro.race`` is the CI face: exit 1 names the offending
  seeds and dumps each divergent schedule trace for replay.

A divergence report means: re-run with ``MANU_RACE=<seed>`` and the same
scenario, and the failure reproduces deterministically.
"""

from repro.race.runner import (
    RaceSweepReport,
    SeedOutcome,
    cluster_fingerprint,
    diff_fingerprints,
    run_chaos_scenario,
    run_race_sweep,
)
from repro.sim.clock import (
    MANU_RACE_ENV,
    SchedulePolicy,
    ShuffledSchedulePolicy,
    race_seed,
    schedule_policy_from_env,
)

__all__ = [
    "MANU_RACE_ENV",
    "RaceSweepReport",
    "SchedulePolicy",
    "SeedOutcome",
    "ShuffledSchedulePolicy",
    "cluster_fingerprint",
    "diff_fingerprints",
    "race_seed",
    "run_chaos_scenario",
    "run_race_sweep",
    "schedule_policy_from_env",
]
