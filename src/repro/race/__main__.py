"""CLI for the schedule-shuffle race sweep.

Usage::

    python -m repro.race --seeds 5                 # seeds 0..4 + baseline
    python -m repro.race --seed-list 7,11,42       # explicit seeds
    python -m repro.race --steps 40 --trace-dir out/  # dump schedules
    MANU_RACE=11 python -m repro.race --seed-list 11  # replay one seed

Exit status 0 when every seed's semantic fingerprint matches the FIFO
baseline; 1 on any divergence or crashed run.  With ``--trace-dir`` the
executed-event schedule of the baseline and every *divergent* seed is
written as ``schedule-<label>.txt`` for offline diffing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.race.runner import RaceSweepReport, SeedOutcome, run_race_sweep


def _parse_args(argv) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.race",
        description="Run the chaos scenario under shuffled schedules and "
                    "diff final cluster state against the FIFO baseline.")
    parser.add_argument("--seeds", type=int, default=5,
                        help="number of seeds to sweep (0..N-1)")
    parser.add_argument("--seed-list", type=str, default=None,
                        help="comma-separated explicit seeds "
                             "(overrides --seeds)")
    parser.add_argument("--steps", type=int, default=30,
                        help="chaos scenario length in operations")
    parser.add_argument("--trace-dir", type=str, default=None,
                        help="directory for schedule-trace artifacts")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON on stdout")
    return parser.parse_args(argv)


def _write_trace(trace_dir: str, outcome: SeedOutcome) -> str:
    os.makedirs(trace_dir, exist_ok=True)
    path = os.path.join(trace_dir, f"schedule-{outcome.label}.txt"
                        .replace("=", "-"))
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# schedule trace: {outcome.label} "
                 f"({outcome.executed_events} events)\n")
        fh.write("# time_ms\tseq\tname\n")
        for time_ms, seq, name in outcome.schedule_trace:
            fh.write(f"{time_ms:.3f}\t{seq}\t{name}\n")
    return path


def _report_text(report: RaceSweepReport) -> str:
    lines = []
    base = report.baseline
    if base.error is not None:
        lines.append(f"baseline ({base.label}) CRASHED: {base.error}")
    else:
        lines.append(f"baseline ({base.label}): "
                     f"{base.executed_events} events, "
                     f"{base.fingerprint['row_count']} live rows")
    for outcome in report.outcomes:
        diffs = report.divergent.get(outcome.seed)
        if diffs is None:
            lines.append(f"  {outcome.label}: OK "
                         f"({outcome.executed_events} events)")
        else:
            lines.append(f"  {outcome.label}: DIVERGED "
                         f"(reproduce with MANU_RACE={outcome.seed})")
            for diff in diffs:
                lines.append(f"    - {diff}")
    verdict = "PASS" if report.ok else "FAIL"
    lines.append(f"race sweep: {verdict} "
                 f"({len(report.outcomes)} seeds, "
                 f"{len(report.divergent)} divergent)")
    return "\n".join(lines)


def main(argv=None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    if args.seed_list:
        seeds = [int(part, 0) for part in args.seed_list.split(",")
                 if part.strip()]
    else:
        seeds = list(range(args.seeds))
    trace = args.trace_dir is not None
    report = run_race_sweep(seeds, steps=args.steps, trace=trace)

    if trace:
        paths = [_write_trace(args.trace_dir, report.baseline)]
        for outcome in report.outcomes:
            if outcome.seed in report.divergent:
                paths.append(_write_trace(args.trace_dir, outcome))
        print("schedule traces: " + ", ".join(paths), file=sys.stderr)

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(_report_text(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
