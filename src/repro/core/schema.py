"""Collection schemas (Section 3.1, Figure 1).

A collection schema is a list of fields.  Supported data types follow the
paper: vector, string, boolean, integer, and floating point.  Exactly one
field is the primary key (auto-added as ``_auto_id`` when absent); any number
of vector fields are allowed (multi-vector entities, Section 3.6); the
remaining scalar fields are labels and numerical attributes used for
filtering.  A hidden logical-sequence-number field is managed by the system
and never appears in user schemas.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import FieldNotFound, SchemaError

AUTO_ID_FIELD = "_auto_id"
LSN_FIELD = "_lsn"
RESERVED_FIELDS = {AUTO_ID_FIELD, LSN_FIELD}


class DataType(enum.Enum):
    """Field data types supported by the schema."""

    INT64 = "int64"
    FLOAT = "float"
    BOOL = "bool"
    STRING = "string"
    FLOAT_VECTOR = "float_vector"

    @property
    def is_vector(self) -> bool:
        return self is DataType.FLOAT_VECTOR

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT64, DataType.FLOAT)


class MetricType(enum.Enum):
    """Similarity functions for vector search (Section 3.6)."""

    EUCLIDEAN = "euclidean"
    INNER_PRODUCT = "inner_product"
    COSINE = "cosine"

    @property
    def higher_is_better(self) -> bool:
        """Whether larger scores mean more similar vectors."""
        return self is not MetricType.EUCLIDEAN


@dataclass(frozen=True)
class FieldSchema:
    """One field of a collection schema."""

    name: str
    dtype: DataType
    dim: int = 0
    is_primary: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid field name: {self.name!r}")
        if self.name in RESERVED_FIELDS:
            raise SchemaError(f"field name {self.name!r} is reserved")
        if self.dtype.is_vector:
            if self.dim <= 0:
                raise SchemaError(
                    f"vector field {self.name!r} needs a positive dim")
            if self.is_primary:
                raise SchemaError("a vector field cannot be the primary key")
        elif self.dim:
            raise SchemaError(
                f"scalar field {self.name!r} must not declare a dim")
        if self.is_primary and self.dtype not in (
                DataType.INT64, DataType.STRING):
            raise SchemaError(
                "primary key must be an integer or a string "
                f"(got {self.dtype.value})")


def _system_auto_id_field() -> FieldSchema:
    """Construct the implicit ``_auto_id`` primary key field.

    The name is reserved — ``FieldSchema.__post_init__`` rejects it for
    user schemas precisely so that only this factory can create it — so
    construction bypasses ``__init__`` and sets the frozen fields directly.
    """
    primary = FieldSchema.__new__(FieldSchema)
    state = {
        "name": AUTO_ID_FIELD,
        "dtype": DataType.INT64,
        "dim": 0,
        "is_primary": True,
        "description": "implicit auto-generated primary key",
    }
    for key, value in state.items():
        # manu-lint: disable=frozen-record -- sole creation path for the
        # reserved system field; __post_init__ rejects its name by design.
        object.__setattr__(primary, key, value)
    return primary


class CollectionSchema:
    """A validated, immutable collection schema.

    If no field is marked primary, an implicit int64 ``_auto_id`` primary key
    is added (paper: "the system will automatically add an integer primary
    key for each entity").
    """

    def __init__(self, fields: Iterable[FieldSchema],
                 description: str = "") -> None:
        fields = list(fields)
        if not fields:
            raise SchemaError("a schema needs at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in schema: {names}")

        primaries = [f for f in fields if f.is_primary]
        if len(primaries) > 1:
            raise SchemaError("at most one primary key field is allowed")
        self.auto_id = not primaries
        if self.auto_id:
            fields = [_system_auto_id_field()] + fields
        self.fields: tuple[FieldSchema, ...] = tuple(fields)
        self.description = description

        vectors = [f for f in self.fields if f.dtype.is_vector]
        if not vectors:
            raise SchemaError("a schema needs at least one vector field")
        self._by_name = {f.name: f for f in self.fields}

    @property
    def primary_field(self) -> FieldSchema:
        """The primary key field (explicit or implicit)."""
        return next(f for f in self.fields if f.is_primary)

    @property
    def vector_fields(self) -> tuple[FieldSchema, ...]:
        """All vector fields, in declaration order."""
        return tuple(f for f in self.fields if f.dtype.is_vector)

    @property
    def scalar_fields(self) -> tuple[FieldSchema, ...]:
        """All non-vector, non-primary fields (filterable attributes)."""
        return tuple(f for f in self.fields
                     if not f.dtype.is_vector and not f.is_primary)

    def field(self, name: str) -> FieldSchema:
        """Look up a field by name, raising :class:`FieldNotFound`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise FieldNotFound(
                f"field {name!r} not in schema "
                f"(have {sorted(self._by_name)})") from None

    def has_field(self, name: str) -> bool:
        return name in self._by_name

    def default_vector_field(self) -> FieldSchema:
        """The first vector field; the search default when unspecified."""
        return self.vector_fields[0]

    def to_dict(self) -> dict:
        """Serializable representation (metastore persistence)."""
        return {
            "description": self.description,
            "auto_id": self.auto_id,
            "fields": [
                {
                    "name": f.name,
                    "dtype": f.dtype.value,
                    "dim": f.dim,
                    "is_primary": f.is_primary,
                    "description": f.description,
                }
                for f in self.fields if f.name != AUTO_ID_FIELD
            ],
        }

    @staticmethod
    def from_dict(data: dict) -> "CollectionSchema":
        """Inverse of :meth:`to_dict`."""
        fields = [
            FieldSchema(
                name=f["name"],
                dtype=DataType(f["dtype"]),
                dim=f.get("dim", 0),
                is_primary=f.get("is_primary", False),
                description=f.get("description", ""),
            )
            for f in data["fields"]
        ]
        return CollectionSchema(fields, description=data.get("description", ""))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, CollectionSchema)
                and self.fields == other.fields)

    def __repr__(self) -> str:
        names = ", ".join(f"{f.name}:{f.dtype.value}" for f in self.fields)
        return f"CollectionSchema({names})"


def simple_schema(dim: int, metric_dim_check: Optional[int] = None,
                  with_label: bool = False,
                  with_price: bool = False) -> CollectionSchema:
    """Convenience constructor used widely by tests and examples.

    Builds the Figure-1-style schema: auto primary key, one vector field
    named ``vector`` and optional ``label`` / ``price`` attribute fields.
    """
    del metric_dim_check  # reserved for future validation hooks
    fields = [FieldSchema("vector", DataType.FLOAT_VECTOR, dim=dim)]
    if with_label:
        fields.append(FieldSchema("label", DataType.STRING))
    if with_price:
        fields.append(FieldSchema("price", DataType.FLOAT))
    return CollectionSchema(fields)
