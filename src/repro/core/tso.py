"""Central time service oracle (TSO) with hybrid logical clocks.

Section 3.4 of the paper: every request that changes system state receives a
logical sequence number (LSN) from the TSO.  The LSN is a hybrid timestamp
with a *physical* component tracking the virtual clock and a *logical*
counter ordering events that share a physical instant.  Because the physical
component tracks (virtual) wall time closely, users can express staleness
tolerances in physical units and the system can compare them against LSNs
directly.

Timestamps pack into a single 64-bit integer — physical milliseconds in the
high 46 bits, logical counter in the low 18 — mirroring the TiDB/Milvus
convention, so they can be carried in log records as plain ints.
"""

from __future__ import annotations

from dataclasses import dataclass

LOGICAL_BITS = 18
LOGICAL_MASK = (1 << LOGICAL_BITS) - 1


@dataclass(frozen=True, order=True)
class Timestamp:
    """A hybrid logical timestamp (physical ms, logical counter)."""

    physical_ms: int
    logical: int

    def pack(self) -> int:
        """Encode into a single sortable 64-bit integer."""
        return (self.physical_ms << LOGICAL_BITS) | self.logical

    @staticmethod
    def unpack(raw: int) -> "Timestamp":
        """Decode a packed 64-bit timestamp."""
        return Timestamp(raw >> LOGICAL_BITS, raw & LOGICAL_MASK)

    @staticmethod
    def from_physical(ms: float) -> "Timestamp":
        """Timestamp at the start of a physical millisecond (logical 0)."""
        return Timestamp(int(ms), 0)

    def __repr__(self) -> str:
        return f"Ts({self.physical_ms}ms+{self.logical})"


class TimestampOracle:
    """Issues strictly increasing hybrid timestamps off a clock source.

    ``clock_ms`` is any zero-argument callable returning milliseconds — in
    the cluster it is the virtual clock's ``now``.  If the clock stalls (many
    requests inside one virtual millisecond) the logical counter increments;
    if it would overflow, the physical component is pushed forward, which
    keeps timestamps monotonic at the cost of running slightly ahead of the
    clock (the standard HLC behaviour).
    """

    def __init__(self, clock_ms) -> None:
        self._clock_ms = clock_ms
        self._last = Timestamp(-1, 0)
        self._issued = 0

    @property
    def issued_count(self) -> int:
        """Total timestamps handed out (for metrics/tests)."""
        return self._issued

    def last_issued(self) -> Timestamp:
        """The most recent timestamp handed out."""
        return self._last

    def allocate(self) -> Timestamp:
        """Return the next strictly increasing timestamp."""
        physical = int(self._clock_ms())
        if physical > self._last.physical_ms:
            ts = Timestamp(physical, 0)
        elif self._last.logical < LOGICAL_MASK:
            ts = Timestamp(self._last.physical_ms, self._last.logical + 1)
        else:
            ts = Timestamp(self._last.physical_ms + 1, 0)
        self._last = ts
        self._issued += 1
        return ts

    def allocate_packed(self) -> int:
        """Allocate and return the packed 64-bit form."""
        return self.allocate().pack()
