"""Delta consistency (Section 3.4).

Manu guarantees bounded staleness: the data seen by a query can be stale by
at most ``tau`` time units relative to the query's issue time.  A log
subscriber tracks the latest time-tick it consumed (``Ls``); a query issued
at ``Lr`` with staleness tolerance ``tau`` may execute once
``Lr - Ls < tau`` — otherwise it waits for the next tick.

Equivalently, each query carries a *guarantee timestamp*: the subscriber
must have consumed the log up to at least that point.  The four consistency
levels map to guarantee timestamps as:

* ``STRONG``       — ``Lr``           (delta = 0; sees everything before it);
* ``BOUNDED``      — ``Lr - tau``     (the general delta model);
* ``SESSION``      — the timestamp of the session's own last write
  (read-your-writes);
* ``EVENTUAL``     — 0                (delta = infinity; never waits).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from repro.core.tso import Timestamp


class ConsistencyLevel(enum.Enum):
    """User-selectable consistency levels."""

    STRONG = "strong"
    BOUNDED = "bounded"
    SESSION = "session"
    EVENTUAL = "eventual"


def guarantee_ts(level: ConsistencyLevel, issue_ts: int,
                 staleness_ms: float = 0.0,
                 session_ts: int = 0) -> int:
    """Packed guarantee timestamp for a query.

    ``issue_ts`` is the query's packed issue timestamp (``Lr``);
    ``staleness_ms`` is the user's tolerance ``tau`` for BOUNDED;
    ``session_ts`` is the packed timestamp of the session's last write.
    """
    if level is ConsistencyLevel.STRONG:
        return issue_ts
    if level is ConsistencyLevel.BOUNDED:
        if staleness_ms < 0:
            raise ValueError(f"negative staleness {staleness_ms}")
        issue = Timestamp.unpack(issue_ts)
        physical = max(0, issue.physical_ms - int(staleness_ms))
        return Timestamp(physical, issue.logical).pack()
    if level is ConsistencyLevel.SESSION:
        return session_ts
    if level is ConsistencyLevel.EVENTUAL:
        return 0
    raise ValueError(f"unknown consistency level {level}")


@dataclass
class ConsistencyGate:
    """Per-subscriber gate deciding whether a query may execute.

    The subscriber updates ``seen_ts`` every time it consumes a time-tick
    (or any record, since records also carry LSNs).  ``ready`` compares the
    watermark against a query's guarantee timestamp.
    """

    seen_ts: int = 0
    ticks_consumed: int = field(default=0)

    def observe(self, ts: int) -> None:
        """Advance the watermark (monotone; stale observations ignored)."""
        if ts > self.seen_ts:
            self.seen_ts = ts

    def observe_tick(self, ts: int) -> None:
        """Advance the watermark from a time-tick record."""
        self.observe(ts)
        self.ticks_consumed += 1

    def ready(self, guarantee: int) -> bool:
        """Whether data up to ``guarantee`` has been consumed."""
        return self.seen_ts >= guarantee

    def lag_ms(self, now_ts: int) -> float:
        """Physical staleness of the watermark relative to ``now_ts``."""
        now = Timestamp.unpack(now_ts)
        seen = Timestamp.unpack(self.seen_ts)
        return max(0.0, float(now.physical_ms - seen.physical_ms))
