"""Core data model and query semantics of the Manu reproduction.

This package holds the paper's primary contribution pieces that are not tied
to a particular worker node: the hybrid-logical-clock TSO, collection
schemas, segments with slices and deletion bitmaps, the delta-consistency
gate, boolean filter expressions, two-phase top-k reduction, time-travel
checkpoints, and the compaction policy.
"""

from repro.core.tso import TimestampOracle, Timestamp
from repro.core.schema import (
    DataType,
    FieldSchema,
    CollectionSchema,
    MetricType,
)
from repro.core.consistency import ConsistencyLevel, ConsistencyGate
from repro.core.results import (
    HitBatch,
    SearchHit,
    SearchResult,
    merge_topk,
    merge_topk_reference,
)
from repro.core.segment import Segment, SegmentState

__all__ = [
    "TimestampOracle",
    "Timestamp",
    "DataType",
    "FieldSchema",
    "CollectionSchema",
    "MetricType",
    "ConsistencyLevel",
    "ConsistencyGate",
    "HitBatch",
    "SearchHit",
    "SearchResult",
    "merge_topk",
    "merge_topk_reference",
    "Segment",
    "SegmentState",
]
