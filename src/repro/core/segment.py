"""Segments: Manu's unit of data placement (Sections 3.1, 3.6).

A segment is a run of entities from one shard.  It starts *growing* —
accepting appends, organized into fixed-size **slices**; when a slice fills
up, a light-weight temporary index (IVF-Flat) is built over it so searches
on growing data avoid brute-force scans ("the temporary index brings up to
10X speedup for searching growing segments").  A segment *seals* when it
reaches the configured size or stays idle too long; sealed segments are
immutable, get a full index built by an index node, and are the unit of
distribution across query nodes.

Deletions are recorded in a **bitmap** and filtered from search results;
the segment tracks its WAL progress (max LSN applied) both for delta
consistency and as the replay start position for time travel.
"""

from __future__ import annotations

import enum
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.config import SegmentConfig
from repro.core.results import HitBatch
from repro.core.schema import CollectionSchema, MetricType
from repro.errors import ClusterStateError
from repro.index.base import SearchStats, VectorIndex
from repro.index.distances import adjusted_distances, topk_smallest
from repro.index.ivf import IvfFlatIndex


class SegmentState(enum.Enum):
    GROWING = "growing"
    SEALED = "sealed"


class Segment:
    """One segment's rows, slices, deletion bitmap, and indexes."""

    def __init__(self, segment_id: str, collection: str,
                 schema: CollectionSchema,
                 config: Optional[SegmentConfig] = None) -> None:
        self.segment_id = segment_id
        self.collection = collection
        self.schema = schema
        self.config = config if config is not None else SegmentConfig()
        self.state = SegmentState.GROWING

        self._pks: list = []
        self._pk_arr: Optional[np.ndarray] = None
        self._pk_rows: dict = {}
        self._chunks: dict[str, list] = {f.name: [] for f in schema.fields
                                         if not f.is_primary}
        self._consolidated: dict[str, object] = {}
        self._deleted = np.zeros(0, dtype=bool)
        # Temporary slice indexes: field -> {(slice_no, metric): index}.
        # Indexes are metric-specific (the adjusted-distance scales of
        # different metrics are not comparable); Euclidean ones are built
        # eagerly when a slice fills, others lazily at first search.
        self._temp_indexes: dict[
            str, dict[tuple[int, MetricType], IvfFlatIndex]] = {
            f.name: {} for f in schema.vector_fields}
        # Full sealed index per vector field (attached by query nodes).
        self._sealed_indexes: dict[str, VectorIndex] = {}
        # Attribute indexes (Table 1: sorted list / label inverted index)
        # built lazily on sealed segments to accelerate filtering.
        self._attr_indexes: dict[str, object] = {}
        self.max_lsn = 0
        # Insert-only watermark for WAL replay dedup.  ``max_lsn`` cannot
        # serve: deletions fan out to every segment of the collection and
        # bump it with timestamps from other shards' channels, so it is
        # not comparable with one channel's insert LSNs.
        self.max_insert_lsn = 0
        self.last_insert_at_ms = 0.0
        self.temp_index_enabled = True

    # ------------------------------------------------------------------
    # state & size
    # ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self._pks)

    @property
    def num_deleted(self) -> int:
        return int(self._deleted.sum())

    @property
    def num_live_rows(self) -> int:
        return self.num_rows - self.num_deleted

    @property
    def is_sealed(self) -> bool:
        return self.state is SegmentState.SEALED

    @property
    def pks(self) -> list:
        return list(self._pks)

    @property
    def pk_array(self) -> np.ndarray:
        """Primary keys as one ndarray — the gather source for searches.

        Cached and rebuilt lazily after appends so the hot path turns
        row indices into pks with one fancy-index instead of a Python
        loop over ``self._pks``.
        """
        arr = self._pk_arr
        if arr is None:
            arr = np.asarray(self._pks)
            self._pk_arr = arr
        return arr

    def seal(self) -> None:
        """Freeze the segment; further appends are rejected."""
        self.state = SegmentState.SEALED

    def should_seal(self, now_ms: float) -> bool:
        """Size or idle-time sealing policy (Section 3.1)."""
        if self.is_sealed or self.num_rows == 0:
            return False
        if self.num_rows >= self.config.seal_entity_count:
            return True
        return (now_ms - self.last_insert_at_ms) >= self.config.seal_idle_ms

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def append(self, pks: Sequence, columns: Mapping[str, object],
               lsn: int, now_ms: float = 0.0) -> None:
        """Append a batch of rows (growing segments only)."""
        if self.is_sealed:
            raise ClusterStateError(
                f"segment {self.segment_id} is sealed; cannot append")
        start = self.num_rows
        for offset, pk in enumerate(pks):
            self._pk_rows[pk] = start + offset
        self._pks.extend(pks)
        self._pk_arr = None
        for name, chunk in columns.items():
            self._chunks[name].append(chunk)
        self._consolidated.clear()
        self._deleted = np.concatenate(
            [self._deleted, np.zeros(len(pks), dtype=bool)])
        self.max_lsn = max(self.max_lsn, lsn)
        self.max_insert_lsn = max(self.max_insert_lsn, lsn)
        self.last_insert_at_ms = now_ms
        if self.temp_index_enabled:
            self._refresh_temp_indexes(start)

    def apply_delete(self, pks: Sequence, lsn: int) -> int:
        """Mark rows deleted in the bitmap; returns how many matched."""
        count = 0
        for pk in pks:
            row = self._pk_rows.get(pk)
            if row is not None and not self._deleted[row]:
                self._deleted[row] = True
                count += 1
        self.max_lsn = max(self.max_lsn, lsn)
        return count

    def contains_pk(self, pk) -> bool:
        """Whether the segment holds a live row for ``pk``."""
        row = self._pk_rows.get(pk)
        return row is not None and not self._deleted[row]

    @property
    def delete_ratio(self) -> float:
        """Fraction of rows deleted — triggers index rebuild/compaction."""
        return self.num_deleted / self.num_rows if self.num_rows else 0.0

    # ------------------------------------------------------------------
    # columns
    # ------------------------------------------------------------------

    def column(self, name: str):
        """Consolidated column values (numpy array, or list for strings)."""
        if name in self._consolidated:
            return self._consolidated[name]
        field = self.schema.field(name)
        chunks = self._chunks[name]
        if field.dtype.is_vector:
            if chunks:
                value = np.concatenate(
                    [np.asarray(c, dtype=np.float32) for c in chunks], axis=0)
            else:
                value = np.empty((0, field.dim), dtype=np.float32)
        elif field.dtype.value == "string":
            value = [item for chunk in chunks for item in chunk]
        else:
            if chunks:
                value = np.concatenate([np.asarray(c) for c in chunks])
            else:
                value = np.empty(0)
        self._consolidated[name] = value
        return value

    def scalar_columns(self) -> dict[str, object]:
        """All filterable columns, for expression evaluation."""
        return {f.name: self.column(f.name) for f in self.schema.scalar_fields}

    def flush_payload(self) -> tuple[list, dict[str, object], int]:
        """(pks, columns, max_lsn) for binlog conversion by a data node."""
        columns = {name: self.column(name) for name in self._chunks}
        return list(self._pks), columns, self.max_lsn

    def deleted_mask(self) -> np.ndarray:
        return self._deleted.copy()

    # ------------------------------------------------------------------
    # temporary slice indexes
    # ------------------------------------------------------------------

    def _build_temp_index(self, field: str, slice_no: int,
                          metric: MetricType) -> IvfFlatIndex:
        size = self.config.slice_size
        rows = slice(slice_no * size, (slice_no + 1) * size)
        data = self.column(field)[rows]
        index = IvfFlatIndex(metric, self.schema.field(field).dim,
                             nlist=self.config.temp_index_nlist,
                             nprobe=max(2,
                                        self.config.temp_index_nlist // 8))
        index.build(data)
        self._temp_indexes[field][(slice_no, metric)] = index
        return index

    def _refresh_temp_indexes(self, appended_from: int) -> None:
        """Build temp indexes for slices completed by the latest append."""
        del appended_from  # slices are recomputed from totals
        full_slices = self.num_rows // self.config.slice_size
        for field in self.schema.vector_fields:
            built = self._temp_indexes[field.name]
            for slice_no in range(full_slices):
                if (slice_no, MetricType.EUCLIDEAN) not in built:
                    self._build_temp_index(field.name, slice_no,
                                           MetricType.EUCLIDEAN)

    def _temp_index_for(self, field: str, slice_no: int,
                        metric: MetricType) -> Optional[IvfFlatIndex]:
        """The slice's temp index for ``metric`` (built lazily)."""
        built = self._temp_indexes.get(field)
        if built is None or not self.temp_index_enabled:
            return None
        index = built.get((slice_no, metric))
        if index is None and any(s == slice_no for s, _ in built):
            # The slice is complete (another metric's index exists) but
            # this metric's is not built yet: build it on demand.
            index = self._build_temp_index(field, slice_no, metric)
        return index

    def num_temp_indexes(self, field: str) -> int:
        """Number of slices with at least one temporary index."""
        return len({s for s, _ in self._temp_indexes.get(field, {})})

    # ------------------------------------------------------------------
    # sealed index management
    # ------------------------------------------------------------------

    def attach_index(self, field: str, index: VectorIndex) -> None:
        """Install the index-node-built index, replacing temp indexes."""
        if index.ntotal != self.num_rows:
            raise ClusterStateError(
                f"index covers {index.ntotal} rows, segment has "
                f"{self.num_rows}")
        self._sealed_indexes[field] = index
        self._temp_indexes[field] = {}

    def has_index(self, field: str) -> bool:
        return field in self._sealed_indexes

    def index_for(self, field: str) -> Optional[VectorIndex]:
        return self._sealed_indexes.get(field)

    # ------------------------------------------------------------------
    # attribute indexes (Table 1: Sorted List / label inverted index)
    # ------------------------------------------------------------------

    def attr_index(self, field: str):
        """The attribute index for a scalar field (sealed segments only).

        Numeric fields get a :class:`~repro.index.attr.SortedListIndex`,
        string fields a :class:`~repro.index.attr.LabelIndex`; built
        lazily on first use (sealed data is immutable, so the index never
        goes stale).  Returns None for growing segments or bool fields.
        """
        if not self.is_sealed:
            return None
        if field in self._attr_indexes:
            return self._attr_indexes[field]
        spec = self.schema.field(field)
        if spec.dtype.is_vector or spec.is_primary:
            return None
        from repro.index.attr import LabelIndex, SortedListIndex
        if spec.dtype.is_numeric:
            index = SortedListIndex(self.column(field))
        elif spec.dtype.value == "string":
            index = LabelIndex(self.column(field))
        else:
            return None
        self._attr_indexes[field] = index
        return index

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def _allowed_mask(self, filter_mask: Optional[np.ndarray]) -> np.ndarray:
        allowed = ~self._deleted
        if filter_mask is not None:
            if len(filter_mask) != self.num_rows:
                raise ValueError(
                    f"filter mask has {len(filter_mask)} rows, "
                    f"segment has {self.num_rows}")
            allowed = allowed & filter_mask
        return allowed

    def search(self, field: str, queries: np.ndarray, k: int,
               metric: MetricType,
               filter_mask: Optional[np.ndarray] = None,
               stats: Optional[SearchStats] = None,
               force_brute: bool = False,
               ) -> list[HitBatch]:
        """Top-k over live, filter-passing rows; one :class:`HitBatch` per
        query, sorted by ascending adjusted distance.

        Uses the sealed index when attached, temporary slice indexes plus a
        brute tail scan while growing, and pure brute force when
        ``force_brute`` (the pre-filter strategy or a no-index segment).
        Indexed paths amplify k and post-filter; if filtering starves the
        result below ``k``, the search transparently escalates to an exact
        scan of allowed rows, so results are always correct.
        """
        stats = stats if stats is not None else SearchStats()
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[None, :]
        stats.delete_filter_hits += self.num_deleted
        allowed = self._allowed_mask(filter_mask)
        n_allowed = int(allowed.sum())
        if n_allowed == 0 or self.num_rows == 0:
            return [HitBatch.empty() for _ in range(queries.shape[0])]

        if force_brute:
            return self._search_brute(field, queries, k, metric, allowed,
                                      stats)

        sealed_index = self._sealed_indexes.get(field)
        if sealed_index is not None:
            return self._search_with_index(sealed_index, 0, queries, k,
                                           metric, allowed, stats, field)
        return self._search_growing(field, queries, k, metric, allowed,
                                    stats)

    def _search_brute(self, field: str, queries: np.ndarray, k: int,
                      metric: MetricType, allowed: np.ndarray,
                      stats: SearchStats) -> list[HitBatch]:
        rows = np.flatnonzero(allowed)
        if not len(rows) or k <= 0:
            return [HitBatch.empty() for _ in range(queries.shape[0])]
        if field in self._consolidated:
            stats.cache_hits += 1
        else:
            stats.cache_misses += 1
        data = self.column(field)[rows]
        dists = adjusted_distances(queries, data, metric)
        stats.brute_scans += 1
        stats.rows_scanned += queries.shape[0] * len(rows)
        stats.bytes_materialized += int(data.nbytes)
        stats.float_comparisons += queries.shape[0] * len(rows)
        # One batched selection over all queries; pk gather is a single
        # fancy-index on the cached pk ndarray per query.
        idx, vals = topk_smallest(dists, k)
        pk_arr = self.pk_array
        return [HitBatch(pk_arr[rows[idx[qi]]], vals[qi])
                for qi in range(queries.shape[0])]

    def _search_with_index(self, index: VectorIndex, row_offset: int,
                           queries: np.ndarray, k: int, metric: MetricType,
                           allowed: np.ndarray, stats: SearchStats,
                           field: str) -> list[HitBatch]:
        """Post-filter strategy over one index; escalates when starved."""
        covered = index.ntotal
        n_excluded = covered - int(
            allowed[row_offset:row_offset + covered].sum())
        k_amplified = min(covered, k + n_excluded if n_excluded <= k
                          else min(covered, 2 * k + n_excluded // 4))
        ids, dists = index.search(queries, k_amplified)
        _merge_stats(stats, index.stats)
        stats.index_scans += 1
        # Indexes report work as comparison counts; at the scan layer one
        # comparison examines one stored row, which is the rows-scanned
        # unit the read-unit metering charges for.
        stats.rows_scanned += (index.stats.float_comparisons
                               + index.stats.quantized_comparisons)
        pk_arr = self.pk_array
        out: list[HitBatch] = []
        for qi in range(queries.shape[0]):
            local = np.asarray(ids[qi], dtype=np.int64)
            # Candidate lists are tail-padded with -1; truncate there,
            # then drop filtered rows with one mask gather instead of a
            # per-candidate Python walk.
            padding = np.flatnonzero(local < 0)
            if padding.size:
                local = local[:padding[0]]
            rows = row_offset + local
            keep = allowed[rows]
            stats.candidates_visited += len(local)
            stats.candidates_pruned += len(local) - int(keep.sum())
            kept_rows = rows[keep][:k]
            if n_excluded > 0 and len(kept_rows) < k \
                    and k_amplified < covered:
                # Starved by filtering: fall back to exact scan (correct).
                # Without exclusions, returning fewer than k hits is the
                # index's normal ANN behaviour and needs no escalation.
                sub_allowed = np.zeros_like(allowed)
                sub_allowed[row_offset:row_offset + covered] = (
                    allowed[row_offset:row_offset + covered])
                exact = self._search_brute(field, queries[qi:qi + 1], k,
                                           metric, sub_allowed, stats)
                out.append(exact[0])
            else:
                kept_dists = dists[qi][:len(local)][keep][:k]
                out.append(HitBatch(
                    pk_arr[kept_rows],
                    kept_dists.astype(np.float32, copy=False)))
        return out

    def _search_growing(self, field: str, queries: np.ndarray, k: int,
                        metric: MetricType, allowed: np.ndarray,
                        stats: SearchStats) -> list[HitBatch]:
        """Temp slice indexes plus exact scan of the partial tail slice."""
        size = self.config.slice_size
        slices = sorted({s for s, _ in self._temp_indexes.get(field, {})})
        per_query: list[list[HitBatch]] = [
            [] for _ in range(queries.shape[0])]

        uncovered_from = 0
        for slice_no in slices:
            index = self._temp_index_for(field, slice_no, metric)
            if index is None:
                continue
            offset = slice_no * size
            results = self._search_with_index(index, offset, queries, k,
                                              metric, allowed, stats, field)
            for qi, item in enumerate(results):
                per_query[qi].append(item)
            uncovered_from = max(uncovered_from, offset + index.ntotal)

        if uncovered_from < self.num_rows:
            tail_allowed = np.zeros_like(allowed)
            tail_allowed[uncovered_from:] = allowed[uncovered_from:]
            if tail_allowed.any():
                results = self._search_brute(field, queries, k, metric,
                                             tail_allowed, stats)
                for qi, item in enumerate(results):
                    per_query[qi].append(item)

        out: list[HitBatch] = []
        for qi in range(queries.shape[0]):
            batches = [b for b in per_query[qi] if len(b)]
            if not batches:
                out.append(HitBatch.empty())
                continue
            # Slices cover disjoint rows, so no dedup is needed here —
            # concatenate and reselect the k smallest.
            pks = np.concatenate([b.pks for b in batches])
            dists = np.concatenate([b.dists for b in batches])
            idx, vals = topk_smallest(dists, k)
            out.append(HitBatch(pks[idx], vals))
        return out

    def range_search(self, field: str, query: np.ndarray,
                     threshold: float, metric: MetricType,
                     filter_mask: Optional[np.ndarray] = None,
                     stats: Optional[SearchStats] = None,
                     ) -> HitBatch:
        """All live rows with adjusted distance <= ``threshold`` (exact).

        Range semantics need every qualifying row, so the scan is always
        exact over the allowed rows; returns a :class:`HitBatch` sorted
        ascending.
        """
        stats = stats if stats is not None else SearchStats()
        stats.delete_filter_hits += self.num_deleted
        allowed = self._allowed_mask(filter_mask)
        rows = np.flatnonzero(allowed)
        if not len(rows):
            return HitBatch.empty()
        if field in self._consolidated:
            stats.cache_hits += 1
        else:
            stats.cache_misses += 1
        query = np.asarray(query, dtype=np.float32).reshape(1, -1)
        data = self.column(field)[rows]
        dists = adjusted_distances(query, data, metric)[0]
        stats.brute_scans += 1
        stats.rows_scanned += len(rows)
        stats.bytes_materialized += int(data.nbytes)
        stats.float_comparisons += len(rows)
        hit = np.flatnonzero(dists <= threshold)
        order = hit[np.argsort(dists[hit], kind="stable")]
        return HitBatch(self.pk_array[rows[order]],
                        dists[order].astype(np.float32))

    def fetch_rows(self, pks: Sequence) -> dict:
        """Field values of the given live primary keys.

        Returns pk -> {field: value} for the pks present (and not
        deleted) in this segment; absent pks are simply omitted.
        """
        out: dict = {}
        fields = [f for f in self.schema.fields if not f.is_primary]
        columns = {f.name: self.column(f.name) for f in fields}
        for pk in pks:
            row = self._pk_rows.get(pk)
            if row is None or self._deleted[row]:
                continue
            values = {}
            for field in fields:
                column = columns[field.name]
                if isinstance(column, np.ndarray):
                    values[field.name] = column[row].copy() \
                        if column.ndim == 2 else column[row]
                else:
                    values[field.name] = column[row]
            out[pk] = values
        return out

    def memory_bytes(self) -> int:
        """Rough resident size (placement/balancing input)."""
        total = 0
        for field in self.schema.fields:
            if field.is_primary:
                continue
            value = self.column(field.name)
            if isinstance(value, np.ndarray):
                total += value.nbytes
            else:
                total += sum(len(s) for s in value)
        return total


def _merge_stats(into: SearchStats, other: SearchStats) -> None:
    into.add(other)
