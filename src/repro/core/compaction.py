"""Segment compaction (Section 3.1).

"As some segments may be small (e.g., when insertion has a low arrival
rate), Manu merges small segments into larger ones for search efficiency."
Compaction also purges rows whose deletion ratio crossed the rebuild
threshold (Section 3.5: the index is rebuilt "when a sufficient number of
its entities have been deleted").

:class:`CompactionPolicy` groups sealed segments worth merging;
:func:`compact_segments` performs one merge at the binlog level: read the
group's columns, drop deleted rows, write a fresh segment binlog, and
return its manifest so coordinators can swap routing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.config import SegmentConfig
from repro.log.binlog import BinlogManifest, BinlogReader, BinlogWriter
from repro.storage.object_store import ObjectStore

_compact_seq = itertools.count(1)


@dataclass(frozen=True)
class SegmentMeta:
    """What the policy needs to know about one sealed segment."""

    segment_id: str
    num_rows: int
    num_deleted: int = 0

    @property
    def live_rows(self) -> int:
        return self.num_rows - self.num_deleted

    @property
    def delete_ratio(self) -> float:
        return self.num_deleted / self.num_rows if self.num_rows else 0.0


class CompactionPolicy:
    """Chooses groups of sealed segments to merge."""

    def __init__(self, config: SegmentConfig | None = None,
                 delete_rebuild_ratio: float = 0.2) -> None:
        self.config = config if config is not None else SegmentConfig()
        self.delete_rebuild_ratio = delete_rebuild_ratio

    def plan(self, segments: Iterable[SegmentMeta]) -> list[list[str]]:
        """Groups of segment ids to merge (possibly singleton groups).

        Small segments are packed together up to the target size; a segment
        past the delete-ratio threshold is compacted alone (rewritten
        without its dead rows).
        """
        groups: list[list[str]] = []
        small: list[SegmentMeta] = []
        for meta in sorted(segments, key=lambda m: m.segment_id):
            if meta.num_rows == 0:
                continue
            if meta.delete_ratio >= self.delete_rebuild_ratio:
                groups.append([meta.segment_id])
            elif meta.num_rows < self.config.compaction_min_size:
                small.append(meta)

        bucket: list[SegmentMeta] = []
        total = 0
        for meta in small:
            if bucket and total + meta.live_rows > \
                    self.config.compaction_target_size:
                if len(bucket) > 1:
                    groups.append([m.segment_id for m in bucket])
                bucket = []
                total = 0
            bucket.append(meta)
            total += meta.live_rows
        if len(bucket) > 1:
            groups.append([m.segment_id for m in bucket])
        return groups


def compact_segments(store: ObjectStore, collection: str,
                     segment_ids: Sequence[str],
                     deleted_pks: Mapping[str, set] | set = frozenset(),
                     keep_inputs: Sequence[str] = (),
                     ) -> BinlogManifest:
    """Merge segments' binlogs into one new segment, dropping deletions.

    ``deleted_pks`` is either a flat set of primary keys or a mapping
    segment-id -> set.  The new segment id is ``compacted-<seq>``; input
    binlogs are deleted after the merged one is durably written — except
    those listed in ``keep_inputs`` (typically because a time-travel
    checkpoint still references them; retention removes them later).
    """
    if not segment_ids:
        raise ValueError("compaction needs at least one segment")
    reader = BinlogReader(store)
    writer = BinlogWriter(store)

    def dead_for(segment_id: str) -> set:
        if isinstance(deleted_pks, Mapping):
            return set(deleted_pks.get(segment_id, ()))
        return set(deleted_pks)

    all_pks: list = []
    merged: dict[str, list] = {}
    max_lsn = 0
    fields: tuple[str, ...] | None = None
    for segment_id in segment_ids:
        manifest = reader.read_manifest(collection, segment_id)
        if fields is None:
            fields = manifest.fields
            merged = {name: [] for name in fields}
        dead = dead_for(segment_id)
        keep = [i for i, pk in enumerate(manifest.pks) if pk not in dead]
        columns = reader.read_fields(collection, segment_id, manifest.fields)
        all_pks.extend(manifest.pks[i] for i in keep)
        for name in manifest.fields:
            values = columns[name]
            if isinstance(values, np.ndarray):
                merged[name].append(values[keep])
            else:
                merged[name].append([values[i] for i in keep])
        max_lsn = max(max_lsn, manifest.max_lsn)

    assert fields is not None
    out_columns: dict[str, object] = {}
    for name in fields:
        chunks = merged[name]
        if chunks and isinstance(chunks[0], np.ndarray):
            out_columns[name] = np.concatenate(chunks, axis=0)
        else:
            out_columns[name] = [x for chunk in chunks for x in chunk]

    new_id = f"compacted-{next(_compact_seq):06d}"
    manifest = writer.write_segment(collection, new_id, all_pks,
                                    out_columns, max_lsn)
    protected = set(keep_inputs)
    for segment_id in segment_ids:
        if segment_id not in protected:
            reader.delete_segment(collection, segment_id)
    return manifest
