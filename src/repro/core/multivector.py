"""Multi-vector search (Section 3.6).

An entity may be encoded by several vectors (e.g. an image embedding and a
text embedding); entity similarity is a composition of per-field
similarities.  Manu supports two strategies and picks one from the entity
similarity function:

* ``DECOMPOSED`` — when the composition is a *weighted sum of inner
  products*, the score decomposes exactly: scale each query sub-vector by
  its weight and sum per-field searches' contributions; implemented here by
  scoring each field with its own search and merging exact combined scores
  over the candidate union (exact because IP is linear in the query).
* ``RERANK`` (vector fusion fallback) — for non-decomposable compositions
  (e.g. weighted L2), search each field for an amplified candidate set,
  fetch the candidates' vectors for all fields, compute the true combined
  score, and rerank.

Both run over segments; amplification is the usual recall/cost knob.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.core.results import HitBatch
from repro.core.schema import MetricType
from repro.core.segment import Segment
from repro.index.base import SearchStats
from repro.index.distances import adjusted_distances


class MultiVectorStrategy(enum.Enum):
    DECOMPOSED = "decomposed"
    RERANK = "rerank"


@dataclass(frozen=True)
class MultiVectorQuery:
    """Queries and weights per vector field, plus the per-field metric."""

    fields: tuple[str, ...]
    queries: Mapping[str, np.ndarray]  # field -> (dim,) query vector
    weights: Mapping[str, float]
    metric: MetricType

    def __post_init__(self) -> None:
        missing = [f for f in self.fields
                   if f not in self.queries or f not in self.weights]
        if missing:
            raise ValueError(f"missing query/weight for fields {missing}")
        if any(self.weights[f] < 0 for f in self.fields):
            raise ValueError("weights must be non-negative")


def choose_strategy(query: MultiVectorQuery) -> MultiVectorStrategy:
    """Inner-product compositions decompose exactly; others rerank."""
    if query.metric is MetricType.INNER_PRODUCT:
        return MultiVectorStrategy.DECOMPOSED
    return MultiVectorStrategy.RERANK


def search_segment(segment: Segment, query: MultiVectorQuery, k: int,
                   amplification: int = 4,
                   stats: Optional[SearchStats] = None,
                   forced: Optional[MultiVectorStrategy] = None,
                   ) -> HitBatch:
    """Top-k entities of one segment under the combined similarity.

    Returns a :class:`HitBatch` of combined adjusted distances, sorted
    ascending.
    """
    stats = stats if stats is not None else SearchStats()
    strategy = forced if forced is not None else choose_strategy(query)
    k_amp = max(k * amplification, k)

    # Gather a candidate pool from per-field searches (tolist keeps the
    # pool native-typed so str-keyed ordering matches the pk column).
    pool: set = set()
    for field in query.fields:
        q = np.asarray(query.queries[field], dtype=np.float32)
        results = segment.search(field, q[None, :], k_amp, query.metric,
                                 stats=stats)
        pool.update(results[0].pks.tolist())
    if not pool:
        return HitBatch.empty()
    pks = sorted(pool, key=str)

    # Exact combined rescoring of the pool (both strategies end here; for
    # DECOMPOSED the per-field scores are exact contributions, for RERANK
    # this is the rerank step).
    del strategy  # the scoring below is exact for both strategies
    rows = [row for row in (segment._pk_rows.get(pk) for pk in pks)]
    combined = np.zeros(len(pks), dtype=np.float64)
    for field in query.fields:
        weight = float(query.weights[field])
        if weight == 0.0:
            continue
        data = segment.column(field)[rows]
        q = np.asarray(query.queries[field], dtype=np.float32)
        dists = adjusted_distances(q, data, query.metric)[0]
        stats.float_comparisons += len(pks)
        combined += weight * dists.astype(np.float64)

    order = np.argsort(combined, kind="stable")[:k]
    return HitBatch(np.asarray(pks)[order],
                    combined[order].astype(np.float32))
