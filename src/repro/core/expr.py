"""Boolean filter expressions for attribute filtering (Section 3.6).

``Collection.delete(expr)`` and ``Collection.query(vec, params, expr)`` take
boolean expressions over scalar fields, e.g.::

    price > 0 and label in ["book", "food"]
    10 <= price < 100 or not in_stock
    name like "acme%"

The module provides a tokenizer, a recursive-descent parser producing a small
AST, and a vectorized evaluator that turns an expression into a boolean numpy
mask over column arrays.  Parsing is independent of any schema; evaluation
raises :class:`ExpressionError` when a referenced field is missing.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping, Sequence, Union

import numpy as np

from repro.errors import ExpressionError

# ---------------------------------------------------------------------------
# tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<float>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<op><=|>=|==|!=|<|>|\(|\)|\[|\]|,|-)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "in", "like", "true", "false"}


@dataclass(frozen=True)
class Token:
    kind: str  # 'int' | 'float' | 'string' | 'op' | 'name' | 'kw' | 'end'
    value: str
    pos: int


def tokenize(text: str) -> list[Token]:
    """Split an expression into tokens, raising on illegal characters."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ExpressionError(
                f"illegal character {text[pos]!r} at position {pos} "
                f"in expression {text!r}")
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "ws":
            if kind == "name" and value.lower() in _KEYWORDS:
                tokens.append(Token("kw", value.lower(), pos))
            else:
                tokens.append(Token(kind, value, pos))
        pos = match.end()
    tokens.append(Token("end", "", pos))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

Literal = Union[int, float, str, bool]


@dataclass(frozen=True)
class Field:
    """Reference to a scalar column."""
    name: str


@dataclass(frozen=True)
class Const:
    """A literal constant."""
    value: Literal


@dataclass(frozen=True)
class Compare:
    """A (possibly chained) comparison: ``ops[i]`` joins operand i, i+1."""
    operands: tuple[Union[Field, Const], ...]
    ops: tuple[str, ...]


@dataclass(frozen=True)
class InList:
    """``field in [a, b, c]`` membership (negated for ``not in``)."""
    operand: Union[Field, Const]
    items: tuple[Literal, ...]
    negated: bool = False


@dataclass(frozen=True)
class Like:
    """SQL-style ``like`` with ``%`` wildcards at either end."""
    operand: Field
    pattern: str


@dataclass(frozen=True)
class Not:
    child: "Node"


@dataclass(frozen=True)
class And:
    children: tuple["Node", ...]


@dataclass(frozen=True)
class Or:
    children: tuple["Node", ...]


Node = Union[Compare, InList, Like, Not, And, Or, Field, Const]


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

_COMPARE_OPS = {"==", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, tokens: Sequence[Token], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._i = 0

    def _peek(self) -> Token:
        return self._tokens[self._i]

    def _next(self) -> Token:
        token = self._tokens[self._i]
        self._i += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._next()
        if token.kind != kind or (value is not None and token.value != value):
            raise ExpressionError(
                f"expected {value or kind} at position {token.pos} "
                f"in {self._text!r}, found {token.value!r}")
        return token

    def parse(self) -> Node:
        node = self._or_expr()
        trailing = self._peek()
        if trailing.kind != "end":
            raise ExpressionError(
                f"unexpected trailing {trailing.value!r} at "
                f"position {trailing.pos} in {self._text!r}")
        return node

    def _or_expr(self) -> Node:
        children = [self._and_expr()]
        while self._peek().kind == "kw" and self._peek().value == "or":
            self._next()
            children.append(self._and_expr())
        return children[0] if len(children) == 1 else Or(tuple(children))

    def _and_expr(self) -> Node:
        children = [self._not_expr()]
        while self._peek().kind == "kw" and self._peek().value == "and":
            self._next()
            children.append(self._not_expr())
        return children[0] if len(children) == 1 else And(tuple(children))

    def _not_expr(self) -> Node:
        if self._peek().kind == "kw" and self._peek().value == "not":
            self._next()
            return Not(self._not_expr())
        return self._primary()

    def _primary(self) -> Node:
        token = self._peek()
        if token.kind == "op" and token.value == "(":
            self._next()
            node = self._or_expr()
            self._expect("op", ")")
            return self._maybe_comparison(node)
        operand = self._operand()
        return self._maybe_comparison(operand)

    def _operand(self) -> Union[Field, Const]:
        token = self._next()
        if token.kind == "op" and token.value == "-":
            number = self._next()
            if number.kind == "int":
                return Const(-int(number.value))
            if number.kind == "float":
                return Const(-float(number.value))
            raise ExpressionError(
                f"expected a number after '-' at position {number.pos} "
                f"in {self._text!r}")
        if token.kind == "name":
            return Field(token.value)
        if token.kind == "int":
            return Const(int(token.value))
        if token.kind == "float":
            return Const(float(token.value))
        if token.kind == "string":
            return Const(_unquote(token.value))
        if token.kind == "kw" and token.value in ("true", "false"):
            return Const(token.value == "true")
        raise ExpressionError(
            f"expected an operand at position {token.pos} "
            f"in {self._text!r}, found {token.value!r}")

    def _maybe_comparison(self, first: Node) -> Node:
        token = self._peek()
        # in / not in / like only make sense on operand heads
        if isinstance(first, (Field, Const)):
            if token.kind == "kw" and token.value == "in":
                self._next()
                return InList(first, self._literal_list(), negated=False)
            if (token.kind == "kw" and token.value == "not"
                    and self._tokens[self._i + 1].value == "in"):
                self._next()
                self._next()
                return InList(first, self._literal_list(), negated=True)
            if token.kind == "kw" and token.value == "like":
                self._next()
                pattern = self._expect("string")
                if not isinstance(first, Field):
                    raise ExpressionError("like requires a field operand")
                return Like(first, _unquote(pattern.value))
            if token.kind == "op" and token.value in _COMPARE_OPS:
                operands: list[Union[Field, Const]] = [first]
                ops: list[str] = []
                while (self._peek().kind == "op"
                       and self._peek().value in _COMPARE_OPS):
                    ops.append(self._next().value)
                    operands.append(self._operand())
                return Compare(tuple(operands), tuple(ops))
            if isinstance(first, Field):
                # bare boolean field reference
                return first
            if isinstance(first, Const) and isinstance(first.value, bool):
                return first
            raise ExpressionError(
                f"operand {first!r} is not a boolean expression "
                f"in {self._text!r}")
        return first

    def _literal_list(self) -> tuple[Literal, ...]:
        self._expect("op", "[")
        items: list[Literal] = []
        if not (self._peek().kind == "op" and self._peek().value == "]"):
            while True:
                operand = self._operand()
                if not isinstance(operand, Const):
                    raise ExpressionError(
                        "in-lists may only contain literals")
                items.append(operand.value)
                token = self._next()
                if token.kind == "op" and token.value == "]":
                    break
                if not (token.kind == "op" and token.value == ","):
                    raise ExpressionError(
                        f"expected ',' or ']' at position {token.pos}")
        else:
            self._next()
        return tuple(items)


def _unquote(raw: str) -> str:
    body = raw[1:-1]
    return body.replace('\\"', '"').replace("\\'", "'").replace("\\\\", "\\")


def parse(text: str) -> Node:
    """Parse a filter expression into an AST."""
    if not text or not text.strip():
        raise ExpressionError("empty filter expression")
    return _Parser(tokenize(text), text).parse()


# ---------------------------------------------------------------------------
# evaluation
# ---------------------------------------------------------------------------

def fields_referenced(node: Node) -> set[str]:
    """The set of column names an expression reads."""
    if isinstance(node, Field):
        return {node.name}
    if isinstance(node, Const):
        return set()
    if isinstance(node, Compare):
        out: set[str] = set()
        for operand in node.operands:
            out |= fields_referenced(operand)
        return out
    if isinstance(node, InList):
        return fields_referenced(node.operand)
    if isinstance(node, Like):
        return {node.operand.name}
    if isinstance(node, Not):
        return fields_referenced(node.child)
    if isinstance(node, (And, Or)):
        out = set()
        for child in node.children:
            out |= fields_referenced(child)
        return out
    raise ExpressionError(f"unknown AST node {node!r}")


def _column(columns: Mapping[str, object], name: str, n: int) -> np.ndarray:
    try:
        raw = columns[name]
    except KeyError:
        raise ExpressionError(f"unknown field {name!r} in filter") from None
    arr = np.asarray(raw)
    if arr.shape[0] != n:
        raise ExpressionError(
            f"column {name!r} has {arr.shape[0]} rows, expected {n}")
    return arr


def _operand_values(operand: Union[Field, Const],
                    columns: Mapping[str, object], n: int) -> np.ndarray:
    if isinstance(operand, Field):
        return _column(columns, operand.name, n)
    return np.full(n, operand.value)


_OP_FUNCS = {
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def evaluate(node: Node, columns: Mapping[str, object],
             n: int) -> np.ndarray:
    """Evaluate an AST into a boolean mask of length ``n``.

    ``columns`` maps field names to arrays (numpy arrays or lists) holding
    the scalar values of each entity in order.
    """
    if isinstance(node, Field):
        values = _column(columns, node.name, n)
        if values.dtype != np.bool_:
            raise ExpressionError(
                f"field {node.name!r} used as boolean but has "
                f"dtype {values.dtype}")
        return values
    if isinstance(node, Const):
        if not isinstance(node.value, bool):
            raise ExpressionError(
                f"constant {node.value!r} is not a boolean expression")
        return np.full(n, node.value, dtype=bool)
    if isinstance(node, Compare):
        mask = np.ones(n, dtype=bool)
        left = _operand_values(node.operands[0], columns, n)
        for op, rhs in zip(node.ops, node.operands[1:]):
            right = _operand_values(rhs, columns, n)
            mask &= _OP_FUNCS[op](left, right)
            left = right
        return mask
    if isinstance(node, InList):
        values = _operand_values(node.operand, columns, n)
        mask = np.isin(values, np.asarray(list(node.items)))
        return ~mask if node.negated else mask
    if isinstance(node, Like):
        values = _column(columns, node.operand.name, n)
        return _like_mask(values, node.pattern)
    if isinstance(node, Not):
        return ~evaluate(node.child, columns, n)
    if isinstance(node, And):
        mask = np.ones(n, dtype=bool)
        for child in node.children:
            mask &= evaluate(child, columns, n)
        return mask
    if isinstance(node, Or):
        mask = np.zeros(n, dtype=bool)
        for child in node.children:
            mask |= evaluate(child, columns, n)
        return mask
    raise ExpressionError(f"unknown AST node {node!r}")


def _like_mask(values: np.ndarray, pattern: str) -> np.ndarray:
    """Vectorized LIKE with ``%`` wildcards at the ends (or exact match)."""
    strings = values.astype(str)
    starts = pattern.startswith("%")
    ends = pattern.endswith("%")
    core = pattern.strip("%")
    if "%" in core:
        regex = re.compile(
            "^" + ".*".join(re.escape(p) for p in pattern.split("%")) + "$")
        return np.fromiter((bool(regex.match(s)) for s in strings),
                           dtype=bool, count=len(strings))
    if starts and ends:
        return np.char.find(strings, core) >= 0
    if ends:
        return np.char.startswith(strings, core)
    if starts:
        return np.char.endswith(strings, core)
    return strings == core


class FilterExpression:
    """A parsed, reusable filter with convenience evaluation helpers."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.ast = parse(text)
        self.fields = frozenset(fields_referenced(self.ast))

    def mask(self, columns: Mapping[str, object], n: int) -> np.ndarray:
        """Boolean mask of the entities passing the filter."""
        return evaluate(self.ast, columns, n)

    def __repr__(self) -> str:
        return f"FilterExpression({self.text!r})"
