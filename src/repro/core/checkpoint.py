"""Time travel: checkpoints + WAL replay (Section 4.3).

"Manu allows users to specify a target physical time T for database
restore, and jointly uses checkpoint and log replay for rollback.  We mark
each segment with its progress L and periodically checkpoint the segment
map for a collection ... To restore the database at time T, we read the
closest checkpoint before T, load all segments in the segment map and
replay the WAL log for each segment from its local progress L."

Pieces:

* :class:`CheckpointManager` — periodically persists the collection's
  *segment map* (segment routes + progress, and per-channel replay
  offsets), never the data itself, so checkpoints are tiny and segments
  are shared between checkpoints;
* **delete delta logs** — deletions that target already-flushed segments
  are appended (pk, ts) to per-shard delta blobs by the data nodes, so a
  restore can re-apply them without replaying the whole WAL;
* :class:`TimeTravel` — performs the restore: load flushed binlogs from
  the checkpointed segment map, replay each WAL channel from the recorded
  offset applying records with LSN <= T, apply delete deltas, and return
  the reconstructed segments;
* :func:`apply_retention` — drops checkpoints, delta logs and WAL entries
  older than a configured expiration period.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.config import SegmentConfig
from repro.core.schema import CollectionSchema
from repro.core.segment import Segment
from repro.core.tso import Timestamp
from repro.errors import TimeTravelError
from repro.log.binlog import BinlogReader
from repro.log.broker import LogBroker
from repro.log.wal import BatchRecord, DeleteRecord, InsertRecord, \
    shard_channel
from repro.storage.object_store import ObjectStore

_delta_seq = itertools.count()


# ---------------------------------------------------------------------------
# delete delta logs
# ---------------------------------------------------------------------------

def write_delete_delta(store: ObjectStore, collection: str, shard: int,
                       entries: list[tuple[object, int]]) -> None:
    """Append deletions (pk, packed ts) that missed every growing segment."""
    if not entries:
        return
    seq = next(_delta_seq)
    key = f"delta/{collection}/shard-{shard}/{seq:08d}.json"
    store.put(key, json.dumps([[pk, ts] for pk, ts in entries]).encode())


def read_delete_deltas(store: ObjectStore,
                       collection: str) -> list[tuple[object, int]]:
    """All persisted delete deltas for a collection, in write order."""
    out: list[tuple[object, int]] = []
    for key in store.list(f"delta/{collection}/"):
        for pk, ts in json.loads(store.get(key).decode()):
            out.append((pk, ts))
    return out


# ---------------------------------------------------------------------------
# checkpoints
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Checkpoint:
    """One checkpoint of a collection's segment map."""

    collection: str
    ts: int  # packed timestamp of the checkpoint
    flushed_segments: tuple[str, ...]
    channel_offsets: Mapping[str, int]  # WAL replay start per channel

    def to_json(self) -> bytes:
        return json.dumps({
            "collection": self.collection,
            "ts": self.ts,
            "flushed_segments": list(self.flushed_segments),
            "channel_offsets": dict(self.channel_offsets),
        }).encode()

    @staticmethod
    def from_json(raw: bytes) -> "Checkpoint":
        data = json.loads(raw.decode())
        return Checkpoint(
            collection=data["collection"],
            ts=data["ts"],
            flushed_segments=tuple(data["flushed_segments"]),
            channel_offsets=data["channel_offsets"],
        )


class CheckpointManager:
    """Writes and looks up segment-map checkpoints in the object store."""

    def __init__(self, store: ObjectStore) -> None:
        self._store = store

    def write(self, checkpoint: Checkpoint) -> str:
        key = (f"checkpoints/{checkpoint.collection}/"
               f"{checkpoint.ts:020d}.json")
        self._store.put(key, checkpoint.to_json())
        return key

    def list_checkpoints(self, collection: str) -> list[Checkpoint]:
        keys = self._store.list(f"checkpoints/{collection}/")
        return [Checkpoint.from_json(self._store.get(k)) for k in keys]

    def latest_before(self, collection: str,
                      ts: int) -> Optional[Checkpoint]:
        """The newest checkpoint with ``checkpoint.ts <= ts``."""
        best: Optional[Checkpoint] = None
        for checkpoint in self.list_checkpoints(collection):
            if checkpoint.ts <= ts and (best is None
                                        or checkpoint.ts > best.ts):
                best = checkpoint
        return best


# ---------------------------------------------------------------------------
# restore
# ---------------------------------------------------------------------------

class TimeTravel:
    """Restores a collection's state at a target time from checkpoints."""

    def __init__(self, store: ObjectStore, broker: LogBroker,
                 num_shards: int,
                 segment_config: Optional[SegmentConfig] = None) -> None:
        self._store = store
        self._broker = broker
        self._num_shards = num_shards
        self._reader = BinlogReader(store)
        self._checkpoints = CheckpointManager(store)
        self._segment_config = segment_config

    def restore(self, collection: str, schema: CollectionSchema,
                target_ms: float) -> dict[str, Segment]:
        """Collection state at physical time ``target_ms`` as segments.

        Raises :class:`TimeTravelError` when no checkpoint precedes the
        target or when the WAL needed for replay has been expired.
        """
        target_ts = Timestamp.from_physical(target_ms).pack()
        checkpoint = self._checkpoints.latest_before(collection, target_ts)
        if checkpoint is None:
            raise TimeTravelError(
                f"no checkpoint of {collection!r} at or before "
                f"{target_ms}ms")

        segments: dict[str, Segment] = {}

        def get_segment(segment_id: str) -> Segment:
            if segment_id not in segments:
                segment = Segment(segment_id, collection, schema,
                                  self._segment_config)
                segment.temp_index_enabled = False
                segments[segment_id] = segment
            return segments[segment_id]

        # 1. Load flushed segments from their binlogs (shared snapshots).
        for segment_id in checkpoint.flushed_segments:
            manifest = self._reader.read_manifest(collection, segment_id)
            columns = self._reader.read_fields(collection, segment_id,
                                               manifest.fields)
            segment = get_segment(segment_id)
            segment.append(list(manifest.pks), columns, manifest.max_lsn)

        # 2. Replay the WAL tail of each shard channel from its progress.
        for shard in range(self._num_shards):
            channel = shard_channel(collection, shard)
            if not self._broker.has_channel(channel):
                continue
            start = checkpoint.channel_offsets.get(channel, 0)
            if start < self._broker.begin_offset(channel):
                raise TimeTravelError(
                    f"WAL of {channel} expired past offset {start}; "
                    "cannot replay")
            offset = start
            while True:
                entries = self._broker.read(channel, offset, 1024)
                if not entries:
                    break
                for entry in entries:
                    offset = entry.offset + 1
                    # Expand group-commit envelopes *before* the target
                    # cut: the envelope ts is the max inner LSN, so a
                    # batch straddling the target must still apply its
                    # inner records with ts <= target.
                    payload = entry.payload
                    inner = payload.records \
                        if isinstance(payload, BatchRecord) else (payload,)
                    for record in inner:
                        if record.ts > target_ts:
                            continue
                        if isinstance(record, InsertRecord):
                            segment = get_segment(record.segment_id)
                            if record.ts <= segment.max_lsn:
                                continue  # already covered by the binlog
                            segment.append(list(record.pks),
                                           dict(record.columns), record.ts)
                        elif isinstance(record, DeleteRecord):
                            for segment in segments.values():
                                segment.apply_delete(record.pks, record.ts)

        # 3. Apply persisted delete deltas with ts <= target.
        for pk, ts in read_delete_deltas(self._store, collection):
            if ts <= target_ts:
                for segment in segments.values():
                    segment.apply_delete([pk], ts)

        for segment in segments.values():
            segment.seal()
        return segments


def apply_retention(store: ObjectStore, broker: LogBroker, collection: str,
                    num_shards: int, expire_before_ms: float,
                    live_segments: Optional[set[str]] = None) -> int:
    """Expire checkpoints/deltas/WAL older than a physical time; returns
    the number of expired objects.

    "Users can also specify an expiration period to delete outdated log and
    segments to reduce storage consumption."  WAL channels are truncated up
    to the replay offset of the oldest *surviving* checkpoint, so every
    remaining checkpoint stays restorable.  When ``live_segments`` (the
    collection's current flushed set) is given, binlogs of segments that
    are neither live nor referenced by a surviving checkpoint — i.e.
    compaction inputs kept only for old checkpoints — are deleted too.
    """
    expire_ts = Timestamp.from_physical(expire_before_ms).pack()
    manager = CheckpointManager(store)
    checkpoints = manager.list_checkpoints(collection)
    survivors = [c for c in checkpoints if c.ts >= expire_ts]
    dropped = 0
    for checkpoint in checkpoints:
        if checkpoint.ts < expire_ts:
            store.delete(f"checkpoints/{collection}/{checkpoint.ts:020d}.json")
            dropped += 1
    if survivors:
        for shard in range(num_shards):
            channel = shard_channel(collection, shard)
            if not broker.has_channel(channel):
                continue
            safe = min(c.channel_offsets.get(channel, 0) for c in survivors)
            dropped += broker.truncate(channel, safe)
    if live_segments is not None:
        referenced = set(live_segments)
        for checkpoint in survivors:
            referenced.update(checkpoint.flushed_segments)
        from repro.log.binlog import BinlogReader
        reader = BinlogReader(store)
        for segment_id in reader.list_segments(collection):
            if segment_id not in referenced:
                reader.delete_segment(collection, segment_id)
                dropped += 1
    return dropped
