"""Attribute-filtering strategies (Section 3.6).

"Manu supports three strategies for attribute filtering and uses a
cost-based model to choose the most suitable strategy for each segment":

* ``PRE_FILTER`` — evaluate the predicate first, then brute-force scan only
  the passing rows.  Wins when the filter is selective (few rows pass):
  cost is roughly ``selectivity * n * dim`` MACs.
* ``POST_FILTER`` — run the vector index with an amplified ``k`` and drop
  non-passing hits afterwards.  Wins when almost everything passes: cost is
  the index's sub-linear search amplified by ``1 / selectivity``.
* ``SCAN_FILTER`` — hand the row mask to the index search, which skips
  masked rows during candidate collection and escalates to an exact scan
  only if starved (the middle ground).

The chooser estimates each cost from the predicate's selectivity (measured
on the segment's attribute columns — cheap relative to vector math) and the
segment's index state, and picks the minimum.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.expr import FilterExpression
from repro.core.segment import Segment


class FilterStrategy(enum.Enum):
    PRE_FILTER = "pre_filter"
    POST_FILTER = "post_filter"
    SCAN_FILTER = "scan_filter"


@dataclass(frozen=True)
class FilterPlan:
    """The chosen strategy with its inputs (exposed for explain/tests)."""

    strategy: FilterStrategy
    selectivity: float
    estimated_cost: float
    mask: np.ndarray


def _range_bounds(node) -> Optional[tuple[str, Optional[float], bool,
                                          Optional[float], bool]]:
    """Decompose a comparison into (field, low, incl, high, incl).

    Handles the index-friendly shapes ``field op const`` (possibly
    chained, e.g. ``10 < price <= 20``) on a single field; returns None
    for anything else.
    """
    from repro.core.expr import Compare, Const, Field
    if not isinstance(node, Compare):
        return None
    field_name: Optional[str] = None
    low: Optional[float] = None
    high: Optional[float] = None
    include_low = include_high = True
    for left, op, right in zip(node.operands, node.ops,
                               node.operands[1:]):
        if isinstance(left, Field) and isinstance(right, Const):
            field, const, direction = left, right, op
        elif isinstance(left, Const) and isinstance(right, Field):
            flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                    "==": "=="}
            if op not in flip:
                return None
            field, const, direction = right, left, flip[op]
        else:
            return None
        if field_name is None:
            field_name = field.name
        elif field_name != field.name:
            return None
        if not isinstance(const.value, (int, float)) \
                or isinstance(const.value, bool):
            return None
        value = float(const.value)
        if direction == "==":
            low = high = value
        elif direction == "<":
            high, include_high = value, False
        elif direction == "<=":
            high, include_high = value, True
        elif direction == ">":
            low, include_low = value, False
        elif direction == ">=":
            low, include_low = value, True
        else:
            return None
    if field_name is None:
        return None
    return field_name, low, include_low, high, include_high


def attr_index_mask(segment: Segment, expr: FilterExpression
                    ) -> Optional[np.ndarray]:
    """Evaluate an index-friendly predicate via attribute indexes.

    Covers single-field numeric ranges (Sorted List / B-tree shapes) and
    label equality/membership (inverted label index) on sealed segments;
    returns None when the predicate is not index-friendly, in which case
    the caller falls back to full column evaluation.
    """
    from repro.core.expr import Compare, Const, Field, InList
    from repro.index.attr import LabelIndex, SortedListIndex
    ast = expr.ast
    n = segment.num_rows

    if isinstance(ast, Compare):
        bounds = _range_bounds(ast)
        if bounds is None:
            return None
        field, low, include_low, high, include_high = bounds
        index = segment.attr_index(field)
        if not isinstance(index, SortedListIndex):
            return None
        rows = index.range(low, high, include_low=include_low,
                           include_high=include_high)
    elif isinstance(ast, InList) and isinstance(ast.operand, Field):
        index = segment.attr_index(ast.operand.name)
        if not isinstance(index, LabelIndex):
            return None
        labels = [item for item in ast.items if isinstance(item, str)]
        if len(labels) != len(ast.items):
            return None
        rows = index.isin(labels)
        if ast.negated:
            mask = np.ones(n, dtype=bool)
            mask[rows] = False
            return mask
    else:
        return None
    mask = np.zeros(n, dtype=bool)
    mask[rows] = True
    return mask


def compute_mask(segment: Segment, expr: FilterExpression) -> np.ndarray:
    """Evaluate the predicate over a segment's rows.

    Sealed segments answer index-friendly predicates (single-field
    numeric ranges, label membership) from their attribute indexes
    (Section 3.5: "Manu also supports indexes on the attribute field ...
    to accelerate attribute-based filtering"); everything else falls back
    to vectorized evaluation over the scalar columns.
    """
    fast = attr_index_mask(segment, expr)
    if fast is not None:
        return fast
    return expr.mask(segment.scalar_columns(), segment.num_rows)


def _index_search_cost(segment: Segment, field: str, k: int) -> float:
    """Rough MAC estimate of one indexed top-k on this segment."""
    n = max(segment.num_rows, 1)
    index = segment.index_for(field)
    if index is None and segment.num_temp_indexes(field) == 0:
        return float(n)  # will brute force anyway
    index_type = index.index_type if index is not None else "IVF_FLAT"
    if index_type.startswith("IVF") or index_type in ("IMI", "SSD"):
        # nprobe/nlist fraction of the lists plus the centroid pass.
        nprobe = getattr(index, "nprobe", 8) if index is not None else 4
        nlist = getattr(index, "nlist", 128) if index is not None else 16
        return n * min(1.0, nprobe / max(nlist, 1)) + nlist
    if index_type in ("HNSW", "NSG", "NGT", "IVF_HNSW"):
        ef = getattr(index, "ef_search", 64)
        return float(ef * np.log2(max(n, 2)))
    return float(n)  # flat / quantizer scans


def choose_strategy(segment: Segment, field: str, k: int,
                    expr: FilterExpression) -> FilterPlan:
    """Cost-based strategy selection for one segment."""
    mask = compute_mask(segment, expr)
    n = max(segment.num_rows, 1)
    passing = int(mask.sum())
    selectivity = passing / n

    pre_cost = float(passing)  # exact scan of passing rows
    base = _index_search_cost(segment, field, k)
    if selectivity <= 0.0:
        return FilterPlan(FilterStrategy.PRE_FILTER, 0.0, 0.0, mask)
    post_cost = base * min(n / max(passing, 1), 8.0)  # amplification capped
    scan_cost = base * min(1.0 / max(selectivity, 1e-6), 3.0)

    costs = {
        FilterStrategy.PRE_FILTER: pre_cost,
        FilterStrategy.POST_FILTER: post_cost,
        FilterStrategy.SCAN_FILTER: scan_cost,
    }
    if not segment.has_index(field) and segment.num_temp_indexes(field) == 0:
        # No index: every strategy degenerates to a scan; PRE is cheapest.
        strategy = FilterStrategy.PRE_FILTER
    else:
        strategy = min(costs, key=lambda s: costs[s])
    return FilterPlan(strategy, selectivity, costs[strategy], mask)


def filtered_search(segment: Segment, field: str, queries: np.ndarray,
                    k: int, metric, expr: Optional[FilterExpression],
                    stats=None,
                    forced: Optional[FilterStrategy] = None):
    """Search one segment honoring a filter with the chosen strategy.

    ``forced`` overrides the cost-based choice (used by the ablation
    benchmark comparing strategies head-to-head).
    Returns (one :class:`~repro.core.results.HitBatch` per query,
    plan or None).
    """
    if expr is None:
        return segment.search(field, queries, k, metric, stats=stats), None
    plan = choose_strategy(segment, field, k, expr)
    strategy = forced if forced is not None else plan.strategy
    force_brute = strategy is FilterStrategy.PRE_FILTER
    results = segment.search(field, queries, k, metric,
                             filter_mask=plan.mask, stats=stats,
                             force_brute=force_brute)
    return results, plan
