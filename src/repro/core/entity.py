"""Entity-batch validation and normalization.

The proxy validates user insert payloads against the collection schema
before anything reaches the log: vector dimensions, scalar types, column
alignment, primary-key presence (or auto-id generation), and duplicate keys
within a batch.  The result is a normalized ``EntityBatch`` whose columns
are numpy arrays / lists aligned with its primary keys.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.schema import CollectionSchema, DataType
from repro.errors import SchemaError

_auto_id_counter = itertools.count(1)


def reset_auto_id_counter() -> None:
    """Reset the process-wide auto-id sequence (test isolation only)."""
    global _auto_id_counter
    _auto_id_counter = itertools.count(1)


@dataclass(frozen=True)
class EntityBatch:
    """A validated batch: primary keys plus aligned columns."""

    pks: tuple
    columns: Mapping[str, Any]

    @property
    def num_rows(self) -> int:
        return len(self.pks)


def _coerce_scalar_column(name: str, dtype: DataType,
                          values: Sequence) -> Any:
    if dtype is DataType.INT64:
        arr = np.asarray(values)
        if arr.dtype.kind not in "iu":
            if arr.dtype.kind == "f" and np.allclose(arr, arr.astype(np.int64)):
                arr = arr.astype(np.int64)
            else:
                raise SchemaError(
                    f"field {name!r}: expected integers, got {arr.dtype}")
        return arr.astype(np.int64)
    if dtype is DataType.FLOAT:
        arr = np.asarray(values, dtype=np.float64)
        return arr
    if dtype is DataType.BOOL:
        arr = np.asarray(values)
        if arr.dtype != np.bool_:
            raise SchemaError(
                f"field {name!r}: expected booleans, got {arr.dtype}")
        return arr
    if dtype is DataType.STRING:
        out = []
        for value in values:
            if not isinstance(value, str):
                raise SchemaError(
                    f"field {name!r}: expected strings, got "
                    f"{type(value).__name__}")
            out.append(value)
        return out
    raise SchemaError(f"field {name!r}: unsupported dtype {dtype}")


def _coerce_vector_column(name: str, dim: int, values: Any) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float32)
    if arr.ndim != 2:
        raise SchemaError(
            f"vector field {name!r}: expected a 2-D array, got "
            f"shape {arr.shape}")
    if arr.shape[1] != dim:
        raise SchemaError(
            f"vector field {name!r}: expected dim {dim}, got {arr.shape[1]}")
    if not np.isfinite(arr).all():
        raise SchemaError(f"vector field {name!r}: non-finite values")
    return arr


def validate_batch(schema: CollectionSchema,
                   data: Mapping[str, Any]) -> EntityBatch:
    """Validate a field-name -> values mapping against ``schema``.

    Auto-id schemas must not provide a primary key column (one is
    generated); explicit-key schemas must.  All columns must have equal row
    counts and no unknown fields are accepted.
    """
    data = dict(data)
    primary = schema.primary_field

    expected = {f.name for f in schema.fields}
    if schema.auto_id:
        if primary.name in data:
            raise SchemaError(
                "collection uses auto-generated ids; do not supply "
                f"{primary.name!r}")
        expected.discard(primary.name)
    unknown = set(data) - expected
    if unknown:
        raise SchemaError(f"unknown fields in insert: {sorted(unknown)}")
    missing = expected - set(data)
    if missing:
        raise SchemaError(f"missing fields in insert: {sorted(missing)}")

    lengths = {name: len(np.asarray(values)) if not isinstance(values, list)
               else len(values) for name, values in data.items()}
    counts = set(lengths.values())
    if len(counts) > 1:
        raise SchemaError(f"ragged insert batch: {lengths}")
    num_rows = counts.pop() if counts else 0
    if num_rows == 0:
        raise SchemaError("empty insert batch")

    columns: dict[str, Any] = {}
    for field in schema.fields:
        if field.name == primary.name:
            continue
        values = data[field.name]
        if field.dtype.is_vector:
            columns[field.name] = _coerce_vector_column(
                field.name, field.dim, values)
        else:
            columns[field.name] = _coerce_scalar_column(
                field.name, field.dtype, values)

    if schema.auto_id:
        pks = tuple(next(_auto_id_counter) for _ in range(num_rows))
    else:
        raw = data[primary.name]
        if primary.dtype is DataType.INT64:
            pk_arr = _coerce_scalar_column(primary.name, primary.dtype, raw)
            pks = tuple(int(v) for v in pk_arr)
        else:
            pks = tuple(_coerce_scalar_column(primary.name, primary.dtype,
                                              raw))
        if len(set(pks)) != len(pks):
            raise SchemaError("duplicate primary keys within a batch")

    return EntityBatch(pks=pks, columns=columns)
