"""Search results and the two-phase top-k reduce (Section 3.6).

Query nodes produce *segment-wise* top-k lists, merge them into *node-wise*
lists, and the proxy merges node lists into the global answer.  All three
steps are the same operation — :func:`merge_topk` — which also removes
duplicate primary keys, because "a segment can reside on more than one
query node ... the proxies remove duplicate result vectors for a query".

Partial results travel the whole reduce path as :class:`HitBatch`es —
parallel ``pks`` / ``dists`` ndarrays sorted by ascending adjusted
distance — so merging is numpy concatenation + stable sorting instead of
per-hit Python-object churn.  User-facing :class:`SearchHit` objects only
materialize at the :class:`SearchResult` boundary (or through a batch's
sequence protocol, which exists for tests and debugging).

Hits carry *adjusted distances* (smaller = more similar) internally and
expose the user-facing score through :meth:`SearchHit.score_for`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.core.schema import MetricType
from repro.index.distances import to_user_score


@dataclass(frozen=True, order=True)
class SearchHit:
    """One result entity: adjusted distance first so hits sort naturally."""

    adjusted_distance: float
    pk: object = field(compare=False)

    def score_for(self, metric: MetricType) -> float:
        """User-facing score (L2 distance or similarity) for this hit."""
        return float(to_user_score(self.adjusted_distance, metric))


class HitBatch:
    """One partial top-k result as parallel ndarrays, sorted ascending.

    The contract every producer (segment searches) and consumer (node and
    proxy merges) relies on:

    * ``dists`` is 1-D, float, and sorted ascending (adjusted distances);
    * ``pks`` is parallel to ``dists`` (same length, pk of each hit);
    * duplicate pks may appear *across* batches (replicas, segment copies
      during redistribution) — :func:`merge_topk` removes them; a single
      segment never emits the same pk twice.

    Batches are cheap views over the arrays the distance kernels already
    produced; nothing is copied per hit.  The sequence protocol
    (``len``/``iter``/``[i]``) materializes :class:`SearchHit` objects on
    demand so existing object-oriented call sites and tests keep working.
    """

    __slots__ = ("pks", "dists")

    def __init__(self, pks, dists) -> None:
        self.pks = np.asarray(pks)
        self.dists = np.asarray(dists)

    @classmethod
    def empty(cls) -> "HitBatch":
        return cls(np.empty(0, dtype=object),
                   np.empty(0, dtype=np.float32))

    @classmethod
    def from_hits(cls, hits: Iterable[SearchHit]) -> "HitBatch":
        """Pack already-sorted :class:`SearchHit`s into a batch."""
        hits = list(hits)
        if not hits:
            return cls.empty()
        pks = [h.pk for h in hits]
        arr = np.asarray(pks)
        if arr.dtype.kind in "US" \
                and not all(isinstance(pk, str) for pk in pks):
            # Heterogeneous pks: keep them as objects instead of letting
            # numpy silently stringify everything.
            arr = np.empty(len(pks), dtype=object)
            arr[:] = pks
        return cls(arr, np.asarray([h.adjusted_distance for h in hits]))

    @classmethod
    def from_unsorted(cls, pks, dists) -> "HitBatch":
        """Build a batch from parallel arrays in arbitrary order."""
        dists = np.asarray(dists)
        order = np.argsort(dists, kind="stable")
        return cls(np.asarray(pks)[order], dists[order])

    @classmethod
    def concat(cls, batches: Sequence["HitBatch"]) -> "HitBatch":
        """Stably merge sorted batches (no dedup), ordered by distance.

        Ties keep batch order then within-batch order — the same order a
        stable streaming merge of the sorted inputs would produce.
        """
        batches = [b for b in batches if len(b)]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        pks = np.concatenate([b.pks for b in batches])
        dists = np.concatenate([b.dists for b in batches])
        order = np.argsort(dists, kind="stable")
        return cls(pks[order], dists[order])

    def topk(self, k: int) -> "HitBatch":
        """The first ``k`` hits (the batch is already sorted)."""
        if k >= len(self):
            return self
        k = max(k, 0)
        return HitBatch(self.pks[:k], self.dists[:k])

    def to_hits(self) -> list[SearchHit]:
        """Materialize user-facing hit objects (the SearchResult boundary).

        ``tolist()`` converts numpy scalars back to native Python types so
        pks round-trip exactly (JSON encoding, dict keys, equality).
        """
        return [SearchHit(float(d), pk)
                for pk, d in zip(self.pks.tolist(), self.dists.tolist())]

    def __len__(self) -> int:
        return int(self.pks.shape[0])

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self):
        return iter(self.to_hits())

    def __getitem__(self, i: int) -> SearchHit:
        pk = self.pks[i]
        if isinstance(pk, np.generic):
            pk = pk.item()
        return SearchHit(float(self.dists[i]), pk)

    def __eq__(self, other) -> bool:
        if isinstance(other, HitBatch):
            return (len(self) == len(other)
                    and bool(np.all(self.pks == other.pks))
                    and bool(np.all(self.dists == other.dists)))
        if isinstance(other, (list, tuple)):
            return self.to_hits() == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"HitBatch(n={len(self)})"


@dataclass
class ReduceStats:
    """Work counters of one (or several accumulated) top-k merges.

    ``hits_deduped`` counts duplicates over the *full* candidate set, not
    just the first ``k`` — the definition both the vectorized and the
    reference reduce agree on (see :func:`merge_topk_reference`).
    """

    batches_merged: int = 0
    candidates_in: int = 0
    hits_deduped: int = 0
    hits_out: int = 0

    def as_dict(self) -> dict:
        return {"batches_merged": self.batches_merged,
                "candidates_in": self.candidates_in,
                "hits_deduped": self.hits_deduped,
                "hits_out": self.hits_out}


@dataclass
class SearchResult:
    """Top-k hits for one query plus execution metadata.

    ``profile`` is the request's :class:`repro.profiling.QueryProfile`
    when the search ran with ``explain=True`` (all results of one batched
    request share the same profile object), else None.
    """

    hits: list[SearchHit]
    metric: MetricType
    latency_ms: float = 0.0
    consistency_wait_ms: float = 0.0
    segments_searched: int = 0
    profile: object = None

    @property
    def pks(self) -> list:
        return [hit.pk for hit in self.hits]

    @property
    def scores(self) -> list[float]:
        return [hit.score_for(self.metric) for hit in self.hits]

    @property
    def distances(self) -> list[float]:
        """Adjusted distances (internal convention)."""
        return [hit.adjusted_distance for hit in self.hits]

    def __len__(self) -> int:
        return len(self.hits)

    def __iter__(self):
        return iter(self.hits)


Partial = Union[HitBatch, Iterable[SearchHit]]


def _first_occurrence(pks: np.ndarray):
    """Indices keeping the first occurrence of each pk, order preserved.

    ``pks`` is already sorted by ascending distance, so "first" is "best
    copy".  Homogeneous pk arrays (int64 / unicode — the only dtypes a
    typed pk column produces) use ``np.unique``, whose ``return_index``
    points at first occurrences; object arrays (heterogeneous pks, not
    sortable by numpy) fall back to a set walk.  Returns None when every
    pk is already unique (the common case — no copy needed).
    """
    n = len(pks)
    if n <= 1:
        return None
    if pks.dtype.kind == "O":
        seen: set = set()
        keep = [i for i, pk in enumerate(pks.tolist())
                if pk not in seen and not seen.add(pk)]
        if len(keep) == n:
            return None
        return np.asarray(keep, dtype=np.int64)
    unique_first = np.unique(pks, return_index=True)[1]
    if len(unique_first) == n:
        return None
    unique_first.sort()
    return unique_first


def merge_topk(partials: Sequence[Partial], k: int,
               stats: Optional[ReduceStats] = None) -> HitBatch:
    """Merge sorted partial results into a deduplicated global top-k.

    Each partial (a :class:`HitBatch`, or an iterable of sorted
    :class:`SearchHit`s) must be sorted by adjusted distance ascending —
    the contract of segment/node searches.  When the same primary key
    appears in several partials (hot replicas, segment copies during
    redistribution), only its best hit survives.

    The merge is array-native: concatenate, one stable sort by distance
    (ties resolve to partial order then within-partial order, exactly like
    a stable streaming merge), first-occurrence dedup on pk, truncate to
    ``k``.  A full stable sort — not an ``argpartition`` preselection — is
    used on purpose: partition boundaries are unstable under distance
    ties, and the reduce must stay hit-for-hit identical to
    :func:`merge_topk_reference`.

    With ``stats`` the merge additionally accumulates its work counters
    (profiling plane); the default None keeps the hot path untouched.
    """
    if k <= 0:
        if stats is not None:
            stats.batches_merged += len(partials)
        return HitBatch.empty()
    batches = [p if isinstance(p, HitBatch) else HitBatch.from_hits(p)
               for p in partials]
    merged = HitBatch.concat(batches)
    if stats is not None:
        stats.batches_merged += len(batches)
        stats.candidates_in += len(merged)
    if not merged:
        return merged
    keep = _first_occurrence(merged.pks)
    if keep is not None:
        if stats is not None:
            stats.hits_deduped += len(merged) - len(keep)
        merged = HitBatch(merged.pks[keep], merged.dists[keep])
    out = merged.topk(k)
    if stats is not None:
        stats.hits_out += len(out)
    return out


def merge_topk_reference(partials: Sequence[Iterable[SearchHit]],
                         k: int,
                         stats: Optional[ReduceStats] = None
                         ) -> list[SearchHit]:
    """Object-based reduce, retained as the oracle for the vectorized path.

    This is the pre-HitBatch implementation (``heapq.merge`` over
    :class:`SearchHit` objects with a seen-set dedup).  The equivalence
    suite asserts :func:`merge_topk` matches it hit-for-hit, and
    ``benchmarks/bench_reduce_path.py`` measures the speedup against it.

    With ``stats`` the merge is consumed past the ``k``-th unique hit so
    ``hits_deduped`` counts duplicates over the full candidate set — the
    vectorized path dedups before truncating, and the short-circuit would
    otherwise undercount duplicates that sort after the cutoff.  The
    returned hits are unchanged either way; without ``stats`` the merge
    still stops at ``k`` (the fast oracle the benches time).
    """
    if k <= 0:
        if stats is not None:
            stats.batches_merged += len(list(partials))
        return []
    partials = [list(p) for p in partials] if stats is not None \
        else list(partials)
    merged = heapq.merge(*partials)
    out: list[SearchHit] = []
    seen: set = set()
    dupes = 0
    for hit in merged:
        if hit.pk in seen:
            dupes += 1
            continue
        seen.add(hit.pk)
        if len(out) < k:
            out.append(hit)
            if len(out) >= k and stats is None:
                break
    if stats is not None:
        stats.batches_merged += len(partials)
        stats.candidates_in += sum(len(p) for p in partials)
        stats.hits_deduped += dupes
        stats.hits_out += len(out)
    return out


def hits_from_arrays(pks: Sequence, adjusted: Sequence[float]
                     ) -> list[SearchHit]:
    """Build a sorted hit list from parallel pk / distance arrays."""
    hits = [SearchHit(float(d), pk) for pk, d in zip(pks, adjusted)]
    hits.sort()
    return hits
