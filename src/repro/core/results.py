"""Search results and the two-phase top-k reduce (Section 3.6).

Query nodes produce *segment-wise* top-k lists, merge them into *node-wise*
lists, and the proxy merges node lists into the global answer.  All three
steps are the same operation — :func:`merge_topk` — which also removes
duplicate primary keys, because "a segment can reside on more than one
query node ... the proxies remove duplicate result vectors for a query".

Hits carry *adjusted distances* (smaller = more similar) internally and
expose the user-facing score through :meth:`SearchHit.score_for`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.schema import MetricType
from repro.index.distances import to_user_score


@dataclass(frozen=True, order=True)
class SearchHit:
    """One result entity: adjusted distance first so hits sort naturally."""

    adjusted_distance: float
    pk: object = field(compare=False)

    def score_for(self, metric: MetricType) -> float:
        """User-facing score (L2 distance or similarity) for this hit."""
        return float(to_user_score(self.adjusted_distance, metric))


@dataclass
class SearchResult:
    """Top-k hits for one query plus execution metadata."""

    hits: list[SearchHit]
    metric: MetricType
    latency_ms: float = 0.0
    consistency_wait_ms: float = 0.0
    segments_searched: int = 0

    @property
    def pks(self) -> list:
        return [hit.pk for hit in self.hits]

    @property
    def scores(self) -> list[float]:
        return [hit.score_for(self.metric) for hit in self.hits]

    @property
    def distances(self) -> list[float]:
        """Adjusted distances (internal convention)."""
        return [hit.adjusted_distance for hit in self.hits]

    def __len__(self) -> int:
        return len(self.hits)

    def __iter__(self):
        return iter(self.hits)


def merge_topk(partials: Sequence[Iterable[SearchHit]],
               k: int) -> list[SearchHit]:
    """Merge sorted partial hit lists into a deduplicated global top-k.

    Each partial list must be sorted by adjusted distance ascending (the
    contract of segment/node searches).  When the same primary key appears
    in several lists (hot replicas, segment copies during redistribution),
    only its best hit survives.
    """
    if k <= 0:
        return []
    merged = heapq.merge(*partials)
    out: list[SearchHit] = []
    seen: set = set()
    for hit in merged:
        if hit.pk in seen:
            continue
        seen.add(hit.pk)
        out.append(hit)
        if len(out) >= k:
            break
    return out


def hits_from_arrays(pks: Sequence, adjusted: Sequence[float]
                     ) -> list[SearchHit]:
    """Build a sorted hit list from parallel pk / distance arrays."""
    hits = [SearchHit(float(d), pk) for pk, d in zip(pks, adjusted)]
    hits.sort()
    return hits
