"""Scalar quantization (SQ) and IVF-SQ.

SQ "maps each dimension of vector (data types typically int32 and float) to
a single byte": per-dimension min/max are learned at train time and values
are linearly quantized to uint8, a 4x memory reduction.  Search decodes
candidates back to float32 on the fly (the paper's SSD index uses exactly
this compression to cut bytes fetched per bucket).
"""

from __future__ import annotations

import numpy as np

from repro.core.schema import MetricType
from repro.errors import IndexBuildError
from repro.index.base import VectorIndex, register_index
from repro.index.distances import adjusted_distances, topk_smallest
from repro.index.kmeans import kmeans


class ScalarQuantizer:
    """Per-dimension uint8 linear quantizer."""

    def __init__(self, dim: int) -> None:
        self.dim = dim
        self._lo: np.ndarray | None = None
        self._scale: np.ndarray | None = None
        self.is_trained = False

    def train(self, data: np.ndarray) -> None:
        """Learn per-dimension ranges from training data."""
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 2 or data.shape[1] != self.dim:
            raise IndexBuildError(
                f"SQ: expected (n, {self.dim}), got {data.shape}")
        lo = data.min(axis=0)
        hi = data.max(axis=0)
        span = hi - lo
        span[span == 0] = 1.0
        self._lo = lo
        self._scale = span / 255.0
        self.is_trained = True

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Quantize to uint8 codes, clipping values outside the ranges."""
        self._require_trained()
        data = np.asarray(data, dtype=np.float32)
        steps = np.rint((data - self._lo) / self._scale)
        return np.clip(steps, 0, 255).astype(np.uint8)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Dequantize codes back to approximate float32 vectors."""
        self._require_trained()
        return (codes.astype(np.float32) * self._scale + self._lo)

    def _require_trained(self) -> None:
        if not self.is_trained:
            raise IndexBuildError("scalar quantizer not trained")

    def max_error(self) -> np.ndarray:
        """Worst-case absolute quantization error per dimension."""
        self._require_trained()
        return self._scale / 2.0


@register_index("SQ8")
class SqIndex(VectorIndex):
    """Brute-force scan over SQ-compressed vectors."""

    def __init__(self, metric: MetricType, dim: int) -> None:
        super().__init__(metric, dim)
        self.sq = ScalarQuantizer(dim)
        self._codes: np.ndarray | None = None

    def build(self, data: np.ndarray) -> None:
        arr = self._check_build_input(data)
        self.sq.train(arr)
        self._codes = self.sq.encode(arr)
        self.ntotal = arr.shape[0]
        self.is_built = True

    def search(self, queries: np.ndarray, k: int
               ) -> tuple[np.ndarray, np.ndarray]:
        queries = self._check_query_input(queries)
        self.stats.reset()
        decoded = self.sq.decode(self._codes)
        dists = adjusted_distances(queries, decoded, self.metric)
        self.stats.quantized_comparisons = queries.shape[0] * self.ntotal
        ids, vals = topk_smallest(dists, k)
        return self._pad_results(ids.astype(np.int64), vals, k)


@register_index("IVF_SQ8")
class IvfSqIndex(VectorIndex):
    """Inverted file whose lists hold SQ-compressed vectors."""

    def __init__(self, metric: MetricType, dim: int, nlist: int = 128,
                 nprobe: int = 8, seed: int = 0) -> None:
        super().__init__(metric, dim)
        self.nlist = nlist
        self.nprobe = nprobe
        self.seed = seed
        self.sq = ScalarQuantizer(dim)
        self._centroids: np.ndarray | None = None
        self._lists: list[np.ndarray] = []
        self._list_codes: list[np.ndarray] = []

    def build(self, data: np.ndarray) -> None:
        arr = self._check_build_input(data)
        k = min(self.nlist, arr.shape[0])
        coarse = kmeans(arr, k, seed=self.seed)
        self._centroids = coarse.centroids
        self.sq.train(arr)
        codes = self.sq.encode(arr)
        self._lists = []
        self._list_codes = []
        for cluster in range(coarse.k):
            members = np.flatnonzero(coarse.assignments == cluster)
            self._lists.append(members.astype(np.int64))
            self._list_codes.append(codes[members])
        self.ntotal = arr.shape[0]
        self.is_built = True

    def search(self, queries: np.ndarray, k: int,
               nprobe: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        queries = self._check_query_input(queries)
        nprobe = min(nprobe or self.nprobe, len(self._lists))
        self.stats.reset()
        centroid_dists = adjusted_distances(queries, self._centroids,
                                            self.metric)
        self.stats.float_comparisons += (queries.shape[0]
                                         * self._centroids.shape[0])
        probe_lists, _ = topk_smallest(centroid_dists, nprobe)

        nq = queries.shape[0]
        all_ids = np.full((nq, k), -1, dtype=np.int64)
        all_dists = np.full((nq, k), np.inf, dtype=np.float32)
        for qi in range(nq):
            cand_ids: list[np.ndarray] = []
            cand_vecs: list[np.ndarray] = []
            for cluster in probe_lists[qi]:
                members = self._lists[cluster]
                if len(members):
                    cand_ids.append(members)
                    cand_vecs.append(self.sq.decode(self._list_codes[cluster]))
            if not cand_ids:
                continue
            ids = np.concatenate(cand_ids)
            vecs = np.concatenate(cand_vecs, axis=0)
            dists = adjusted_distances(queries[qi], vecs, self.metric)[0]
            self.stats.quantized_comparisons += len(ids)
            idx, vals = topk_smallest(dists, k)
            all_ids[qi, :len(idx)] = ids[idx]
            all_dists[qi, :len(idx)] = vals
        return all_ids, all_dists
