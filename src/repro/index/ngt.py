"""NGT-style proximity graph (Iwasaki & Miyazaki).

Yahoo's NGT combines a k-NN graph with degree adjustment and a coarse seed
structure.  Our implementation captures those ingredients: a bidirected
k-NN graph with in/out-degree caps (the ONNG "path adjustment" effect of
keeping graphs sparse but navigable), plus a small random sample of *seed*
nodes ranked per query to start the beam — the role NGT's VP-tree plays.
This is the index backing the Vald baseline in the Figure 8 reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.core.schema import MetricType
from repro.errors import IndexBuildError
from repro.index.base import VectorIndex, register_index
from repro.index.distances import adjusted_distances, topk_smallest
from repro.index.graph import beam_search, ensure_connected, exact_knn_graph


@register_index("NGT")
class NgtIndex(VectorIndex):
    """Degree-adjusted bidirected k-NN graph with sampled seeds."""

    def __init__(self, metric: MetricType, dim: int, edge_size: int = 24,
                 outdegree_limit: int = 48, num_seeds: int = 64,
                 ef_search: int = 64, seed: int = 0) -> None:
        super().__init__(metric, dim)
        if edge_size < 2:
            raise IndexBuildError(f"edge_size must be >= 2, got {edge_size}")
        self.edge_size = edge_size
        self.outdegree_limit = max(outdegree_limit, edge_size)
        self.num_seeds = num_seeds
        self.ef_search = ef_search
        self.seed = seed
        self._data: np.ndarray | None = None
        self._graph: list[np.ndarray] = []
        self._seeds: np.ndarray | None = None

    def build(self, data: np.ndarray) -> None:
        arr = self._check_build_input(data)
        n = arr.shape[0]
        self._data = arr
        knn = exact_knn_graph(arr, self.edge_size, self.metric)

        # Bidirect the graph, then cap out-degree keeping nearest edges.
        incoming: list[list[int]] = [[] for _ in range(n)]
        for node, neigh in enumerate(knn):
            for nb in neigh:
                incoming[int(nb)].append(node)
        graph: list[np.ndarray] = []
        for node in range(n):
            merged = np.unique(np.concatenate(
                [knn[node], np.asarray(incoming[node], dtype=np.int64)]
            )) if incoming[node] else knn[node]
            merged = merged[merged != node]
            if len(merged) > self.outdegree_limit:
                dists = adjusted_distances(arr[node], arr[merged],
                                           self.metric)[0]
                ids, _ = topk_smallest(dists, self.outdegree_limit)
                merged = merged[ids]
            graph.append(merged.astype(np.int64))

        rng = np.random.default_rng(self.seed)
        count = min(self.num_seeds, n)
        self._seeds = rng.choice(n, size=count, replace=False)
        ensure_connected(graph, arr, int(self._seeds[0]), self.metric)
        self._graph = graph
        self.ntotal = n
        self.is_built = True

    def search(self, queries: np.ndarray, k: int,
               ef_search: int | None = None
               ) -> tuple[np.ndarray, np.ndarray]:
        queries = self._check_query_input(queries)
        ef = max(ef_search or self.ef_search, k)
        self.stats.reset()
        nq = queries.shape[0]
        all_ids = np.full((nq, k), -1, dtype=np.int64)
        all_dists = np.full((nq, k), np.inf, dtype=np.float32)
        for qi in range(nq):
            q = queries[qi]
            seed_dists = adjusted_distances(q, self._data[self._seeds],
                                            self.metric)[0]
            self.stats.float_comparisons += len(self._seeds)
            # Enter from the few best seeds (the role of NGT's VP-tree):
            # multiple entries keep clustered datasets fully reachable.
            take = min(4, len(self._seeds))
            order = np.argsort(seed_dists, kind="stable")[:take]
            entries = [int(self._seeds[i]) for i in order]
            found = beam_search(self._graph, self._data, q, entries,
                                ef, self.metric, self.stats)
            for col, (dist, node) in enumerate(found[:k]):
                all_ids[qi, col] = node
                all_dists[qi, col] = dist
        return all_ids, all_dists
