"""Batched distance kernels.

Internal convention: every index works with *adjusted distances*, where
smaller always means more similar —

* Euclidean: squared L2 distance (monotone in true L2, cheaper);
* inner product: negated dot product;
* cosine: negated cosine similarity.

:func:`to_user_score` converts adjusted distances back to the value users
expect for the metric (true L2 distance, raw inner product, or cosine
similarity).
"""

from __future__ import annotations

import numpy as np

from repro.core.schema import MetricType


def _as_2d(x: np.ndarray) -> np.ndarray:
    arr = np.asarray(x, dtype=np.float32)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D array, got shape {arr.shape}")
    return arr


def squared_l2(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, shape (nq, nd).

    Uses the ``|q|^2 - 2 q.d + |d|^2`` expansion so the whole computation is
    one GEMM — the same trick SIMD-optimized engines rely on.
    """
    queries = _as_2d(queries)
    data = _as_2d(data)
    q_norms = np.einsum("ij,ij->i", queries, queries)
    d_norms = np.einsum("ij,ij->i", data, data)
    cross = queries @ data.T
    out = q_norms[:, None] - 2.0 * cross + d_norms[None, :]
    np.maximum(out, 0.0, out=out)
    return out


def inner_product(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Pairwise dot products, shape (nq, nd)."""
    return _as_2d(queries) @ _as_2d(data).T


def cosine(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarity, shape (nq, nd); zero vectors score 0."""
    queries = _as_2d(queries)
    data = _as_2d(data)
    q_norms = np.linalg.norm(queries, axis=1, keepdims=True)
    d_norms = np.linalg.norm(data, axis=1, keepdims=True)
    q_norms[q_norms == 0] = 1.0
    d_norms[d_norms == 0] = 1.0
    return (queries / q_norms) @ (data / d_norms).T


def adjusted_distances(queries: np.ndarray, data: np.ndarray,
                       metric: MetricType) -> np.ndarray:
    """Pairwise adjusted distances (smaller = more similar)."""
    if metric is MetricType.EUCLIDEAN:
        return squared_l2(queries, data)
    if metric is MetricType.INNER_PRODUCT:
        return -inner_product(queries, data)
    if metric is MetricType.COSINE:
        return -cosine(queries, data)
    raise ValueError(f"unknown metric {metric}")


def to_user_score(adjusted: np.ndarray, metric: MetricType) -> np.ndarray:
    """Convert adjusted distances back to user-facing scores."""
    adjusted = np.asarray(adjusted, dtype=np.float64)
    if metric is MetricType.EUCLIDEAN:
        return np.sqrt(np.maximum(adjusted, 0.0))
    return -adjusted


def topk_smallest(values: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Indices and values of the ``k`` smallest entries, sorted ascending.

    Uses ``argpartition`` for the selection then sorts only the winners —
    O(n + k log k) instead of a full sort.
    """
    values = np.asarray(values)
    n = values.shape[-1]
    k = min(k, n)
    if k <= 0:
        empty_idx = np.empty(0, dtype=np.int64)
        return empty_idx, values[..., empty_idx]
    part = np.argpartition(values, k - 1, axis=-1)[..., :k]
    part_vals = np.take_along_axis(values, part, axis=-1)
    order = np.argsort(part_vals, axis=-1, kind="stable")
    idx = np.take_along_axis(part, order, axis=-1)
    return idx, np.take_along_axis(values, idx, axis=-1)
