"""Vector and attribute indexes (Table 1).

From-scratch numpy implementations of every index family the paper lists:

* vector quantization: PQ, OPQ, RQ, SQ (:mod:`pq`, :mod:`opq`, :mod:`rq`,
  :mod:`sq`);
* inverted indexes: IVF-Flat, IVF-PQ, IVF-SQ, IVF-HNSW, IMI (:mod:`ivf`,
  :mod:`imi`, :mod:`ivf_hnsw`);
* proximity graphs: HNSW, NSG, NGT-like (:mod:`hnsw`, :mod:`nsg`,
  :mod:`ngt`);
* the SSD index (hierarchical k-means into 4 KB buckets with
  multi-assignment, Section 4.4) (:mod:`ssd`);
* numerical-attribute indexes: sorted list and B-tree (:mod:`attr`).

All vector indexes implement the :class:`repro.index.base.VectorIndex`
interface and register themselves with :func:`repro.index.base.create_index`
so worker nodes construct them by name from index params.
"""

from repro.index.base import VectorIndex, create_index, available_indexes
from repro.index.distances import adjusted_distances, to_user_score
from repro.index.flat import FlatIndex
from repro.index.ivf import IvfFlatIndex
from repro.index.pq import ProductQuantizer, IvfPqIndex
from repro.index.opq import OpqIndex
from repro.index.rq import ResidualQuantizer
from repro.index.sq import ScalarQuantizer, IvfSqIndex
from repro.index.imi import ImiIndex
from repro.index.hnsw import HnswIndex
from repro.index.nsg import NsgIndex
from repro.index.ngt import NgtIndex
from repro.index.ivf_hnsw import IvfHnswIndex
from repro.index.ssd import SsdIndex
from repro.index.composite import CompositeIndex
from repro.index.tiered import TieredIndex
from repro.index.attr import SortedListIndex, BTreeIndex, LabelIndex

__all__ = [
    "VectorIndex",
    "create_index",
    "available_indexes",
    "adjusted_distances",
    "to_user_score",
    "FlatIndex",
    "IvfFlatIndex",
    "ProductQuantizer",
    "IvfPqIndex",
    "OpqIndex",
    "ResidualQuantizer",
    "ScalarQuantizer",
    "IvfSqIndex",
    "ImiIndex",
    "HnswIndex",
    "NsgIndex",
    "NgtIndex",
    "IvfHnswIndex",
    "SsdIndex",
    "CompositeIndex",
    "TieredIndex",
    "SortedListIndex",
    "BTreeIndex",
    "LabelIndex",
]
