"""Modularized vector search (the paper's future-work direction, §7).

"We think vector search algorithms can be distilled into independent
components, e.g., compression for memory reduction and efficient
computation, indexing for limiting computation to a small portion of
vectors, and bucketing for grouping similar vectors. ... We will provide
a unified framework for vector search such that users can flexibly
combine different techniques."

This module is that framework:

* **compressors** — ``none`` (raw float32), ``sq`` (scalar), ``pq``
  (product), ``rq`` (residual) — all adapting the existing codecs to one
  encode/decode protocol;
* **bucketers** — ``kmeans`` (IVF-style flat centroid scan), ``imi``
  (two-codebook multi-index cells), ``graph`` (centroids navigated with a
  small HNSW) — all mapping vectors to buckets and queries to probe
  lists;
* :class:`CompositeIndex` — any compressor x bucketer combination as a
  regular :class:`VectorIndex` (registered as ``"COMPOSITE"``), so e.g.
  existing names decompose as IVF_SQ8 = kmeans x sq, IMI = imi x none,
  IVF_HNSW = graph x none — and the six combinations the catalog does
  *not* ship (e.g. imi x pq, graph x rq) come for free.
"""

from __future__ import annotations

import heapq
from typing import Protocol

import numpy as np

from repro.core.schema import MetricType
from repro.errors import IndexBuildError
from repro.index.base import VectorIndex, register_index
from repro.index.distances import adjusted_distances, squared_l2, \
    topk_smallest
from repro.index.hnsw import HnswIndex
from repro.index.kmeans import kmeans
from repro.index.pq import ProductQuantizer
from repro.index.rq import ResidualQuantizer
from repro.index.sq import ScalarQuantizer


# ---------------------------------------------------------------------------
# compressors
# ---------------------------------------------------------------------------

class Compressor(Protocol):
    """Lossy vector codec used inside buckets."""

    quantized: bool  # whether the cost model's fast path applies

    def train(self, data: np.ndarray) -> None: ...
    def encode(self, data: np.ndarray) -> np.ndarray: ...
    def decode(self, codes: np.ndarray) -> np.ndarray: ...


class NoneCompressor:
    """Raw float32 passthrough."""

    quantized = False

    def train(self, data: np.ndarray) -> None:
        pass

    def encode(self, data: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(data, dtype=np.float32)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        return codes


class SqCompressor:
    """One byte per dimension."""

    quantized = True

    def __init__(self, dim: int) -> None:
        self._sq = ScalarQuantizer(dim)

    def train(self, data: np.ndarray) -> None:
        self._sq.train(data)

    def encode(self, data: np.ndarray) -> np.ndarray:
        return self._sq.encode(data)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        return self._sq.decode(codes)


class PqCompressor:
    """``m`` bytes per vector."""

    quantized = True

    def __init__(self, dim: int, m: int = 8, seed: int = 0) -> None:
        self._pq = ProductQuantizer(dim, m=m, seed=seed)

    def train(self, data: np.ndarray) -> None:
        self._pq.train(data)

    def encode(self, data: np.ndarray) -> np.ndarray:
        return self._pq.encode(data)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        return self._pq.decode(codes)


class RqCompressor:
    """``stages`` bytes per vector, additive codebooks."""

    quantized = True

    def __init__(self, dim: int, stages: int = 4, seed: int = 0) -> None:
        self._rq = ResidualQuantizer(dim, stages=stages, seed=seed)

    def train(self, data: np.ndarray) -> None:
        self._rq.train(data)

    def encode(self, data: np.ndarray) -> np.ndarray:
        return self._rq.encode(data)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        return self._rq.decode(codes)


# ---------------------------------------------------------------------------
# bucketers
# ---------------------------------------------------------------------------

class Bucketer(Protocol):
    """Groups vectors into buckets; maps queries to probe lists."""

    num_buckets: int

    def fit(self, data: np.ndarray) -> np.ndarray:
        """Return per-row bucket assignments."""
        ...

    def probe(self, query: np.ndarray, nprobe: int,
              stats) -> list[int]:
        """Bucket ids to scan for a query, most promising first."""
        ...


class KMeansBucketer:
    """IVF-style flat centroid scan."""

    def __init__(self, metric: MetricType, nlist: int = 64,
                 seed: int = 0) -> None:
        self.metric = metric
        self.nlist = nlist
        self.seed = seed
        self.num_buckets = 0
        self._centroids: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> np.ndarray:
        result = kmeans(data, min(self.nlist, len(data)), seed=self.seed)
        self._centroids = result.centroids
        self.num_buckets = result.k
        return result.assignments

    def probe(self, query: np.ndarray, nprobe: int, stats) -> list[int]:
        dists = adjusted_distances(query, self._centroids, self.metric)[0]
        stats.float_comparisons += self.num_buckets
        ids, _ = topk_smallest(dists, min(nprobe, self.num_buckets))
        return [int(i) for i in ids]


class ImiBucketer:
    """Two-codebook product cells with multi-sequence probing."""

    def __init__(self, metric: MetricType, ksub: int = 16,
                 seed: int = 0) -> None:
        if metric is not MetricType.EUCLIDEAN:
            # The multi-sequence split relies on additive L2 halves.
            raise IndexBuildError("imi bucketer supports Euclidean only")
        self.metric = metric
        self.ksub = ksub
        self.seed = seed
        self.num_buckets = 0
        self._books: list[np.ndarray] = []
        self._half = 0
        self._cell_of: dict[tuple[int, int], int] = {}

    def fit(self, data: np.ndarray) -> np.ndarray:
        dim = data.shape[1]
        if dim % 2:
            raise IndexBuildError("imi bucketer needs an even dim")
        self._half = dim // 2
        first = kmeans(data[:, :self._half], min(self.ksub, len(data)),
                       seed=self.seed)
        second = kmeans(data[:, self._half:], min(self.ksub, len(data)),
                        seed=self.seed + 1)
        self._books = [first.centroids, second.centroids]
        assignments = np.empty(len(data), dtype=np.int64)
        self._cell_of = {}
        for row, (a, b) in enumerate(zip(first.assignments,
                                         second.assignments)):
            key = (int(a), int(b))
            if key not in self._cell_of:
                self._cell_of[key] = len(self._cell_of)
            assignments[row] = self._cell_of[key]
        self.num_buckets = len(self._cell_of)
        return assignments

    def probe(self, query: np.ndarray, nprobe: int, stats) -> list[int]:
        d1 = squared_l2(query[None, :self._half], self._books[0])[0]
        d2 = squared_l2(query[None, self._half:], self._books[1])[0]
        stats.float_comparisons += len(self._books[0]) + len(self._books[1])
        order1 = np.argsort(d1, kind="stable")
        order2 = np.argsort(d2, kind="stable")
        heap = [(float(d1[order1[0]] + d2[order2[0]]), 0, 0)]
        seen = {(0, 0)}
        out: list[int] = []
        while heap and len(out) < nprobe:
            _, i, j = heapq.heappop(heap)
            cell = self._cell_of.get((int(order1[i]), int(order2[j])))
            if cell is not None:
                out.append(cell)
            if i + 1 < len(order1) and (i + 1, j) not in seen:
                seen.add((i + 1, j))
                heapq.heappush(heap, (float(d1[order1[i + 1]]
                                            + d2[order2[j]]), i + 1, j))
            if j + 1 < len(order2) and (i, j + 1) not in seen:
                seen.add((i, j + 1))
                heapq.heappush(heap, (float(d1[order1[i]]
                                            + d2[order2[j + 1]]), i, j + 1))
        return out


class GraphBucketer:
    """k-means buckets whose centroids are navigated with a small HNSW."""

    def __init__(self, metric: MetricType, nlist: int = 128, M: int = 8,
                 ef_search: int = 48, seed: int = 0) -> None:
        self.metric = metric
        self.nlist = nlist
        self.seed = seed
        self.num_buckets = 0
        self._graph = HnswIndex(metric, 1, M=M, ef_search=ef_search,
                                seed=seed)

    def fit(self, data: np.ndarray) -> np.ndarray:
        result = kmeans(data, min(self.nlist, len(data)), seed=self.seed)
        self.num_buckets = result.k
        self._graph = HnswIndex(self.metric, data.shape[1],
                                M=self._graph.M,
                                ef_search=self._graph.ef_search,
                                seed=self.seed)
        self._graph.build(result.centroids)
        return result.assignments

    def probe(self, query: np.ndarray, nprobe: int, stats) -> list[int]:
        ids, _ = self._graph.search(query[None, :],
                                    min(nprobe, self.num_buckets))
        graph_stats = self._graph.stats
        stats.float_comparisons += graph_stats.float_comparisons
        stats.graph_hops += graph_stats.graph_hops
        return [int(i) for i in ids[0] if i >= 0]


# ---------------------------------------------------------------------------
# the composite index
# ---------------------------------------------------------------------------

_COMPRESSORS = ("none", "sq", "pq", "rq")
_BUCKETERS = ("kmeans", "imi", "graph")


@register_index("COMPOSITE")
class CompositeIndex(VectorIndex):
    """Any bucketer x compressor combination as one index."""

    def __init__(self, metric: MetricType, dim: int,
                 bucketer: str = "kmeans", compressor: str = "none",
                 nlist: int = 64, nprobe: int = 8, m: int = 8,
                 stages: int = 4, ksub: int = 16, seed: int = 0) -> None:
        super().__init__(metric, dim)
        if bucketer not in _BUCKETERS:
            raise IndexBuildError(
                f"unknown bucketer {bucketer!r}; pick from {_BUCKETERS}")
        if compressor not in _COMPRESSORS:
            raise IndexBuildError(
                f"unknown compressor {compressor!r}; "
                f"pick from {_COMPRESSORS}")
        self.bucketer_name = bucketer
        self.compressor_name = compressor
        self.nprobe = nprobe
        if bucketer == "kmeans":
            self.bucketer: Bucketer = KMeansBucketer(metric, nlist, seed)
        elif bucketer == "imi":
            self.bucketer = ImiBucketer(metric, ksub, seed)
        else:
            self.bucketer = GraphBucketer(metric, nlist, seed=seed)
        if compressor == "none":
            self.compressor: Compressor = NoneCompressor()
        elif compressor == "sq":
            self.compressor = SqCompressor(dim)
        elif compressor == "pq":
            self.compressor = PqCompressor(dim, m=m, seed=seed)
        else:
            self.compressor = RqCompressor(dim, stages=stages, seed=seed)
        self._bucket_rows: list[np.ndarray] = []
        self._bucket_codes: list[np.ndarray] = []

    def build(self, data: np.ndarray) -> None:
        arr = self._check_build_input(data)
        assignments = self.bucketer.fit(arr)
        self.compressor.train(arr)
        codes = self.compressor.encode(arr)
        self._bucket_rows = []
        self._bucket_codes = []
        for bucket in range(self.bucketer.num_buckets):
            rows = np.flatnonzero(assignments == bucket)
            self._bucket_rows.append(rows.astype(np.int64))
            self._bucket_codes.append(codes[rows])
        self.ntotal = arr.shape[0]
        self.is_built = True

    def search(self, queries: np.ndarray, k: int,
               nprobe: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        queries = self._check_query_input(queries)
        nprobe = nprobe or self.nprobe
        self.stats.reset()
        nq = queries.shape[0]
        all_ids = np.full((nq, k), -1, dtype=np.int64)
        all_dists = np.full((nq, k), np.inf, dtype=np.float32)
        for qi in range(nq):
            buckets = self.bucketer.probe(queries[qi], nprobe, self.stats)
            rows_parts = [self._bucket_rows[b] for b in buckets
                          if len(self._bucket_rows[b])]
            if not rows_parts:
                continue
            rows = np.concatenate(rows_parts)
            codes = np.concatenate(
                [self._bucket_codes[b] for b in buckets
                 if len(self._bucket_rows[b])], axis=0)
            decoded = self.compressor.decode(codes)
            dists = adjusted_distances(queries[qi], decoded,
                                       self.metric)[0]
            if self.compressor.quantized:
                self.stats.quantized_comparisons += len(rows)
            else:
                self.stats.float_comparisons += len(rows)
            idx, vals = topk_smallest(dists, k)
            all_ids[qi, :len(idx)] = rows[idx]
            all_dists[qi, :len(idx)] = vals
        return all_ids, all_dists

    def memory_bytes_estimate(self) -> int:
        """Compressed payload size (the memory knob users trade with)."""
        return sum(codes.nbytes for codes in self._bucket_codes)

    def describe(self) -> str:
        return f"{self.bucketer_name} x {self.compressor_name}"
