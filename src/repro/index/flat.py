"""FLAT: exact brute-force search.

The reference index: scans every vector.  Exact (recall 1.0 by definition),
used for growing-segment slices before a temporary index exists, as the
ground-truth oracle in tests, and as the recall baseline in benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.core.schema import MetricType
from repro.index.base import VectorIndex, register_index
from repro.index.distances import adjusted_distances, topk_smallest


@register_index("FLAT")
class FlatIndex(VectorIndex):
    """Exact scan over the raw vectors."""

    def __init__(self, metric: MetricType, dim: int) -> None:
        super().__init__(metric, dim)
        self._data: np.ndarray | None = None

    def build(self, data: np.ndarray) -> None:
        arr = self._check_build_input(data)
        self._data = arr
        self.ntotal = arr.shape[0]
        self.is_built = True

    def add(self, data: np.ndarray) -> None:
        """Append vectors (FLAT needs no training, so it can grow)."""
        arr = np.ascontiguousarray(data, dtype=np.float32)
        if not self.is_built:
            self.build(arr)
            return
        if arr.ndim != 2 or arr.shape[1] != self.dim:
            raise ValueError(f"expected (n, {self.dim}), got {arr.shape}")
        self._data = np.concatenate([self._data, arr], axis=0)
        self.ntotal = self._data.shape[0]

    def search(self, queries: np.ndarray, k: int
               ) -> tuple[np.ndarray, np.ndarray]:
        queries = self._check_query_input(queries)
        self.stats.reset()
        dists = adjusted_distances(queries, self._data, self.metric)
        self.stats.float_comparisons = queries.shape[0] * self.ntotal
        ids, vals = topk_smallest(dists, k)
        return self._pad_results(ids.astype(np.int64), vals, k)

    def reconstruct(self, idx: int) -> np.ndarray:
        """Return the stored vector at position ``idx``."""
        if self._data is None:
            raise ValueError("index not built")
        return self._data[idx].copy()
