"""Numerical-attribute indexes (Table 1: B-Tree, Sorted List).

Attribute filtering (Section 3.6) needs fast selection of the row ids whose
scalar value satisfies a range predicate.  Two structures from the paper:

* :class:`SortedListIndex` — values sorted once with their row ids; range
  queries are two bisections (ideal for sealed, immutable segments);
* :class:`BTreeIndex` — a real B-tree supporting incremental inserts (for
  growing segments) with the same range API;
* :class:`LabelIndex` — an inverted map from label value to a row bitmap,
  covering equality/membership predicates on string labels.

All return sorted numpy arrays of row ids.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Optional

import numpy as np


class SortedListIndex:
    """Immutable sorted (value, row-id) list with bisection range queries."""

    def __init__(self, values: Iterable[float]) -> None:
        arr = np.asarray(list(values), dtype=np.float64)
        order = np.argsort(arr, kind="stable")
        self._values = arr[order]
        self._ids = order.astype(np.int64)
        self.n = len(arr)

    def range(self, low: Optional[float] = None, high: Optional[float] = None,
              include_low: bool = True,
              include_high: bool = True) -> np.ndarray:
        """Row ids with value in the given (optionally open) interval."""
        lo_idx = 0
        hi_idx = self.n
        if low is not None:
            side = "left" if include_low else "right"
            lo_idx = int(np.searchsorted(self._values, low, side=side))
        if high is not None:
            side = "right" if include_high else "left"
            hi_idx = int(np.searchsorted(self._values, high, side=side))
        return np.sort(self._ids[lo_idx:hi_idx])

    def equal(self, value: float) -> np.ndarray:
        """Row ids with exactly this value."""
        return self.range(value, value)

    def min_value(self) -> float:
        return float(self._values[0])

    def max_value(self) -> float:
        return float(self._values[-1])

    def selectivity(self, low: Optional[float],
                    high: Optional[float]) -> float:
        """Fraction of rows passing the range (cost-model input)."""
        if self.n == 0:
            return 0.0
        return len(self.range(low, high)) / self.n


class _BTreeNode:
    __slots__ = ("keys", "values", "children", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.keys: list[float] = []
        self.values: list[list[int]] = []  # row ids per key (leaf only)
        self.children: list["_BTreeNode"] = []
        self.is_leaf = is_leaf


class BTreeIndex:
    """A B-tree of order ``order`` mapping values to row-id lists.

    Classic insertion with pre-emptive splits; duplicate values accumulate
    row ids on one key.  Range queries walk the tree in order.
    """

    def __init__(self, order: int = 32) -> None:
        if order < 4:
            raise ValueError(f"order must be >= 4, got {order}")
        self.order = order
        self._root = _BTreeNode(is_leaf=True)
        self.n = 0

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def insert(self, value: float, row_id: int) -> None:
        """Add one (value, row id) pair."""
        value = float(value)
        root = self._root
        if len(root.keys) >= self.order - 1:
            new_root = _BTreeNode(is_leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
        self._insert_nonfull(self._root, value, row_id)
        self.n += 1

    def insert_many(self, values: Iterable[float],
                    row_ids: Iterable[int]) -> None:
        for value, row_id in zip(values, row_ids):
            self.insert(value, int(row_id))

    def _split_child(self, parent: _BTreeNode, index: int) -> None:
        child = parent.children[index]
        mid = len(child.keys) // 2
        sibling = _BTreeNode(is_leaf=child.is_leaf)
        if child.is_leaf:
            # Leaf split keeps the median in the right sibling (B+-style).
            sibling.keys = child.keys[mid:]
            sibling.values = child.values[mid:]
            child.keys = child.keys[:mid]
            child.values = child.values[:mid]
            up_key = sibling.keys[0]
        else:
            up_key = child.keys[mid]
            sibling.keys = child.keys[mid + 1:]
            sibling.children = child.children[mid + 1:]
            child.keys = child.keys[:mid]
            child.children = child.children[:mid + 1]
        parent.keys.insert(index, up_key)
        parent.children.insert(index + 1, sibling)

    def _insert_nonfull(self, node: _BTreeNode, value: float,
                        row_id: int) -> None:
        while not node.is_leaf:
            idx = bisect_right(node.keys, value)
            child = node.children[idx]
            if len(child.keys) >= self.order - 1:
                self._split_child(node, idx)
                if value >= node.keys[idx]:
                    idx += 1
                child = node.children[idx]
            node = child
        idx = bisect_left(node.keys, value)
        if idx < len(node.keys) and node.keys[idx] == value:
            node.values[idx].append(row_id)
        else:
            node.keys.insert(idx, value)
            node.values.insert(idx, [row_id])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def range(self, low: Optional[float] = None, high: Optional[float] = None,
              include_low: bool = True,
              include_high: bool = True) -> np.ndarray:
        """Row ids with value in the interval, sorted."""
        out: list[int] = []

        def visit(node: _BTreeNode) -> None:
            if node.is_leaf:
                for key, ids in zip(node.keys, node.values):
                    if low is not None and (key < low
                                            or (key == low
                                                and not include_low)):
                        continue
                    if high is not None and (key > high
                                             or (key == high
                                                 and not include_high)):
                        continue
                    out.extend(ids)
                return
            for idx, key in enumerate(node.keys):
                if low is None or key >= low:
                    visit(node.children[idx])
                if high is not None and key > high:
                    return
            visit(node.children[-1])

        visit(self._root)
        return np.sort(np.asarray(out, dtype=np.int64))

    def equal(self, value: float) -> np.ndarray:
        return self.range(value, value)

    def depth(self) -> int:
        """Tree height (balance diagnostics)."""
        node = self._root
        depth = 1
        while not node.is_leaf:
            node = node.children[0]
            depth += 1
        return depth


class LabelIndex:
    """Inverted label -> row-id index for string attributes."""

    def __init__(self, labels: Iterable[str] = ()) -> None:
        self._rows: dict[str, list[int]] = {}
        self.n = 0
        for label in labels:
            self.add(label)

    def add(self, label: str) -> None:
        """Append the next row's label."""
        self._rows.setdefault(label, []).append(self.n)
        self.n += 1

    def equal(self, label: str) -> np.ndarray:
        """Rows with exactly this label."""
        return np.asarray(self._rows.get(label, ()), dtype=np.int64)

    def isin(self, labels: Iterable[str]) -> np.ndarray:
        """Rows whose label is in the given set, sorted."""
        parts = [self.equal(label) for label in labels]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def vocabulary(self) -> list[str]:
        return sorted(self._rows)

    def selectivity(self, labels: Iterable[str]) -> float:
        if self.n == 0:
            return 0.0
        return len(self.isin(labels)) / self.n
