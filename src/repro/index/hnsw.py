"""HNSW: hierarchical navigable small world graph (Malkov & Yashunin).

The high-recall/low-latency proximity graph of Table 1 and the index whose
``M``/``ef`` knobs the paper's auto-configuration tool tunes.  Standard
construction: each node draws a geometric level; upper layers form coarse
navigation graphs and layer 0 holds up to ``2M`` neighbours per node chosen
with the select-neighbours heuristic; queries greedily descend the layers
and run a best-first beam of width ``ef_search`` at layer 0.

The implementation is tuned for pure Python: distance evaluations against
candidate sets use a dedicated small-batch kernel, the visited set is a
numpy bool array, and the select-neighbours heuristic is vectorized over
the full candidate list — together these keep builds usable at the
10k-100k-vector scales of our experiments.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.schema import MetricType
from repro.errors import IndexBuildError
from repro.index.base import VectorIndex, register_index


def _dist_block(q: np.ndarray, block: np.ndarray,
                metric: MetricType) -> np.ndarray:
    """Adjusted distances of one query against a small candidate block."""
    if metric is MetricType.EUCLIDEAN:
        diff = block - q
        return np.einsum("ij,ij->i", diff, diff)
    if metric is MetricType.INNER_PRODUCT:
        return -(block @ q)
    # cosine
    qn = q / (np.linalg.norm(q) or 1.0)
    norms = np.linalg.norm(block, axis=1)
    norms[norms == 0] = 1.0
    return -((block @ qn) / norms)


@register_index("HNSW")
class HnswIndex(VectorIndex):
    """Hierarchical navigable small world graph."""

    def __init__(self, metric: MetricType, dim: int, M: int = 16,
                 ef_construction: int = 100, ef_search: int = 64,
                 seed: int = 0) -> None:
        super().__init__(metric, dim)
        if M < 2:
            raise IndexBuildError(f"M must be >= 2, got {M}")
        self.M = M
        self.max_m0 = 2 * M
        self.ef_construction = max(ef_construction, M)
        self.ef_search = ef_search
        self.seed = seed
        self._ml = 1.0 / np.log(M)
        self._data: np.ndarray | None = None
        self._levels: np.ndarray | None = None
        # _graph[level][node] -> list[int] of neighbour ids
        self._graph: list[dict[int, list[int]]] = []
        self._entry: int = -1
        self._max_level: int = -1

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------

    def build(self, data: np.ndarray) -> None:
        arr = self._check_build_input(data)
        rng = np.random.default_rng(self.seed)
        n = arr.shape[0]
        self._data = arr
        self._levels = np.floor(
            -np.log(rng.uniform(1e-12, 1.0, size=n)) * self._ml
        ).astype(np.int64)
        self._max_level = -1
        self._graph = []
        self._entry = -1
        for node in range(n):
            self._insert(node)
        self.ntotal = n
        self.is_built = True

    def _dist(self, q: np.ndarray, ids) -> np.ndarray:
        block = self._data[np.asarray(ids, dtype=np.int64)]
        return _dist_block(q, block, self.metric)

    def _neighbors(self, level: int, node: int) -> list[int]:
        return self._graph[level].get(node, [])

    def _insert(self, node: int) -> None:
        level = int(self._levels[node])
        while len(self._graph) <= level:
            self._graph.append({})
        q = self._data[node]
        if self._entry < 0:
            for lvl in range(level + 1):
                self._graph[lvl][node] = []
            self._entry = node
            self._max_level = level
            return

        entry = self._entry
        for lvl in range(self._max_level, level, -1):
            entry = self._greedy_step(q, entry, lvl)
        eps = [entry]
        for lvl in range(min(level, self._max_level), -1, -1):
            candidates = self._search_layer(q, eps, self.ef_construction, lvl)
            max_conn = self.max_m0 if lvl == 0 else self.M
            chosen = self._select_neighbors(q, candidates, max_conn)
            self._graph[lvl][node] = list(chosen)
            # Reverse edges are pruned lazily with 50% slack and the cheap
            # keep-closest rule (the "select simple" variant); the diversity
            # heuristic is reserved for the new node's own edges.  Slack
            # amortizes pruning cost without hurting navigability.
            slack = max_conn + max_conn // 2
            for other in chosen:
                bucket = self._graph[lvl].setdefault(other, [])
                bucket.append(node)
                if len(bucket) > slack:
                    self._graph[lvl][other] = self._keep_closest(
                        self._data[other], bucket, max_conn)
            eps = candidates
        for lvl in range(self._max_level + 1, level + 1):
            self._graph[lvl][node] = []
        if level > self._max_level:
            self._max_level = level
            self._entry = node

    def _greedy_step(self, q: np.ndarray, entry: int, level: int) -> int:
        """Walk to the local distance minimum on one layer."""
        current = entry
        current_dist = float(self._dist(q, [current])[0])
        self.stats.float_comparisons += 1
        while True:
            neigh = self._neighbors(level, current)
            if not neigh:
                break
            dists = self._dist(q, neigh)
            self.stats.float_comparisons += len(neigh)
            self.stats.graph_hops += 1
            best = int(dists.argmin())
            if dists[best] >= current_dist:
                break
            current = neigh[best]
            current_dist = float(dists[best])
        return current

    def _search_layer(self, q: np.ndarray, entry_points: list[int],
                      ef: int, level: int) -> list[int]:
        """Best-first beam of width ``ef``; returns ids sorted by distance."""
        graph = self._graph[level]
        visited = np.zeros(len(self._data), dtype=bool)
        eps = list(dict.fromkeys(entry_points))
        dists = self._dist(q, eps)
        self.stats.float_comparisons += len(eps)
        visited[eps] = True
        candidates = [(float(d), e) for d, e in zip(dists, eps)]
        heapq.heapify(candidates)
        results = [(-float(d), e) for d, e in zip(dists, eps)]
        heapq.heapify(results)
        while len(results) > ef:
            heapq.heappop(results)
        while candidates:
            dist, node = heapq.heappop(candidates)
            worst = -results[0][0]
            if dist > worst and len(results) >= ef:
                break
            neigh = graph.get(node)
            if not neigh:
                continue
            neigh_arr = np.asarray(neigh, dtype=np.int64)
            fresh = neigh_arr[~visited[neigh_arr]]
            if not len(fresh):
                continue
            visited[fresh] = True
            fresh_dists = _dist_block(q, self._data[fresh], self.metric)
            self.stats.float_comparisons += len(fresh)
            self.stats.graph_hops += 1
            worst = -results[0][0]
            full = len(results) >= ef
            for fd, fn in zip(fresh_dists.tolist(), fresh.tolist()):
                if not full or fd < worst:
                    heapq.heappush(candidates, (fd, fn))
                    heapq.heappush(results, (-fd, fn))
                    if len(results) > ef:
                        heapq.heappop(results)
                    worst = -results[0][0]
                    full = len(results) >= ef
        ordered = sorted((-d, node) for d, node in results)
        return [node for _, node in ordered]

    def _select_neighbors(self, q: np.ndarray, candidates: list[int],
                          m: int) -> list[int]:
        """Heuristic neighbour selection (keeps diverse edges).

        A candidate is kept only if it is closer to ``q`` than to every
        already-kept neighbour — the pruning rule from the HNSW paper that
        prevents clustered edges and preserves graph navigability.  The
        candidate-to-candidate distances are computed in one batch.
        """
        candidates = list(dict.fromkeys(candidates))
        if len(candidates) <= m:
            return candidates
        cand = np.asarray(candidates, dtype=np.int64)
        vecs = self._data[cand]
        to_q = _dist_block(q, vecs, self.metric)
        self.stats.float_comparisons += len(cand)
        order = np.argsort(to_q, kind="stable")
        # Pairwise candidate distances in one shot (<= ef_construction^2).
        if self.metric is MetricType.EUCLIDEAN:
            sq = np.einsum("ij,ij->i", vecs, vecs)
            pairwise = sq[:, None] - 2.0 * (vecs @ vecs.T) + sq[None, :]
        elif self.metric is MetricType.INNER_PRODUCT:
            pairwise = -(vecs @ vecs.T)
        else:
            norms = np.linalg.norm(vecs, axis=1)
            norms[norms == 0] = 1.0
            unit = vecs / norms[:, None]
            pairwise = -(unit @ unit.T)
        self.stats.float_comparisons += len(cand) * len(cand)

        kept: list[int] = []
        kept_pos: list[int] = []
        # Running minimum distance from each candidate to the kept set,
        # updated incrementally so the loop body is O(1) numpy work.
        min_to_kept = np.full(len(cand), np.inf, dtype=pairwise.dtype)
        for oi in order.tolist():
            if not kept_pos or to_q[oi] < min_to_kept[oi]:
                kept.append(int(cand[oi]))
                kept_pos.append(oi)
                np.minimum(min_to_kept, pairwise[oi], out=min_to_kept)
            if len(kept) >= m:
                break
        if len(kept) < m:
            chosen = set(kept_pos)
            for oi in order.tolist():
                if oi not in chosen:
                    kept.append(int(cand[oi]))
                    chosen.add(oi)
                if len(kept) >= m:
                    break
        return kept

    def _keep_closest(self, q: np.ndarray, candidates: list[int],
                      m: int) -> list[int]:
        """Keep the ``m`` nearest candidates (no diversity pruning)."""
        candidates = list(dict.fromkeys(candidates))
        if len(candidates) <= m:
            return candidates
        cand = np.asarray(candidates, dtype=np.int64)
        dists = _dist_block(q, self._data[cand], self.metric)
        self.stats.float_comparisons += len(cand)
        keep = np.argpartition(dists, m - 1)[:m]
        return cand[keep].tolist()

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def search(self, queries: np.ndarray, k: int,
               ef_search: int | None = None
               ) -> tuple[np.ndarray, np.ndarray]:
        queries = self._check_query_input(queries)
        ef = max(ef_search or self.ef_search, k)
        self.stats.reset()
        nq = queries.shape[0]
        all_ids = np.full((nq, k), -1, dtype=np.int64)
        all_dists = np.full((nq, k), np.inf, dtype=np.float32)
        for qi in range(nq):
            q = queries[qi]
            entry = self._entry
            for lvl in range(self._max_level, 0, -1):
                entry = self._greedy_step(q, entry, lvl)
            found = self._search_layer(q, [entry], ef, 0)[:k]
            if found:
                ids = np.asarray(found, dtype=np.int64)
                dists = self._dist(q, ids)
                all_ids[qi, :len(ids)] = ids
                all_dists[qi, :len(ids)] = dists
        return all_ids, all_dists

    def degree_histogram(self, level: int = 0) -> np.ndarray:
        """Node out-degrees on one layer (graph-quality diagnostics)."""
        if level >= len(self._graph):
            return np.empty(0, dtype=np.int64)
        return np.asarray([len(v) for v in self._graph[level].values()],
                          dtype=np.int64)
