"""Residual quantization (RQ).

RQ quantizes a vector as a *sum* of codewords from a sequence of codebooks:
stage ``i`` quantizes the residual left by stages ``0..i-1``.  Each extra
stage reduces reconstruction error, giving a smooth memory/accuracy knob.
Search here decodes candidates (the codebooks are small) and scores exactly,
keeping the quantized-comparison accounting of the cost model.
"""

from __future__ import annotations

import numpy as np

from repro.core.schema import MetricType
from repro.errors import IndexBuildError
from repro.index.base import VectorIndex, register_index
from repro.index.distances import adjusted_distances, squared_l2, topk_smallest
from repro.index.kmeans import kmeans


class ResidualQuantizer:
    """Multi-stage additive quantizer."""

    def __init__(self, dim: int, stages: int = 4, nbits: int = 8,
                 seed: int = 0) -> None:
        if stages <= 0:
            raise IndexBuildError(f"stages must be positive, got {stages}")
        if not 1 <= nbits <= 8:
            raise IndexBuildError(f"nbits must be in [1, 8], got {nbits}")
        self.dim = dim
        self.stages = stages
        self.ksub = 1 << nbits
        self.seed = seed
        self._codebooks: list[np.ndarray] = []  # stages x (ksub, dim)
        self.is_trained = False

    def train(self, data: np.ndarray) -> None:
        """Greedy stage-by-stage codebook training on residuals."""
        data = np.ascontiguousarray(data, dtype=np.float32)
        if data.shape[1] != self.dim:
            raise IndexBuildError(
                f"RQ: expected dim {self.dim}, got {data.shape[1]}")
        residual = data.copy()
        self._codebooks = []
        for stage in range(self.stages):
            k = min(self.ksub, residual.shape[0])
            result = kmeans(residual, k, seed=self.seed + stage)
            book = np.zeros((self.ksub, self.dim), dtype=np.float32)
            book[:result.k] = result.centroids
            self._codebooks.append(book)
            residual = residual - result.centroids[result.assignments]
        self.is_trained = True

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Quantize to ``(n, stages)`` uint8 codes."""
        self._require_trained()
        residual = np.ascontiguousarray(data, dtype=np.float32).copy()
        n = residual.shape[0]
        codes = np.empty((n, self.stages), dtype=np.uint8)
        for stage, book in enumerate(self._codebooks):
            dists = squared_l2(residual, book)
            chosen = dists.argmin(axis=1)
            codes[:, stage] = chosen.astype(np.uint8)
            residual -= book[chosen]
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Sum the per-stage codewords back into approximate vectors."""
        self._require_trained()
        codes = np.asarray(codes, dtype=np.int64)
        out = np.zeros((codes.shape[0], self.dim), dtype=np.float32)
        for stage, book in enumerate(self._codebooks):
            out += book[codes[:, stage]]
        return out

    def _require_trained(self) -> None:
        if not self.is_trained:
            raise IndexBuildError("residual quantizer not trained")

    def reconstruction_error(self, data: np.ndarray) -> float:
        approx = self.decode(self.encode(data))
        return float(np.mean((np.asarray(data, dtype=np.float32)
                              - approx) ** 2))

    def stage_errors(self, data: np.ndarray) -> list[float]:
        """MSE after each stage — must be non-increasing (tested invariant)."""
        data = np.ascontiguousarray(data, dtype=np.float32)
        codes = self.encode(data)
        errors: list[float] = []
        partial = np.zeros_like(data)
        for stage, book in enumerate(self._codebooks):
            partial = partial + book[codes[:, stage].astype(np.int64)]
            errors.append(float(np.mean((data - partial) ** 2)))
        return errors


@register_index("RQ")
class RqIndex(VectorIndex):
    """Brute-force scan over RQ-reconstructed vectors."""

    def __init__(self, metric: MetricType, dim: int, stages: int = 4,
                 nbits: int = 8, seed: int = 0) -> None:
        super().__init__(metric, dim)
        self.rq = ResidualQuantizer(dim, stages=stages, nbits=nbits,
                                    seed=seed)
        self._codes: np.ndarray | None = None

    def build(self, data: np.ndarray) -> None:
        arr = self._check_build_input(data)
        self.rq.train(arr)
        self._codes = self.rq.encode(arr)
        self.ntotal = arr.shape[0]
        self.is_built = True

    def search(self, queries: np.ndarray, k: int
               ) -> tuple[np.ndarray, np.ndarray]:
        queries = self._check_query_input(queries)
        self.stats.reset()
        decoded = self.rq.decode(self._codes)
        dists = adjusted_distances(queries, decoded, self.metric)
        self.stats.quantized_comparisons = queries.shape[0] * self.ntotal
        ids, vals = topk_smallest(dists, k)
        return self._pad_results(ids.astype(np.int64), vals, k)
