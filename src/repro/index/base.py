"""Vector index interface and registry.

Every index implements :class:`VectorIndex`:

* ``build(data)`` — train and populate from an ``(n, dim)`` float32 matrix;
* ``search(queries, k)`` — return ``(ids, adjusted_distances)`` arrays of
  shape ``(nq, k)``; ids index into the build matrix, padded with ``-1``
  when fewer than ``k`` results exist; adjusted distances follow the
  smaller-is-more-similar convention of :mod:`repro.index.distances`;
* ``stats`` — the work counters of the most recent ``search`` call, which
  the query node feeds to the cost model so virtual time reflects the real
  number of comparisons performed;
* ``to_bytes`` / ``index_from_bytes`` — persistence for the object store.

Indexes register under the names users pass in ``create_index`` params
(``"FLAT"``, ``"IVF_FLAT"``, ``"HNSW"``, ...), mirroring the PyManu API.
"""

from __future__ import annotations

import abc
import pickle
from dataclasses import dataclass
from typing import Any, Type

import numpy as np

from repro.core.schema import MetricType
from repro.errors import IndexBuildError


#: Every counter a :class:`SearchStats` carries, in declaration order.
#: The profiling plane sums these per segment / node / proxy and asserts
#: the sums agree exactly, so additions here must be incremented inside
#: the per-segment scan window (``Segment.search`` and below).
STAT_FIELDS = (
    "float_comparisons",
    "quantized_comparisons",
    "ssd_blocks_read",
    "graph_hops",
    "rows_scanned",
    "bytes_materialized",
    "candidates_visited",
    "candidates_pruned",
    "index_scans",
    "brute_scans",
    "delete_filter_hits",
    "cache_hits",
    "cache_misses",
)


@dataclass
class SearchStats:
    """Work performed by the last search (cost model + profiling plane).

    The first four counters drive the cost model (virtual service time);
    the rest are the work-accounting counters ``EXPLAIN ANALYZE`` and
    per-tenant read-unit metering are built on:

    * ``rows_scanned`` — (query, stored row) pairs whose vector was
      examined: allowed rows x nq for exact scans, comparisons performed
      inside the index for indexed scans;
    * ``bytes_materialized`` — column bytes gathered from segment storage
      to serve exact scans;
    * ``candidates_visited`` / ``candidates_pruned`` — index candidates
      examined by post-filtering, and how many the deletion/filter masks
      dropped;
    * ``index_scans`` / ``brute_scans`` — scan invocations by path;
    * ``delete_filter_hits`` — rows excluded by the deletion bitmap;
    * ``cache_hits`` / ``cache_misses`` — consolidated-column cache
      outcomes on the exact-scan path.
    """

    float_comparisons: int = 0
    quantized_comparisons: int = 0
    ssd_blocks_read: int = 0
    graph_hops: int = 0
    rows_scanned: int = 0
    bytes_materialized: int = 0
    candidates_visited: int = 0
    candidates_pruned: int = 0
    index_scans: int = 0
    brute_scans: int = 0
    delete_filter_hits: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def reset(self) -> None:
        for name in STAT_FIELDS:
            setattr(self, name, 0)

    def add(self, other: "SearchStats") -> None:
        """Accumulate ``other``'s counters into this object in place."""
        for name in STAT_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def merged_with(self, other: "SearchStats") -> "SearchStats":
        merged = SearchStats()
        for name in STAT_FIELDS:
            setattr(merged, name,
                    getattr(self, name) + getattr(other, name))
        return merged

    def as_dict(self) -> dict:
        """Counter name -> value snapshot (profiling delta windows)."""
        return {name: getattr(self, name) for name in STAT_FIELDS}


class VectorIndex(abc.ABC):
    """Abstract base of all vector indexes."""

    #: registry name, set by subclasses (e.g. "IVF_FLAT")
    index_type: str = ""

    def __init__(self, metric: MetricType, dim: int) -> None:
        if dim <= 0:
            raise IndexBuildError(f"invalid dim {dim}")
        self.metric = metric
        self.dim = dim
        self.ntotal = 0
        self.is_built = False
        self.stats = SearchStats()

    @abc.abstractmethod
    def build(self, data: np.ndarray) -> None:
        """Train and populate the index from ``(n, dim)`` float32 data."""

    @abc.abstractmethod
    def search(self, queries: np.ndarray, k: int
               ) -> tuple[np.ndarray, np.ndarray]:
        """Top-k search; see the module docstring for the contract."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------

    def _check_build_input(self, data: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(data, dtype=np.float32)
        if arr.ndim != 2 or arr.shape[1] != self.dim:
            raise IndexBuildError(
                f"{self.index_type}: expected (n, {self.dim}) data, "
                f"got shape {arr.shape}")
        if arr.shape[0] == 0:
            raise IndexBuildError(f"{self.index_type}: empty build data")
        return arr

    def _check_query_input(self, queries: np.ndarray) -> np.ndarray:
        arr = np.asarray(queries, dtype=np.float32)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self.dim:
            raise IndexBuildError(
                f"{self.index_type}: expected (nq, {self.dim}) queries, "
                f"got shape {arr.shape}")
        if not self.is_built:
            raise IndexBuildError(f"{self.index_type}: index not built")
        return arr

    @staticmethod
    def _pad_results(ids: np.ndarray, dists: np.ndarray,
                     k: int) -> tuple[np.ndarray, np.ndarray]:
        """Pad result rows with -1 ids / +inf distances up to width ``k``."""
        nq, have = ids.shape
        if have >= k:
            return ids[:, :k], dists[:, :k]
        pad_ids = np.full((nq, k - have), -1, dtype=np.int64)
        pad_dists = np.full((nq, k - have), np.inf, dtype=dists.dtype)
        return (np.concatenate([ids, pad_ids], axis=1),
                np.concatenate([dists, pad_dists], axis=1))

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize for the object store.

        Blobs are only ever produced and consumed by this cluster's own
        worker nodes (a trusted internal path), so pickle is acceptable.
        """
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint (for placement decisions)."""
        return len(self.to_bytes())


_REGISTRY: dict[str, Type[VectorIndex]] = {}


def register_index(name: str):
    """Class decorator adding an index to the factory registry."""

    def deco(cls: Type[VectorIndex]) -> Type[VectorIndex]:
        cls.index_type = name
        _REGISTRY[name] = cls
        return cls

    return deco


def available_indexes() -> list[str]:
    """Names accepted by :func:`create_index`."""
    return sorted(_REGISTRY)


def create_index(index_type: str, metric: MetricType, dim: int,
                 **params: Any) -> VectorIndex:
    """Instantiate an index by registry name with type-specific params."""
    try:
        cls = _REGISTRY[index_type.upper()]
    except KeyError:
        raise IndexBuildError(
            f"unknown index type {index_type!r}; "
            f"available: {available_indexes()}") from None
    return cls(metric=metric, dim=dim, **params)


def index_from_bytes(raw: bytes) -> VectorIndex:
    """Deserialize an index blob produced by :meth:`VectorIndex.to_bytes`."""
    obj = pickle.loads(raw)
    if not isinstance(obj, VectorIndex):
        raise IndexBuildError("blob does not contain a VectorIndex")
    return obj
