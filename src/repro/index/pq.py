"""Product quantization (PQ) and IVF-PQ.

PQ splits vectors into ``m`` subspaces and vector-quantizes each with its
own 256-centroid codebook, compressing a float32 vector to ``m`` bytes.
Search uses asymmetric distance computation (ADC): per query, a ``(m, 256)``
lookup table of subspace distances is built once and each database code is
scored with ``m`` table lookups — the quantized-comparison fast path of the
cost model.

:class:`IvfPqIndex` composes a coarse IVF quantizer with PQ on the residuals
(vector minus its centroid), the classic Jegou et al. construction.
"""

from __future__ import annotations

import numpy as np

from repro.core.schema import MetricType
from repro.errors import IndexBuildError
from repro.index.base import VectorIndex, register_index
from repro.index.distances import adjusted_distances, squared_l2, topk_smallest
from repro.index.kmeans import kmeans


def effective_metric(metric: MetricType) -> MetricType:
    """Cosine is handled as inner product over normalized vectors.

    Per-subspace cosine does not compose into full-vector cosine, so
    PQ-based indexes normalize rows at build/search time and run IP math.
    """
    if metric is MetricType.COSINE:
        return MetricType.INNER_PRODUCT
    return metric


def normalize_rows(arr: np.ndarray) -> np.ndarray:
    """L2-normalize rows, leaving zero rows untouched."""
    arr = np.asarray(arr, dtype=np.float32)
    norms = np.linalg.norm(arr, axis=-1, keepdims=True)
    norms[norms == 0] = 1.0
    return arr / norms


class ProductQuantizer:
    """PQ codec: train / encode / decode / ADC lookup tables."""

    def __init__(self, dim: int, m: int = 8, nbits: int = 8,
                 seed: int = 0) -> None:
        if dim % m != 0:
            raise IndexBuildError(f"dim {dim} not divisible by m {m}")
        if not 1 <= nbits <= 8:
            raise IndexBuildError(f"nbits must be in [1, 8], got {nbits}")
        self.dim = dim
        self.m = m
        self.nbits = nbits
        self.ksub = 1 << nbits
        self.dsub = dim // m
        self.seed = seed
        self._codebooks: np.ndarray | None = None  # (m, ksub, dsub)
        self.is_trained = False

    def train(self, data: np.ndarray) -> None:
        """Learn one codebook per subspace with k-means."""
        data = np.ascontiguousarray(data, dtype=np.float32)
        if data.shape[1] != self.dim:
            raise IndexBuildError(
                f"PQ: expected dim {self.dim}, got {data.shape[1]}")
        ksub = min(self.ksub, data.shape[0])
        books = np.zeros((self.m, self.ksub, self.dsub), dtype=np.float32)
        for sub in range(self.m):
            chunk = data[:, sub * self.dsub:(sub + 1) * self.dsub]
            result = kmeans(chunk, ksub, seed=self.seed + sub)
            books[sub, :result.k] = result.centroids
            if result.k < self.ksub:
                # Unused codewords mirror the last real one so decode stays
                # well-defined for any byte value.
                books[sub, result.k:] = result.centroids[-1]
        self._codebooks = books
        self.is_trained = True

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Quantize ``(n, dim)`` vectors to ``(n, m)`` uint8 codes."""
        self._require_trained()
        data = np.ascontiguousarray(data, dtype=np.float32)
        n = data.shape[0]
        codes = np.empty((n, self.m), dtype=np.uint8)
        for sub in range(self.m):
            chunk = data[:, sub * self.dsub:(sub + 1) * self.dsub]
            dists = squared_l2(chunk, self._codebooks[sub])
            codes[:, sub] = dists.argmin(axis=1).astype(np.uint8)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        self._require_trained()
        codes = np.asarray(codes, dtype=np.int64)
        n = codes.shape[0]
        out = np.empty((n, self.dim), dtype=np.float32)
        for sub in range(self.m):
            out[:, sub * self.dsub:(sub + 1) * self.dsub] = (
                self._codebooks[sub][codes[:, sub]])
        return out

    def adc_table(self, query: np.ndarray,
                  metric: MetricType) -> np.ndarray:
        """Per-subspace lookup table of adjusted distances, shape (m, ksub)."""
        self._require_trained()
        query = np.asarray(query, dtype=np.float32).reshape(self.dim)
        table = np.empty((self.m, self.ksub), dtype=np.float32)
        for sub in range(self.m):
            q_sub = query[sub * self.dsub:(sub + 1) * self.dsub]
            table[sub] = adjusted_distances(q_sub[None, :],
                                            self._codebooks[sub], metric)[0]
        return table

    @staticmethod
    def adc_scan(table: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Score ``(n, m)`` codes against a query's ADC table."""
        codes = np.asarray(codes, dtype=np.int64)
        m = table.shape[0]
        return table[np.arange(m)[None, :], codes].sum(axis=1)

    def _require_trained(self) -> None:
        if not self.is_trained:
            raise IndexBuildError("product quantizer not trained")

    def reconstruction_error(self, data: np.ndarray) -> float:
        """Mean squared reconstruction error (quality diagnostics)."""
        approx = self.decode(self.encode(data))
        return float(np.mean((data - approx) ** 2))


@register_index("PQ")
class PqIndex(VectorIndex):
    """Standalone PQ index: ADC scan over all codes."""

    def __init__(self, metric: MetricType, dim: int, m: int = 8,
                 nbits: int = 8, seed: int = 0) -> None:
        super().__init__(metric, dim)
        self.pq = ProductQuantizer(dim, m=m, nbits=nbits, seed=seed)
        self._codes: np.ndarray | None = None

    def build(self, data: np.ndarray) -> None:
        arr = self._check_build_input(data)
        if self.metric is MetricType.COSINE:
            arr = normalize_rows(arr)
        self.pq.train(arr)
        self._codes = self.pq.encode(arr)
        self.ntotal = arr.shape[0]
        self.is_built = True

    def search(self, queries: np.ndarray, k: int
               ) -> tuple[np.ndarray, np.ndarray]:
        queries = self._check_query_input(queries)
        if self.metric is MetricType.COSINE:
            queries = normalize_rows(queries)
        metric = effective_metric(self.metric)
        self.stats.reset()
        nq = queries.shape[0]
        all_ids = np.full((nq, k), -1, dtype=np.int64)
        all_dists = np.full((nq, k), np.inf, dtype=np.float32)
        for qi in range(nq):
            table = self.pq.adc_table(queries[qi], metric)
            dists = ProductQuantizer.adc_scan(table, self._codes)
            self.stats.quantized_comparisons += self.ntotal
            idx, vals = topk_smallest(dists, k)
            all_ids[qi, :len(idx)] = idx
            all_dists[qi, :len(idx)] = vals
        return all_ids, all_dists


@register_index("IVF_PQ")
class IvfPqIndex(VectorIndex):
    """IVF coarse quantizer + PQ-compressed residuals."""

    def __init__(self, metric: MetricType, dim: int, nlist: int = 128,
                 nprobe: int = 8, m: int = 8, nbits: int = 8,
                 seed: int = 0) -> None:
        super().__init__(metric, dim)
        self.nlist = nlist
        self.nprobe = nprobe
        self.seed = seed
        self.pq = ProductQuantizer(dim, m=m, nbits=nbits, seed=seed)
        self._centroids: np.ndarray | None = None
        self._lists: list[np.ndarray] = []
        self._list_codes: list[np.ndarray] = []

    def build(self, data: np.ndarray) -> None:
        arr = self._check_build_input(data)
        if self.metric is MetricType.COSINE:
            arr = normalize_rows(arr)
        k = min(self.nlist, arr.shape[0])
        coarse = kmeans(arr, k, seed=self.seed)
        self._centroids = coarse.centroids
        residuals = arr - coarse.centroids[coarse.assignments]
        self.pq.train(residuals)
        codes = self.pq.encode(residuals)
        self._lists = []
        self._list_codes = []
        for cluster in range(coarse.k):
            members = np.flatnonzero(coarse.assignments == cluster)
            self._lists.append(members.astype(np.int64))
            self._list_codes.append(codes[members])
        self.ntotal = arr.shape[0]
        self.is_built = True

    def search(self, queries: np.ndarray, k: int,
               nprobe: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        queries = self._check_query_input(queries)
        if self.metric is MetricType.COSINE:
            queries = normalize_rows(queries)
        metric = effective_metric(self.metric)
        nprobe = min(nprobe or self.nprobe, len(self._lists))
        self.stats.reset()
        centroid_dists = adjusted_distances(queries, self._centroids,
                                            metric)
        self.stats.float_comparisons += (queries.shape[0]
                                         * self._centroids.shape[0])
        probe_lists, _ = topk_smallest(centroid_dists, nprobe)

        nq = queries.shape[0]
        all_ids = np.full((nq, k), -1, dtype=np.int64)
        all_dists = np.full((nq, k), np.inf, dtype=np.float32)
        euclidean = self.metric is MetricType.EUCLIDEAN
        for qi in range(nq):
            cand_ids: list[np.ndarray] = []
            cand_dists: list[np.ndarray] = []
            for cluster in probe_lists[qi]:
                members = self._lists[cluster]
                if not len(members):
                    continue
                if euclidean:
                    # ||q - (c + r)||^2 == ||(q - c) - r||^2: ADC on the
                    # residual query scores clusters on a common scale.
                    residual_query = queries[qi] - self._centroids[cluster]
                    table = self.pq.adc_table(residual_query, metric)
                    dists = ProductQuantizer.adc_scan(
                        table, self._list_codes[cluster])
                else:
                    # -<q, c + r> == -<q, c> - <q, r>: score residuals with
                    # the raw query and add the centroid term.
                    table = self.pq.adc_table(queries[qi], metric)
                    dists = (ProductQuantizer.adc_scan(
                        table, self._list_codes[cluster])
                        + centroid_dists[qi, cluster])
                self.stats.quantized_comparisons += len(members)
                cand_ids.append(members)
                cand_dists.append(dists)
            if not cand_ids:
                continue
            ids = np.concatenate(cand_ids)
            dists = np.concatenate(cand_dists)
            idx, vals = topk_smallest(dists, k)
            all_ids[qi, :len(idx)] = ids[idx]
            all_dists[qi, :len(idx)] = vals
        return all_ids, all_dists
