"""k-means clustering for inverted indexes and quantizers.

A deterministic Lloyd's k-means with k-means++ seeding, plus the
*hierarchical balanced* variant used by the SSD index (Section 4.4) to
produce clusters whose sizes stay below a cap (so each bucket fits in a
4 KB block).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.index.distances import squared_l2


@dataclass(frozen=True)
class KMeansResult:
    """Centroids plus each point's assignment."""

    centroids: np.ndarray  # (k, dim) float32
    assignments: np.ndarray  # (n,) int64
    iterations: int

    @property
    def k(self) -> int:
        return self.centroids.shape[0]


def _kmeans_pp_init(data: np.ndarray, k: int,
                    rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = data.shape[0]
    centroids = np.empty((k, data.shape[1]), dtype=np.float32)
    first = int(rng.integers(n))
    centroids[0] = data[first]
    closest = squared_l2(data, centroids[0:1])[:, 0]
    for i in range(1, k):
        total = float(closest.sum())
        if total <= 0:
            # All remaining points coincide with chosen centroids.
            pick = int(rng.integers(n))
        else:
            probs = closest / total
            pick = int(rng.choice(n, p=probs))
        centroids[i] = data[pick]
        dist = squared_l2(data, centroids[i:i + 1])[:, 0]
        np.minimum(closest, dist, out=closest)
    return centroids


def kmeans(data: np.ndarray, k: int, max_iters: int = 25,
           seed: int = 0, tol: float = 1e-4) -> KMeansResult:
    """Lloyd's algorithm with k-means++ seeding.

    Deterministic for a fixed seed.  ``k`` is clamped to ``n``; empty
    clusters are reseeded with the points farthest from their centroids.
    """
    data = np.ascontiguousarray(data, dtype=np.float32)
    n = data.shape[0]
    if n == 0:
        raise ValueError("cannot cluster an empty dataset")
    k = max(1, min(k, n))
    rng = np.random.default_rng(seed)
    centroids = _kmeans_pp_init(data, k, rng)

    assignments = np.zeros(n, dtype=np.int64)
    iteration = 0
    for iteration in range(1, max_iters + 1):
        dists = squared_l2(data, centroids)
        assignments = dists.argmin(axis=1)
        new_centroids = centroids.copy()
        moved = 0.0
        for cluster in range(k):
            members = data[assignments == cluster]
            if len(members) == 0:
                # Reseed from the globally worst-served point.
                worst = int(dists.min(axis=1).argmax())
                new_centroids[cluster] = data[worst]
            else:
                new_centroids[cluster] = members.mean(axis=0)
        moved = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        if moved < tol:
            break
    final = squared_l2(data, centroids).argmin(axis=1)
    return KMeansResult(centroids=centroids, assignments=final,
                        iterations=iteration)


def hierarchical_balanced_kmeans(data: np.ndarray, max_cluster_size: int,
                                 branch: int = 8, seed: int = 0,
                                 max_depth: int = 12) -> KMeansResult:
    """Recursively split clusters until every cluster fits the size cap.

    This is the SSD index's bucketing step: "conducting hierarchical k-means
    for the vectors and controlling the sizes of the clusters" so every
    bucket fits a 4 KB block.  Returns flat centroids/assignments over the
    final leaves.
    """
    data = np.ascontiguousarray(data, dtype=np.float32)
    if max_cluster_size <= 0:
        raise ValueError("max_cluster_size must be positive")

    leaf_centroids: list[np.ndarray] = []
    leaf_members: list[np.ndarray] = []

    def split(indices: np.ndarray, depth: int) -> None:
        subset = data[indices]
        if len(indices) <= max_cluster_size or depth >= max_depth:
            leaf_centroids.append(subset.mean(axis=0))
            leaf_members.append(indices)
            return
        k = min(branch, max(2, int(np.ceil(len(indices) / max_cluster_size))))
        result = kmeans(subset, k, seed=seed + depth)
        made_progress = False
        for cluster in range(result.k):
            members = indices[result.assignments == cluster]
            if len(members) == 0:
                continue
            if len(members) < len(indices):
                made_progress = True
        if not made_progress:
            # Degenerate data (all points identical): chunk arbitrarily.
            for start in range(0, len(indices), max_cluster_size):
                chunk = indices[start:start + max_cluster_size]
                leaf_centroids.append(data[chunk].mean(axis=0))
                leaf_members.append(chunk)
            return
        for cluster in range(result.k):
            members = indices[result.assignments == cluster]
            if len(members):
                split(members, depth + 1)

    split(np.arange(len(data), dtype=np.int64), 0)

    centroids = np.stack(leaf_centroids).astype(np.float32)
    assignments = np.empty(len(data), dtype=np.int64)
    for leaf, members in enumerate(leaf_members):
        assignments[members] = leaf
    return KMeansResult(centroids=centroids, assignments=assignments,
                        iterations=0)
