"""Inverted multi-index (IMI).

Babenko & Lempitsky's IMI splits vectors into two halves and trains a
codebook per half; the cross product of the two codebooks induces a much
finer partition (``k^2`` cells from two ``k``-word codebooks) than a single
IVF of the same training cost.  A query visits cells in order of the summed
half-distances (the multi-sequence algorithm) until enough candidates are
gathered, then scores them exactly.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.schema import MetricType
from repro.errors import IndexBuildError
from repro.index.base import VectorIndex, register_index
from repro.index.distances import adjusted_distances, squared_l2, topk_smallest
from repro.index.kmeans import kmeans


@register_index("IMI")
class ImiIndex(VectorIndex):
    """Two-codebook inverted multi-index with multi-sequence traversal."""

    def __init__(self, metric: MetricType, dim: int, ksub: int = 32,
                 candidate_factor: int = 8, seed: int = 0) -> None:
        super().__init__(metric, dim)
        if dim % 2 != 0:
            raise IndexBuildError(f"IMI needs an even dim, got {dim}")
        if ksub <= 0:
            raise IndexBuildError(f"ksub must be positive, got {ksub}")
        self.ksub = ksub
        self.candidate_factor = candidate_factor
        self.seed = seed
        self.half = dim // 2
        self._books: list[np.ndarray] = []
        self._cells: dict[tuple[int, int], np.ndarray] = {}
        self._data: np.ndarray | None = None

    def build(self, data: np.ndarray) -> None:
        arr = self._check_build_input(data)
        first = kmeans(arr[:, :self.half], min(self.ksub, len(arr)),
                       seed=self.seed)
        second = kmeans(arr[:, self.half:], min(self.ksub, len(arr)),
                        seed=self.seed + 1)
        self._books = [first.centroids, second.centroids]
        cells: dict[tuple[int, int], list[int]] = {}
        for idx, (a, b) in enumerate(zip(first.assignments,
                                         second.assignments)):
            cells.setdefault((int(a), int(b)), []).append(idx)
        self._cells = {key: np.asarray(val, dtype=np.int64)
                       for key, val in cells.items()}
        self._data = arr
        self.ntotal = arr.shape[0]
        self.is_built = True

    def _multi_sequence(self, d1: np.ndarray, d2: np.ndarray,
                        want: int) -> list[np.ndarray]:
        """Visit cells in increasing d1[i] + d2[j] until ``want`` candidates.

        The classic multi-sequence algorithm: a heap seeded with the best
        pair, expanding neighbours (i+1, j) and (i, j+1).
        """
        order1 = np.argsort(d1, kind="stable")
        order2 = np.argsort(d2, kind="stable")
        heap: list[tuple[float, int, int]] = [
            (float(d1[order1[0]] + d2[order2[0]]), 0, 0)]
        seen = {(0, 0)}
        out: list[np.ndarray] = []
        gathered = 0
        while heap and gathered < want:
            _, i, j = heapq.heappop(heap)
            cell = self._cells.get((int(order1[i]), int(order2[j])))
            if cell is not None:
                out.append(cell)
                gathered += len(cell)
            if i + 1 < len(order1) and (i + 1, j) not in seen:
                seen.add((i + 1, j))
                heapq.heappush(heap, (float(d1[order1[i + 1]]
                                            + d2[order2[j]]), i + 1, j))
            if j + 1 < len(order2) and (i, j + 1) not in seen:
                seen.add((i, j + 1))
                heapq.heappush(heap, (float(d1[order1[i]]
                                            + d2[order2[j + 1]]), i, j + 1))
        return out

    def search(self, queries: np.ndarray, k: int
               ) -> tuple[np.ndarray, np.ndarray]:
        queries = self._check_query_input(queries)
        self.stats.reset()
        nq = queries.shape[0]
        want = max(k * self.candidate_factor, k)
        all_ids = np.full((nq, k), -1, dtype=np.int64)
        all_dists = np.full((nq, k), np.inf, dtype=np.float32)
        for qi in range(nq):
            q = queries[qi]
            d1 = squared_l2(q[None, :self.half], self._books[0])[0]
            d2 = squared_l2(q[None, self.half:], self._books[1])[0]
            self.stats.float_comparisons += (len(self._books[0])
                                             + len(self._books[1]))
            cells = self._multi_sequence(d1, d2, want)
            if not cells:
                continue
            ids = np.concatenate(cells)
            dists = adjusted_distances(q, self._data[ids], self.metric)[0]
            self.stats.float_comparisons += len(ids)
            idx, vals = topk_smallest(dists, k)
            all_ids[qi, :len(idx)] = ids[idx]
            all_dists[qi, :len(idx)] = vals
        return all_ids, all_dists

    @property
    def num_nonempty_cells(self) -> int:
        return len(self._cells)
