"""Optimized product quantization (OPQ).

OPQ (Ge et al., CVPR'13) learns an orthogonal rotation ``R`` that
redistributes variance across PQ subspaces before quantization, reducing
reconstruction error versus plain PQ.  Training alternates between fitting
PQ codebooks on the rotated data and solving the orthogonal Procrustes
problem ``min_R ||R X - decode(encode(R X))||`` via SVD.
"""

from __future__ import annotations

import numpy as np

from repro.core.schema import MetricType
from repro.errors import IndexBuildError
from repro.index.base import VectorIndex, register_index
from repro.index.distances import topk_smallest
from repro.index.pq import ProductQuantizer, effective_metric, normalize_rows


class OpqRotation:
    """The learned orthogonal rotation plus its PQ codec."""

    def __init__(self, dim: int, m: int = 8, nbits: int = 8,
                 train_iters: int = 5, seed: int = 0) -> None:
        self.dim = dim
        self.train_iters = train_iters
        self.pq = ProductQuantizer(dim, m=m, nbits=nbits, seed=seed)
        self.rotation: np.ndarray | None = None
        self.is_trained = False

    def train(self, data: np.ndarray) -> None:
        """Alternate PQ fitting and Procrustes rotation updates."""
        data = np.ascontiguousarray(data, dtype=np.float32)
        if data.shape[1] != self.dim:
            raise IndexBuildError(
                f"OPQ: expected dim {self.dim}, got {data.shape[1]}")
        rotation = np.eye(self.dim, dtype=np.float32)
        for _ in range(max(1, self.train_iters)):
            rotated = data @ rotation.T
            self.pq.train(rotated)
            approx = self.pq.decode(self.pq.encode(rotated))
            # Procrustes: R = U V^T from SVD of X^T X_hat.
            u, _s, vt = np.linalg.svd(data.T @ approx)
            rotation = (u @ vt).T.astype(np.float32)
        self.rotation = rotation
        rotated = data @ rotation.T
        self.pq.train(rotated)
        self.is_trained = True

    def rotate(self, data: np.ndarray) -> np.ndarray:
        if not self.is_trained:
            raise IndexBuildError("OPQ rotation not trained")
        return np.asarray(data, dtype=np.float32) @ self.rotation.T

    def encode(self, data: np.ndarray) -> np.ndarray:
        return self.pq.encode(self.rotate(data))

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct in the *original* (unrotated) space."""
        return self.pq.decode(codes) @ self.rotation

    def reconstruction_error(self, data: np.ndarray) -> float:
        approx = self.decode(self.encode(data))
        return float(np.mean((np.asarray(data, dtype=np.float32)
                              - approx) ** 2))


@register_index("OPQ")
class OpqIndex(VectorIndex):
    """ADC scan over OPQ codes (rotation applied to queries too)."""

    def __init__(self, metric: MetricType, dim: int, m: int = 8,
                 nbits: int = 8, train_iters: int = 5, seed: int = 0) -> None:
        super().__init__(metric, dim)
        self.opq = OpqRotation(dim, m=m, nbits=nbits,
                               train_iters=train_iters, seed=seed)
        self._codes: np.ndarray | None = None

    def build(self, data: np.ndarray) -> None:
        arr = self._check_build_input(data)
        if self.metric is MetricType.COSINE:
            arr = normalize_rows(arr)
        self.opq.train(arr)
        self._codes = self.opq.encode(arr)
        self.ntotal = arr.shape[0]
        self.is_built = True

    def search(self, queries: np.ndarray, k: int
               ) -> tuple[np.ndarray, np.ndarray]:
        queries = self._check_query_input(queries)
        if self.metric is MetricType.COSINE:
            queries = normalize_rows(queries)
        metric = effective_metric(self.metric)
        self.stats.reset()
        # Rotation is orthogonal, so distances in rotated space equal
        # distances in the original space; rotate the query and run ADC.
        rotated = self.opq.rotate(queries)
        nq = queries.shape[0]
        all_ids = np.full((nq, k), -1, dtype=np.int64)
        all_dists = np.full((nq, k), np.inf, dtype=np.float32)
        for qi in range(nq):
            table = self.opq.pq.adc_table(rotated[qi], metric)
            dists = ProductQuantizer.adc_scan(table, self._codes)
            self.stats.quantized_comparisons += self.ntotal
            idx, vals = topk_smallest(dists, k)
            all_ids[qi, :len(idx)] = idx
            all_dists[qi, :len(idx)] = vals
        return all_ids, all_dists
