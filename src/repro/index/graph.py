"""Shared machinery for flat proximity graphs (NSG, NGT).

Provides exact k-NN graph construction (blocked brute force, fine at the
scales of our experiments) and a best-first beam searcher over an adjacency
list, with the same work accounting as the other indexes.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.schema import MetricType
from repro.index.base import SearchStats
from repro.index.distances import adjusted_distances, topk_smallest


def exact_knn_graph(data: np.ndarray, k: int, metric: MetricType,
                    block: int = 1024) -> list[np.ndarray]:
    """Adjacency list of each point's exact k nearest neighbours (no self).

    Computed in row blocks to bound peak memory at ``block * n`` floats.
    """
    n = data.shape[0]
    k = min(k, n - 1)
    adjacency: list[np.ndarray] = []
    for start in range(0, n, block):
        stop = min(start + block, n)
        dists = adjusted_distances(data[start:stop], data, metric)
        rows = np.arange(start, stop)
        dists[np.arange(stop - start), rows] = np.inf  # exclude self
        ids, _ = topk_smallest(dists, k)
        for row in range(stop - start):
            adjacency.append(ids[row].astype(np.int64))
    return adjacency


def beam_search(graph: list[np.ndarray], data: np.ndarray, q: np.ndarray,
                entries: list[int], ef: int, metric: MetricType,
                stats: SearchStats,
                visited_out: set | None = None) -> list[tuple[float, int]]:
    """Best-first beam over a flat graph; returns (distance, id) ascending.

    ``visited_out``, when given, collects every node whose distance was
    evaluated — graph constructions (NSG/Vamana) use the visited set as
    the candidate pool for edge selection.
    """
    eps = np.asarray(sorted(set(entries)), dtype=np.int64)
    dists = adjusted_distances(q, data[eps], metric)[0]
    stats.float_comparisons += len(eps)
    visited = set(int(e) for e in eps)
    candidates = [(float(d), int(e)) for d, e in zip(dists, eps)]
    heapq.heapify(candidates)
    results = [(-float(d), int(e)) for d, e in zip(dists, eps)]
    heapq.heapify(results)
    while len(results) > ef:
        heapq.heappop(results)
    while candidates:
        dist, node = heapq.heappop(candidates)
        worst = -results[0][0]
        if dist > worst and len(results) >= ef:
            break
        fresh = np.asarray([x for x in graph[node] if int(x) not in visited],
                           dtype=np.int64)
        if not len(fresh):
            continue
        visited.update(int(x) for x in fresh)
        fresh_dists = adjusted_distances(q, data[fresh], metric)[0]
        stats.float_comparisons += len(fresh)
        stats.graph_hops += 1
        worst = -results[0][0]
        for fd, fn in zip(fresh_dists, fresh):
            fd = float(fd)
            fn = int(fn)
            if len(results) < ef or fd < worst:
                heapq.heappush(candidates, (fd, fn))
                heapq.heappush(results, (-fd, fn))
                if len(results) > ef:
                    heapq.heappop(results)
                worst = -results[0][0]
    if visited_out is not None:
        visited_out.update(visited)
    return sorted((-d, node) for d, node in results)


def ensure_connected(graph: list[np.ndarray], data: np.ndarray,
                     root: int, metric: MetricType) -> None:
    """Graft unreachable nodes onto the component of ``root`` (in place).

    BFS from the root; every unreachable node gets an edge from its nearest
    reachable neighbour — the spanning step NSG uses to guarantee every
    point can be found from the navigating node.
    """
    n = len(graph)
    seen = np.zeros(n, dtype=bool)
    frontier = [root]
    seen[root] = True
    while frontier:
        nxt: list[int] = []
        for node in frontier:
            for nb in graph[node]:
                nb = int(nb)
                if not seen[nb]:
                    seen[nb] = True
                    nxt.append(nb)
        frontier = nxt
    unreachable = np.flatnonzero(~seen)
    if not len(unreachable):
        return
    reachable = np.flatnonzero(seen)
    for node in unreachable:
        dists = adjusted_distances(data[node], data[reachable], metric)[0]
        anchor = int(reachable[int(dists.argmin())])
        graph[anchor] = np.append(graph[anchor], node)
        # Newly attached nodes become reachable anchors for later ones.
        reachable = np.append(reachable, node)
