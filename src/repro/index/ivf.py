"""IVF-Flat: inverted file index over k-means clusters.

Vectors are grouped into ``nlist`` k-means clusters; a query scans only the
``nprobe`` clusters whose centroids are most similar ("inverted indexes
group vectors into clusters, and only scan the most promising clusters for
a query").  ``nprobe`` trades recall for speed and is the knob swept in the
Figure 8 reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.core.schema import MetricType
from repro.errors import IndexBuildError
from repro.index.base import VectorIndex, register_index
from repro.index.distances import adjusted_distances, topk_smallest
from repro.index.kmeans import kmeans


@register_index("IVF_FLAT")
class IvfFlatIndex(VectorIndex):
    """Inverted file with exact in-cluster scan."""

    def __init__(self, metric: MetricType, dim: int, nlist: int = 128,
                 nprobe: int = 8, seed: int = 0) -> None:
        super().__init__(metric, dim)
        if nlist <= 0:
            raise IndexBuildError(f"nlist must be positive, got {nlist}")
        if nprobe <= 0:
            raise IndexBuildError(f"nprobe must be positive, got {nprobe}")
        self.nlist = nlist
        self.nprobe = nprobe
        self.seed = seed
        self._centroids: np.ndarray | None = None
        self._lists: list[np.ndarray] = []       # member ids per cluster
        self._list_vectors: list[np.ndarray] = []  # member vectors per cluster

    def build(self, data: np.ndarray) -> None:
        arr = self._check_build_input(data)
        k = min(self.nlist, arr.shape[0])
        result = kmeans(arr, k, seed=self.seed)
        self._centroids = result.centroids
        self._lists = []
        self._list_vectors = []
        for cluster in range(result.k):
            members = np.flatnonzero(result.assignments == cluster)
            self._lists.append(members.astype(np.int64))
            self._list_vectors.append(arr[members])
        self.ntotal = arr.shape[0]
        self.is_built = True

    @property
    def effective_nlist(self) -> int:
        return len(self._lists)

    def search(self, queries: np.ndarray, k: int,
               nprobe: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        queries = self._check_query_input(queries)
        nprobe = min(nprobe or self.nprobe, self.effective_nlist)
        self.stats.reset()

        centroid_dists = adjusted_distances(queries, self._centroids,
                                            self.metric)
        self.stats.float_comparisons += (queries.shape[0]
                                         * self._centroids.shape[0])
        probe_lists, _ = topk_smallest(centroid_dists, nprobe)

        nq = queries.shape[0]
        all_ids = np.full((nq, k), -1, dtype=np.int64)
        all_dists = np.full((nq, k), np.inf, dtype=np.float32)
        for qi in range(nq):
            cand_ids: list[np.ndarray] = []
            cand_vecs: list[np.ndarray] = []
            for cluster in probe_lists[qi]:
                members = self._lists[cluster]
                if len(members):
                    cand_ids.append(members)
                    cand_vecs.append(self._list_vectors[cluster])
            if not cand_ids:
                continue
            ids = np.concatenate(cand_ids)
            vecs = np.concatenate(cand_vecs, axis=0)
            dists = adjusted_distances(queries[qi], vecs, self.metric)[0]
            self.stats.float_comparisons += len(ids)
            idx, vals = topk_smallest(dists, k)
            take = len(idx)
            all_ids[qi, :take] = ids[idx]
            all_dists[qi, :take] = vals
        return all_ids, all_dists

    def list_sizes(self) -> np.ndarray:
        """Cluster occupancy (diagnostics / balance tests)."""
        return np.array([len(members) for members in self._lists])
