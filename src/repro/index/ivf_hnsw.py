"""IVF-HNSW: inverted file whose coarse quantizer is an HNSW graph.

With many clusters (large ``nlist``), finding the nearest centroids by
brute force starts to dominate; IVF-HNSW builds an HNSW graph *over the
centroids* so probing costs ~``ef`` comparisons instead of ``nlist``.
Lists hold raw vectors (as IVF-Flat) and are scanned exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.schema import MetricType
from repro.index.base import VectorIndex, register_index
from repro.index.distances import adjusted_distances, topk_smallest
from repro.index.hnsw import HnswIndex
from repro.index.kmeans import kmeans


@register_index("IVF_HNSW")
class IvfHnswIndex(VectorIndex):
    """IVF with an HNSW-navigated centroid set."""

    def __init__(self, metric: MetricType, dim: int, nlist: int = 256,
                 nprobe: int = 8, M: int = 8, ef_search: int = 32,
                 seed: int = 0) -> None:
        super().__init__(metric, dim)
        self.nlist = nlist
        self.nprobe = nprobe
        self.seed = seed
        self._centroid_graph = HnswIndex(metric, dim, M=M,
                                         ef_search=ef_search, seed=seed)
        self._lists: list[np.ndarray] = []
        self._list_vectors: list[np.ndarray] = []

    def build(self, data: np.ndarray) -> None:
        arr = self._check_build_input(data)
        k = min(self.nlist, arr.shape[0])
        coarse = kmeans(arr, k, seed=self.seed)
        self._centroid_graph.build(coarse.centroids)
        self._lists = []
        self._list_vectors = []
        for cluster in range(coarse.k):
            members = np.flatnonzero(coarse.assignments == cluster)
            self._lists.append(members.astype(np.int64))
            self._list_vectors.append(arr[members])
        self.ntotal = arr.shape[0]
        self.is_built = True

    def search(self, queries: np.ndarray, k: int,
               nprobe: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        queries = self._check_query_input(queries)
        nprobe = min(nprobe or self.nprobe, len(self._lists))
        self.stats.reset()
        # Navigate the centroid graph instead of scanning all centroids.
        probe_lists, _ = self._centroid_graph.search(queries, nprobe)
        self.stats = self.stats.merged_with(self._centroid_graph.stats)

        nq = queries.shape[0]
        all_ids = np.full((nq, k), -1, dtype=np.int64)
        all_dists = np.full((nq, k), np.inf, dtype=np.float32)
        for qi in range(nq):
            cand_ids: list[np.ndarray] = []
            cand_vecs: list[np.ndarray] = []
            for cluster in probe_lists[qi]:
                if cluster < 0:
                    continue
                members = self._lists[int(cluster)]
                if len(members):
                    cand_ids.append(members)
                    cand_vecs.append(self._list_vectors[int(cluster)])
            if not cand_ids:
                continue
            ids = np.concatenate(cand_ids)
            vecs = np.concatenate(cand_vecs, axis=0)
            dists = adjusted_distances(queries[qi], vecs, self.metric)[0]
            self.stats.float_comparisons += len(ids)
            idx, vals = topk_smallest(dists, k)
            all_ids[qi, :len(idx)] = ids[idx]
            all_dists[qi, :len(idx)] = vals
        return all_ids, all_dists
