"""Hierarchical storage-aware index (the paper's future-work direction, §7).

"Current vector search index assumes a single type of storage ... We will
explore indexes that can jointly utilize all devices on the storage
hierarchy.  For example, most applications have some hot vectors (e.g.,
popular products in e-commerce) that are frequently accessed by search
requests, which can be placed in fast storage."

:class:`TieredIndex` keeps a **hot tier** of frequently returned vectors
in DRAM (raw float32, searched exactly) and the **cold tier** on SSD (the
Section 4.4 bucketed index).  A query scans the hot tier plus a reduced
SSD probe; an exponentially decayed access counter tracks popularity and
:meth:`rebalance` promotes the most accessed vectors (demoting the
coldest) — the "popular products" adaptation loop.  Hits from both tiers
are merged exactly; ids always refer to the original build matrix, so the
tiering is invisible to callers.
"""

from __future__ import annotations

import numpy as np

from repro.core.schema import MetricType
from repro.errors import IndexBuildError
from repro.index.base import VectorIndex, register_index
from repro.index.distances import adjusted_distances, topk_smallest
from repro.index.ssd import SsdIndex


@register_index("TIERED")
class TieredIndex(VectorIndex):
    """Hot DRAM tier + cold SSD tier with popularity-driven promotion."""

    def __init__(self, metric: MetricType, dim: int,
                 hot_fraction: float = 0.1, nprobe: int = 8,
                 replicas: int = 1, decay: float = 0.95,
                 seed: int = 0) -> None:
        super().__init__(metric, dim)
        if not 0.0 < hot_fraction < 1.0:
            raise IndexBuildError(
                f"hot_fraction must be in (0, 1), got {hot_fraction}")
        self.hot_fraction = hot_fraction
        self.nprobe = nprobe
        self.decay = decay
        self._cold = SsdIndex(metric, dim, nprobe=nprobe,
                              replicas=replicas, seed=seed)
        self._data: np.ndarray | None = None
        self._hot_ids: np.ndarray = np.empty(0, dtype=np.int64)
        self._access: np.ndarray | None = None
        self.promotions = 0

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------

    def build(self, data: np.ndarray) -> None:
        arr = self._check_build_input(data)
        self._data = arr
        self._cold.build(arr)
        self._access = np.zeros(arr.shape[0], dtype=np.float64)
        # Initial hot set: uniform sample (no access history yet).
        hot_n = max(1, int(arr.shape[0] * self.hot_fraction))
        rng = np.random.default_rng(0)
        self._hot_ids = np.sort(rng.choice(arr.shape[0], hot_n,
                                           replace=False)).astype(np.int64)
        self.ntotal = arr.shape[0]
        self.is_built = True

    @property
    def hot_size(self) -> int:
        return len(self._hot_ids)

    def hot_set(self) -> np.ndarray:
        return self._hot_ids.copy()

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def search(self, queries: np.ndarray, k: int,
               nprobe: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        queries = self._check_query_input(queries)
        self.stats.reset()
        nq = queries.shape[0]
        all_ids = np.full((nq, k), -1, dtype=np.int64)
        all_dists = np.full((nq, k), np.inf, dtype=np.float32)

        # Cold tier once per batch (its stats accumulate inside).
        cold_ids, cold_dists = self._cold.search(queries, k,
                                                 nprobe=nprobe)
        self.stats = self.stats.merged_with(self._cold.stats)

        hot_vectors = self._data[self._hot_ids]
        for qi in range(nq):
            hot_dists = adjusted_distances(queries[qi], hot_vectors,
                                           self.metric)[0]
            self.stats.float_comparisons += len(self._hot_ids)
            hot_idx, hot_vals = topk_smallest(hot_dists, k)
            merged: dict[int, float] = {}
            for local, dist in zip(hot_idx, hot_vals):
                merged[int(self._hot_ids[local])] = float(dist)
            for node, dist in zip(cold_ids[qi], cold_dists[qi]):
                if node < 0:
                    continue
                node = int(node)
                if node not in merged or dist < merged[node]:
                    merged[node] = float(dist)
            ordered = sorted(merged.items(), key=lambda kv: kv[1])[:k]
            for col, (node, dist) in enumerate(ordered):
                all_ids[qi, col] = node
                all_dists[qi, col] = dist
                self._access[node] += 1.0
        return all_ids, all_dists

    # ------------------------------------------------------------------
    # popularity adaptation
    # ------------------------------------------------------------------

    def rebalance(self) -> int:
        """Promote the most-accessed vectors into the hot tier.

        Returns how many hot slots changed.  Access counters decay so the
        hot set tracks *recent* popularity.
        """
        if self._access is None:
            raise IndexBuildError("index not built")
        hot_n = len(self._hot_ids)
        new_hot = np.sort(np.argsort(-self._access, kind="stable")[:hot_n]
                          ).astype(np.int64)
        changed = len(set(new_hot.tolist())
                      - set(self._hot_ids.tolist()))
        self._hot_ids = new_hot
        self._access *= self.decay
        self.promotions += changed
        return changed

    def dram_bytes(self) -> int:
        """Hot-tier vectors plus the cold tier's centroid directory."""
        return (len(self._hot_ids) * self.dim * 4
                + self._cold.dram_bytes())

    def hot_hit_fraction(self, queries: np.ndarray, k: int) -> float:
        """Fraction of final results served from the hot tier."""
        queries = self._check_query_input(queries)
        ids, _ = self.search(queries, k)
        hot = set(self._hot_ids.tolist())
        valid = ids[ids >= 0]
        if valid.size == 0:
            return 0.0
        return float(np.isin(valid, list(hot)).mean())
