"""NSG: navigating spreading-out graph (Fu et al., VLDB'19).

NSG re-selects the edges of a k-NN graph so that, from a single
*navigating node* (the dataset medoid), there is a monotone path to every
point.  We implement the construction with the robust-prune rule of the
same monotonic-graph family (Vamana / DiskANN, itself derived from NSG's
MRNG rule):

1. start from each node's exact kNN edges (truncated to ``out_degree``);
2. for each node, beam-search the *current* graph from the medoid and use
   the visited set plus the kNN list as the candidate pool;
3. ``robust_prune`` keeps the closest candidate, discards candidates that
   are ``alpha`` times closer to a kept edge than to the node (diversity),
   and repeats until ``out_degree`` edges are chosen — ``alpha > 1``
   deliberately retains long-range edges;
4. every chosen edge is mirrored; overfull nodes are re-pruned;
5. two passes (``alpha = 1`` then the configured ``alpha``), then any node
   unreachable from the medoid is grafted on.

Search is a best-first beam from the navigating node.
"""

from __future__ import annotations

import numpy as np

from repro.core.schema import MetricType
from repro.errors import IndexBuildError
from repro.index.base import SearchStats, VectorIndex, register_index
from repro.index.distances import adjusted_distances
from repro.index.graph import beam_search, ensure_connected, exact_knn_graph


@register_index("NSG")
class NsgIndex(VectorIndex):
    """Navigating spreading-out graph (robust-prune construction)."""

    def __init__(self, metric: MetricType, dim: int, knn: int = 24,
                 out_degree: int = 16, ef_search: int = 64,
                 ef_construction: int = 96, alpha: float = 1.2,
                 seed: int = 0) -> None:
        super().__init__(metric, dim)
        if out_degree < 2:
            raise IndexBuildError(f"out_degree must be >= 2, got {out_degree}")
        if alpha < 1.0:
            raise IndexBuildError(f"alpha must be >= 1, got {alpha}")
        self.knn = max(knn, out_degree)
        self.out_degree = out_degree
        self.ef_search = ef_search
        self.ef_construction = max(ef_construction, out_degree)
        self.alpha = alpha
        self.seed = seed
        self._data: np.ndarray | None = None
        self._graph: list[np.ndarray] = []
        self._medoid: int = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def build(self, data: np.ndarray) -> None:
        arr = self._check_build_input(data)
        self._data = arr
        n = arr.shape[0]
        knn = exact_knn_graph(arr, self.knn, self.metric)

        centroid = arr.mean(axis=0, keepdims=True)
        self._medoid = int(
            adjusted_distances(centroid, arr, self.metric)[0].argmin())

        graph: list[np.ndarray] = [nbrs[:self.out_degree].copy()
                                   for nbrs in knn]
        scratch = SearchStats()
        rng = np.random.default_rng(self.seed)
        for alpha in (1.0, self.alpha):
            order = rng.permutation(n)
            for node in order:
                node = int(node)
                visited: set[int] = set()
                beam_search(graph, arr, arr[node], [self._medoid],
                            self.ef_construction, self.metric, scratch,
                            visited_out=visited)
                pool = visited | set(int(x) for x in graph[node]) \
                    | set(int(x) for x in knn[node])
                pool.discard(node)
                graph[node] = self._robust_prune(arr, node, pool, alpha)
                for nb in graph[node]:
                    nb = int(nb)
                    merged = np.append(graph[nb], node)
                    if len(merged) > self.out_degree:
                        graph[nb] = self._robust_prune(
                            arr, nb, set(int(x) for x in merged), alpha)
                    else:
                        graph[nb] = np.unique(merged)
        ensure_connected(graph, arr, self._medoid, self.metric)
        self._graph = graph
        self.ntotal = n
        self.is_built = True

    def _robust_prune(self, arr: np.ndarray, node: int, pool: set[int],
                      alpha: float) -> np.ndarray:
        """Vamana robust prune: diverse edges, long links kept by alpha."""
        pool = pool - {node}
        if not pool:
            return np.empty(0, dtype=np.int64)
        cand = np.asarray(sorted(pool), dtype=np.int64)
        dists = adjusted_distances(arr[node], arr[cand], self.metric)[0]
        order = np.argsort(dists, kind="stable")
        cand = cand[order]
        dists = dists[order]
        alive = np.ones(len(cand), dtype=bool)
        kept: list[int] = []
        for idx in range(len(cand)):
            if not alive[idx]:
                continue
            kept.append(int(cand[idx]))
            if len(kept) >= self.out_degree:
                break
            # Discard candidates much closer to the new edge than to node.
            to_kept = adjusted_distances(arr[cand[idx]],
                                         arr[cand[alive]],
                                         self.metric)[0]
            alive_idx = np.flatnonzero(alive)
            # Adjusted distances can be negative (IP); the alpha rule is
            # formulated on nonnegative distances, so shift both sides.
            shift = min(float(to_kept.min(initial=0.0)),
                        float(dists[alive].min(initial=0.0)), 0.0)
            discard = (alpha * (to_kept - shift)
                       <= (dists[alive] - shift))
            alive[alive_idx[discard]] = False
            alive[idx] = False
        return np.asarray(kept, dtype=np.int64)

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def search(self, queries: np.ndarray, k: int,
               ef_search: int | None = None
               ) -> tuple[np.ndarray, np.ndarray]:
        queries = self._check_query_input(queries)
        ef = max(ef_search or self.ef_search, k)
        self.stats.reset()
        nq = queries.shape[0]
        all_ids = np.full((nq, k), -1, dtype=np.int64)
        all_dists = np.full((nq, k), np.inf, dtype=np.float32)
        for qi in range(nq):
            found = beam_search(self._graph, self._data, queries[qi],
                                [self._medoid], ef, self.metric, self.stats)
            for col, (dist, node) in enumerate(found[:k]):
                all_ids[qi, col] = node
                all_dists[qi, col] = dist
        return all_ids, all_dists

    @property
    def medoid(self) -> int:
        """The navigating node."""
        return self._medoid
