"""SSD index (Section 4.4) — the NeurIPS'21 track-2 winning design.

Large collections live on SSD; only bucket *centroids* stay in DRAM:

* vectors are grouped by hierarchical balanced k-means into buckets sized to
  fit 4 KB-aligned SSD blocks (vectors are SQ-compressed to 1 byte/dim, so
  a 128-d vector bucket holds ~32 vectors per block);
* bucket centroids are indexed in DRAM with an existing in-memory index
  (HNSW by default) so picking buckets is cheap;
* a query finds the ``nprobe`` most similar centroids, "reads" those buckets
  from SSD (every read counted in 4 KB blocks for the cost model), decodes
  and reranks exactly;
* **multi-assignment**: hierarchical k-means runs ``replicas`` times with
  different seeds, so each vector lands in several buckets — the LSH-style
  replication that recovers recall lost when k-means splits a query's true
  neighbours across buckets.  Duplicate hits are removed at rerank.
"""

from __future__ import annotations

import numpy as np

from repro.core.schema import MetricType
from repro.errors import IndexBuildError
from repro.index.base import VectorIndex, register_index
from repro.index.distances import adjusted_distances
from repro.index.hnsw import HnswIndex
from repro.index.kmeans import hierarchical_balanced_kmeans
from repro.index.sq import ScalarQuantizer

BLOCK_BYTES = 4096


@register_index("SSD")
class SsdIndex(VectorIndex):
    """Bucketed, SQ-compressed, SSD-resident index with multi-assignment."""

    def __init__(self, metric: MetricType, dim: int, nprobe: int = 8,
                 replicas: int = 2, centroid_index: str = "HNSW",
                 seed: int = 0) -> None:
        super().__init__(metric, dim)
        if replicas < 1:
            raise IndexBuildError(f"replicas must be >= 1, got {replicas}")
        self.nprobe = nprobe
        self.replicas = replicas
        self.centroid_index_type = centroid_index.upper()
        self.seed = seed
        # One SQ-coded byte per dimension: how many vectors fit in a block.
        self.bucket_capacity = max(1, BLOCK_BYTES // dim)
        self.blocks_per_bucket = max(1, -(-dim // BLOCK_BYTES))
        self.sq = ScalarQuantizer(dim)
        self._buckets: list[np.ndarray] = []        # member ids
        self._bucket_codes: list[np.ndarray] = []   # SQ codes per bucket
        self._centroids: np.ndarray | None = None
        self._centroid_searcher: VectorIndex | None = None

    def build(self, data: np.ndarray) -> None:
        arr = self._check_build_input(data)
        self.sq.train(arr)
        codes = self.sq.encode(arr)

        self._buckets = []
        self._bucket_codes = []
        centroid_rows: list[np.ndarray] = []
        for replica in range(self.replicas):
            result = hierarchical_balanced_kmeans(
                arr, max_cluster_size=self.bucket_capacity,
                seed=self.seed + 1009 * replica)
            for cluster in range(result.k):
                members = np.flatnonzero(result.assignments == cluster)
                if not len(members):
                    continue
                self._buckets.append(members.astype(np.int64))
                self._bucket_codes.append(codes[members])
                centroid_rows.append(result.centroids[cluster])
        self._centroids = np.stack(centroid_rows).astype(np.float32)

        if self.centroid_index_type == "HNSW" and len(self._centroids) > 8:
            searcher = HnswIndex(self.metric, self.dim, M=16,
                                 ef_search=max(64, 4 * self.nprobe),
                                 seed=self.seed)
        else:
            from repro.index.flat import FlatIndex
            searcher = FlatIndex(self.metric, self.dim)
        searcher.build(self._centroids)
        self._centroid_searcher = searcher
        self.ntotal = arr.shape[0]
        self.is_built = True

    @property
    def num_buckets(self) -> int:
        return len(self._buckets)

    def bucket_sizes(self) -> np.ndarray:
        """Bucket occupancies; all must be <= bucket_capacity (tested)."""
        return np.asarray([len(b) for b in self._buckets])

    def search(self, queries: np.ndarray, k: int,
               nprobe: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        queries = self._check_query_input(queries)
        nprobe = min(nprobe or self.nprobe, self.num_buckets)
        self.stats.reset()

        # Stage 1: pick buckets by centroid similarity (DRAM).
        bucket_ids, _ = self._centroid_searcher.search(queries, nprobe)
        self.stats = self.stats.merged_with(self._centroid_searcher.stats)

        # Stage 2: fetch the buckets from SSD and rerank exactly.
        nq = queries.shape[0]
        all_ids = np.full((nq, k), -1, dtype=np.int64)
        all_dists = np.full((nq, k), np.inf, dtype=np.float32)
        for qi in range(nq):
            member_lists: list[np.ndarray] = []
            code_lists: list[np.ndarray] = []
            for bucket in bucket_ids[qi]:
                if bucket < 0:
                    continue
                self.stats.ssd_blocks_read += self.blocks_per_bucket
                member_lists.append(self._buckets[int(bucket)])
                code_lists.append(self._bucket_codes[int(bucket)])
            if not member_lists:
                continue
            ids = np.concatenate(member_lists)
            decoded = self.sq.decode(np.concatenate(code_lists, axis=0))
            dists = adjusted_distances(queries[qi], decoded, self.metric)[0]
            self.stats.quantized_comparisons += len(ids)
            # Multi-assignment produces duplicates: keep each id's best hit.
            order = np.argsort(dists, kind="stable")
            seen: set[int] = set()
            count = 0
            for oi in order:
                node = int(ids[oi])
                if node in seen:
                    continue
                seen.add(node)
                all_ids[qi, count] = node
                all_dists[qi, count] = dists[oi]
                count += 1
                if count >= k:
                    break
        return all_ids, all_dists

    def dram_bytes(self) -> int:
        """DRAM footprint: centroids only (the design's headline saving)."""
        assert self._centroids is not None
        return self._centroids.nbytes

    def ssd_bytes(self) -> int:
        """SSD footprint: all buckets at block granularity."""
        return self.num_buckets * self.blocks_per_bucket * BLOCK_BYTES
