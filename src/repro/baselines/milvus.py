"""The Milvus (pre-cloud-native) baseline for Figure 6.

Section 5: "Milvus has multiple read nodes, but only one write node, to
ensure eventual consistency.  The write node [is] responsible for data
insertion and index construction, and thus write tasks and index building
tasks contend for resource.  As a result, the index building latency is
long and brute force search is used for a large amount of data."

:class:`MilvusLikeCluster` reuses the full pipeline but reshapes it into
that architecture:

* exactly **one** index node, which is also charged the ingestion work —
  every insert batch pushes its write-processing time onto the node's
  ``busy_until_ms``, so index builds queue behind ingestion (the paper's
  resource contention);
* **no temporary slice indexes** — un-indexed data is scanned brute force;
* **eventual consistency** only (searches never wait on the log).

Everything else (loggers, WAL, query nodes, binlogs) is identical, so the
Figure 6 gap isolates exactly the architectural difference the paper
credits.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.cluster.manu import ManuCluster
from repro.config import DEFAULT_CONFIG, ManuConfig
from repro.core.consistency import ConsistencyLevel
from repro.core.results import SearchResult
from repro.core.schema import MetricType
from repro.sim.costmodel import CostModel

from dataclasses import replace


class MilvusLikeCluster(ManuCluster):
    """ManuCluster reshaped into the Milvus 1.x architecture."""

    def __init__(self, config: Optional[ManuConfig] = None,
                 cost_model: Optional[CostModel] = None,
                 num_query_nodes: int = 2,
                 ingest_ms_per_row: float = 0.4,
                 **kwargs) -> None:
        base = config if config is not None else DEFAULT_CONFIG
        segment = replace(base.segment, enable_temp_index=False)
        config = base.with_overrides(segment=segment)
        kwargs.pop("num_index_nodes", None)
        super().__init__(config=config, cost_model=cost_model,
                         num_query_nodes=num_query_nodes,
                         num_index_nodes=1, **kwargs)
        self.ingest_ms_per_row = ingest_ms_per_row
        self.write_node = self.index_nodes[0]

    # ------------------------------------------------------------------
    # the single write node is charged for ingestion
    # ------------------------------------------------------------------

    def insert(self, collection: str, data: Mapping) -> tuple:
        pks = super().insert(collection, data)
        # Ingestion work occupies the combined write/index node, delaying
        # any queued index builds (Figure 6's contention).
        busy_from = max(self.now(), self.write_node.busy_until_ms)
        self.write_node.busy_until_ms = (
            busy_from + self.ingest_ms_per_row * len(pks))
        return pks

    def search(self, collection: str, queries, k: int,
               field: Optional[str] = None,
               metric: MetricType = MetricType.EUCLIDEAN,
               expr: Optional[str] = None,
               consistency: ConsistencyLevel = ConsistencyLevel.EVENTUAL,
               staleness_ms: float = 0.0,
               at_ms: Optional[float] = None) -> list[SearchResult]:
        # Milvus supports eventual consistency only.
        return super().search(collection, queries, k, field=field,
                              metric=metric, expr=expr,
                              consistency=ConsistencyLevel.EVENTUAL,
                              staleness_ms=0.0, at_ms=at_ms)

    def unindexed_rows(self, collection: str) -> int:
        """Rows not yet covered by a built index (the brute-force set)."""
        covered = 0
        for segment_id in self.data_coord.flushed_segments(collection):
            for fieldname in self.index_coord.index_specs_for(collection):
                route = self.index_coord.index_route(collection, segment_id,
                                                     fieldname)
                if route is not None:
                    covered += route["num_rows"]
                    break
        return max(0, self.collection_row_count(collection) - covered)
