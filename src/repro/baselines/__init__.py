"""Baseline systems the paper compares against.

* :mod:`repro.baselines.milvus` — the Milvus (1.x) architecture for the
  Figure 6 mixed-workload comparison: a single write node performing both
  data ingestion and index construction, no temporary indexes, eventual
  consistency only;
* :mod:`repro.baselines.engines` — single-node architecture models of
  Elasticsearch, Vearch, Vald and Vespa for the Figure 8 recall-throughput
  comparison, built over this repo's real index implementations with each
  system's characteristic overheads (disk residency, aggregation layers,
  implementation constants).
"""

from repro.baselines.milvus import MilvusLikeCluster
from repro.baselines.engines import (
    EngineResult,
    ManuEngine,
    ElasticsearchLikeEngine,
    VearchLikeEngine,
    ValdLikeEngine,
    VespaLikeEngine,
)

__all__ = [
    "MilvusLikeCluster",
    "EngineResult",
    "ManuEngine",
    "ElasticsearchLikeEngine",
    "VearchLikeEngine",
    "ValdLikeEngine",
    "VespaLikeEngine",
]
