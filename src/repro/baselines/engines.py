"""Single-node engine models for the Figure 8 recall-throughput study.

The paper compares Manu against Elasticsearch 8, Vearch, Vald and Vespa on
one node and attributes the ordering to architecture: "ES is a disk-based
solution and Vearch's three-layer aggregation procedure
(searcher-broker-blender) for search results introduces high overhead.
The performances of Vald and Vespa are much better ... but still inferior
... because Manu has better implementations with optimizations for CPU
cache and SIMD."

Each engine here runs *real* index code from :mod:`repro.index` (so recall
is genuine) and derives per-query latency from the measured work through
the shared cost model plus the engine's architectural overheads:

============  =============  =========================================
engine        index          overhead model
============  =============  =========================================
Manu          IVF/HNSW       none (reference implementation, factor 1.0)
Vespa         HNSW only      implementation factor 1.4
Vald          NGT only       implementation factor 1.6
Vearch        IVF (Faiss)    3-layer aggregation: +2 rpc hops, 3x result
                             serialization, 2 extra merge passes
ES            HNSW           disk-resident vectors: each distance
                             evaluation risks an HDD block read (page
                             cache hit rate 0.5), plus REST overhead
============  =============  =========================================

Engines expose parameter sweeps so the benchmark traces a full
recall-vs-QPS curve per system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

import numpy as np

from repro.datasets.synthetic import Dataset, recall_at_k
from repro.index.base import VectorIndex, create_index
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL


@dataclass(frozen=True)
class EngineResult:
    """One point on an engine's recall-throughput curve."""

    engine: str
    param: Mapping
    recall: float
    latency_ms: float

    @property
    def qps(self) -> float:
        return 1000.0 / self.latency_ms if self.latency_ms > 0 else 0.0


class _BaseEngine:
    """Shared fit/sweep machinery; subclasses set overhead behaviour."""

    name = "base"
    implementation_factor = 1.0

    def __init__(self, cost_model: Optional[CostModel] = None,
                 seed: int = 0) -> None:
        self.cost = cost_model if cost_model is not None \
            else DEFAULT_COST_MODEL
        self.seed = seed
        self._index: Optional[VectorIndex] = None
        self._dataset: Optional[Dataset] = None

    # subclasses override ------------------------------------------------

    def _build_index(self, dataset: Dataset) -> VectorIndex:
        raise NotImplementedError

    def _sweep_params(self) -> Iterable[Mapping]:
        raise NotImplementedError

    def _search(self, queries: np.ndarray, k: int, param: Mapping):
        raise NotImplementedError

    def _architecture_overhead_ms(self, k: int) -> float:
        """Per-query fixed overhead beyond compute (rpc, serialization)."""
        return self.cost.rpc_hop()

    # shared -------------------------------------------------------------

    def fit(self, dataset: Dataset) -> None:
        self._dataset = dataset
        self._index = self._build_index(dataset)

    def measure(self, k: int, truth: np.ndarray) -> list[EngineResult]:
        """Trace the engine's recall-throughput curve."""
        assert self._index is not None and self._dataset is not None
        out = []
        for param in self._sweep_params():
            ids, _ = self._search(self._dataset.queries, k, param)
            recall = recall_at_k(ids, truth)
            nq = self._dataset.queries.shape[0]
            stats = self._index.stats
            compute_ms = (
                self.cost.distance_cost(stats.float_comparisons,
                                        self._dataset.dim)
                + self.cost.distance_cost(stats.quantized_comparisons,
                                          self._dataset.dim,
                                          quantized=True)) / nq
            extra_ms = self._data_access_ms(stats, nq)
            latency = (compute_ms * self.implementation_factor + extra_ms
                       + self._architecture_overhead_ms(k))
            out.append(EngineResult(self.name, dict(param), recall,
                                    latency))
        return out

    def _data_access_ms(self, stats, nq: int) -> float:
        """Storage-access cost per query (disk engines override)."""
        return 0.0


class ManuEngine(_BaseEngine):
    """Manu on one query node (the reference curve)."""

    name = "Manu"
    implementation_factor = 1.0

    def __init__(self, index_type: str = "IVF_FLAT", **kwargs) -> None:
        super().__init__(**kwargs)
        self.index_type = index_type.upper()

    def _build_index(self, dataset: Dataset) -> VectorIndex:
        if self.index_type == "HNSW":
            index = create_index("HNSW", dataset.metric, dataset.dim,
                                 M=16, ef_construction=100, seed=self.seed)
        else:
            index = create_index("IVF_FLAT", dataset.metric, dataset.dim,
                                 nlist=max(32, dataset.size // 128),
                                 seed=self.seed)
        index.build(dataset.vectors)
        return index

    def _sweep_params(self) -> Iterable[Mapping]:
        if self.index_type == "HNSW":
            return [{"ef_search": ef} for ef in (16, 32, 64, 128, 256)]
        return [{"nprobe": p} for p in (1, 2, 4, 8, 16, 32)]

    def _search(self, queries, k, param):
        return self._index.search(queries, k, **param)


class VespaLikeEngine(ManuEngine):
    """Vespa: HNSW only, solid implementation but heavier runtime."""

    name = "Vespa"
    implementation_factor = 1.4

    def __init__(self, **kwargs) -> None:
        kwargs.pop("index_type", None)
        super().__init__(index_type="HNSW", **kwargs)

    def _architecture_overhead_ms(self, k: int) -> float:
        # Container + searcher chain adds a second hop.
        return 2 * self.cost.rpc_hop()


class ValdLikeEngine(_BaseEngine):
    """Vald: NGT index behind a gateway."""

    name = "Vald"
    implementation_factor = 1.6

    def _build_index(self, dataset: Dataset) -> VectorIndex:
        index = create_index("NGT", dataset.metric, dataset.dim,
                             edge_size=24, num_seeds=64, seed=self.seed)
        index.build(dataset.vectors)
        return index

    def _sweep_params(self) -> Iterable[Mapping]:
        return [{"ef_search": ef} for ef in (16, 32, 64, 128, 256)]

    def _search(self, queries, k, param):
        return self._index.search(queries, k, **param)

    def _architecture_overhead_ms(self, k: int) -> float:
        # gateway -> agent hop each way.
        return 2 * self.cost.rpc_hop()


class VearchLikeEngine(_BaseEngine):
    """Vearch: Faiss IVF with a searcher-broker-blender pipeline."""

    name = "Vearch"
    implementation_factor = 1.2
    serialize_ms_per_result = 0.05

    def _build_index(self, dataset: Dataset) -> VectorIndex:
        index = create_index("IVF_FLAT", dataset.metric, dataset.dim,
                             nlist=max(32, dataset.size // 128),
                             seed=self.seed)
        index.build(dataset.vectors)
        return index

    def _sweep_params(self) -> Iterable[Mapping]:
        return [{"nprobe": p} for p in (1, 2, 4, 8, 16, 32)]

    def _search(self, queries, k, param):
        return self._index.search(queries, k, **param)

    def _architecture_overhead_ms(self, k: int) -> float:
        # searcher -> broker -> blender: two extra hops, and partial
        # results are serialized and re-merged at each layer.
        hops = 3 * self.cost.rpc_hop()
        serialization = 3 * k * self.serialize_ms_per_result
        merges = 2 * self.cost.topk_merge_cost(8, k)
        return hops + serialization + merges


class ElasticsearchLikeEngine(_BaseEngine):
    """ES 8 dense-vector search: HNSW over disk-resident vectors."""

    name = "ES"
    implementation_factor = 1.3
    page_cache_hit_rate = 0.5
    rest_overhead_ms = 1.0

    def _build_index(self, dataset: Dataset) -> VectorIndex:
        index = create_index("HNSW", dataset.metric, dataset.dim,
                             M=16, ef_construction=100, seed=self.seed)
        index.build(dataset.vectors)
        return index

    def _sweep_params(self) -> Iterable[Mapping]:
        return [{"ef_search": ef} for ef in (16, 32, 64, 128, 256)]

    def _search(self, queries, k, param):
        return self._index.search(queries, k, **param)

    def _data_access_ms(self, stats, nq: int) -> float:
        # Every distance evaluation touches a vector; misses in the page
        # cache pay an HDD-class block read (Lucene segments on disk).
        misses = stats.float_comparisons * (1.0 - self.page_cache_hit_rate)
        return self.cost.disk_read(int(misses)) / nq

    def _architecture_overhead_ms(self, k: int) -> float:
        return self.rest_overhead_ms + self.cost.rpc_hop()


ALL_ENGINES = {
    "Manu": ManuEngine,
    "ES": ElasticsearchLikeEngine,
    "Vearch": VearchLikeEngine,
    "Vald": ValdLikeEngine,
    "Vespa": VespaLikeEngine,
}
