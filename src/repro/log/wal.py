"""WAL record types and serialization (Section 3.3).

Manu records every state-changing request to the log: data manipulation
(insert/delete), data definition (create/drop collection), and system
coordination messages; search requests are read-only and never logged.  The
log is *logical* — records describe events, not page modifications — so each
subscriber consumes them its own way.

Records carry the packed hybrid timestamp (LSN) the logger obtained from the
TSO.  ``to_bytes``/``record_from_bytes`` give a compact binary encoding
(JSON envelope + raw little-endian float32 vector payloads) used when WAL
segments are archived to the object store.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np


@dataclass(frozen=True)
class WalRecord:
    """Base class: every record has the issuing LSN (packed timestamp)."""

    ts: int

    trace: Optional[tuple] = None
    """Wire-form :class:`repro.tracing.TraceContext` of the publishing
    span, stamped by the broker (None = untraced).  Records are frozen, so
    stamping uses ``dataclasses.replace``."""

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class InsertRecord(WalRecord):
    """A batch of entities routed to one segment of one shard."""

    collection: str = ""
    shard: int = 0
    segment_id: str = ""
    pks: tuple = ()
    columns: Mapping[str, Any] = field(default_factory=dict)
    """Field name -> list/array of values, aligned with ``pks``."""

    @property
    def num_rows(self) -> int:
        return len(self.pks)


@dataclass(frozen=True)
class DeleteRecord(WalRecord):
    """Deletion of entities by primary key."""

    collection: str = ""
    shard: int = 0
    pks: tuple = ()


@dataclass(frozen=True)
class BatchRecord(WalRecord):
    """A group-commit envelope: one WAL publish, N logical records.

    Loggers coalesce insert/delete records buffered in a commit group
    into one ``BatchRecord`` per (collection, shard) flush.  Inner
    records keep their own distinct LSNs (ascending, allocated at flush
    time) so replay guards keyed on per-record ``ts`` keep working; the
    envelope's ``ts`` is the *last* (= max) inner LSN, which satisfies
    the broker's per-channel monotonicity check for the batch as a
    whole.
    """

    collection: str = ""
    shard: int = 0
    records: tuple = ()
    """Inner :class:`InsertRecord`/:class:`DeleteRecord` instances in
    commit order."""

    @property
    def num_records(self) -> int:
        return len(self.records)

    @property
    def num_rows(self) -> int:
        return sum(len(r.pks) for r in self.records)


@dataclass(frozen=True)
class TimeTickRecord(WalRecord):
    """Periodic watermark: all records with LSN <= ts have been published."""

    source: str = ""


@dataclass(frozen=True)
class DdlRecord(WalRecord):
    """Data definition: create/drop collection, create index, ..."""

    op: str = ""
    collection: str = ""
    payload: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CoordRecord(WalRecord):
    """System coordination broadcast (segment sealed, index built, ...)."""

    kind_name: str = ""
    payload: Mapping[str, Any] = field(default_factory=dict)

    @property
    def kind(self) -> str:  # keep .kind uniform across record types
        return self.kind_name


_RECORD_TYPES = {
    "InsertRecord": InsertRecord,
    "DeleteRecord": DeleteRecord,
    "BatchRecord": BatchRecord,
    "TimeTickRecord": TimeTickRecord,
    "DdlRecord": DdlRecord,
    "CoordRecord": CoordRecord,
}

_MAGIC = b"WALR"


def _encode_columns(columns: Mapping[str, Any]) -> tuple[dict, list[bytes]]:
    """Split columns into a JSON-safe header and raw vector blobs."""
    header: dict[str, Any] = {}
    blobs: list[bytes] = []
    for name in sorted(columns):
        values = columns[name]
        arr = np.asarray(values)
        if arr.dtype.kind == "f" and arr.ndim == 2:
            data = np.ascontiguousarray(arr, dtype=np.float32)
            header[name] = {"vector": True, "shape": list(data.shape),
                            "blob": len(blobs)}
            blobs.append(data.tobytes())
        else:
            header[name] = {"vector": False, "values": arr.tolist()}
    return header, blobs


def _decode_columns(header: Mapping[str, Any],
                    blobs: list[bytes]) -> dict[str, Any]:
    columns: dict[str, Any] = {}
    for name, spec in header.items():
        if spec["vector"]:
            shape = tuple(spec["shape"])
            arr = np.frombuffer(blobs[spec["blob"]],
                                dtype=np.float32).reshape(shape)
            columns[name] = arr.copy()
        else:
            columns[name] = spec["values"]
    return columns


def record_to_bytes(record: WalRecord) -> bytes:
    """Serialize any WAL record into a self-describing binary blob."""
    envelope: dict[str, Any] = {"type": record.kind
                                if not isinstance(record, CoordRecord)
                                else "CoordRecord",
                                "ts": record.ts}
    if record.trace is not None:
        envelope["trace"] = list(record.trace)
    blobs: list[bytes] = []
    if isinstance(record, InsertRecord):
        header, blobs = _encode_columns(record.columns)
        envelope.update(collection=record.collection, shard=record.shard,
                        segment_id=record.segment_id, pks=list(record.pks),
                        columns=header)
    elif isinstance(record, DeleteRecord):
        envelope.update(collection=record.collection, shard=record.shard,
                        pks=list(record.pks))
    elif isinstance(record, BatchRecord):
        # Each inner record is itself a full WALR blob; the envelope only
        # carries the routing header and the blob count.
        envelope.update(collection=record.collection, shard=record.shard,
                        num_records=len(record.records))
        blobs = [record_to_bytes(inner) for inner in record.records]
    elif isinstance(record, TimeTickRecord):
        envelope.update(source=record.source)
    elif isinstance(record, DdlRecord):
        envelope.update(op=record.op, collection=record.collection,
                        payload=dict(record.payload))
    elif isinstance(record, CoordRecord):
        envelope.update(kind_name=record.kind_name,
                        payload=dict(record.payload))
    else:
        raise TypeError(f"unknown record type {type(record).__name__}")

    head = json.dumps(envelope, separators=(",", ":")).encode()
    parts = [_MAGIC, struct.pack("<II", len(head), len(blobs)), head]
    for blob in blobs:
        parts.append(struct.pack("<I", len(blob)))
        parts.append(blob)
    return b"".join(parts)


def record_from_bytes(raw: bytes) -> WalRecord:
    """Inverse of :func:`record_to_bytes`."""
    if raw[:4] != _MAGIC:
        raise ValueError("not a WAL record blob")
    head_len, num_blobs = struct.unpack_from("<II", raw, 4)
    offset = 12
    envelope = json.loads(raw[offset:offset + head_len].decode())
    offset += head_len
    blobs: list[bytes] = []
    for _ in range(num_blobs):
        (blen,) = struct.unpack_from("<I", raw, offset)
        offset += 4
        blobs.append(raw[offset:offset + blen])
        offset += blen

    rtype = envelope.pop("type")
    ts = envelope.pop("ts")
    trace = envelope.pop("trace", None)
    if trace is not None:
        trace = tuple(trace)
    if rtype == "InsertRecord":
        columns = _decode_columns(envelope.pop("columns"), blobs)
        return InsertRecord(ts=ts, trace=trace,
                            collection=envelope["collection"],
                            shard=envelope["shard"],
                            segment_id=envelope["segment_id"],
                            pks=tuple(envelope["pks"]), columns=columns)
    if rtype == "DeleteRecord":
        return DeleteRecord(ts=ts, trace=trace,
                            collection=envelope["collection"],
                            shard=envelope["shard"],
                            pks=tuple(envelope["pks"]))
    if rtype == "BatchRecord":
        return BatchRecord(ts=ts, trace=trace,
                           collection=envelope["collection"],
                           shard=envelope["shard"],
                           records=tuple(record_from_bytes(blob)
                                         for blob in blobs))
    if rtype == "TimeTickRecord":
        return TimeTickRecord(ts=ts, trace=trace,
                              source=envelope["source"])
    if rtype == "DdlRecord":
        return DdlRecord(ts=ts, trace=trace, op=envelope["op"],
                         collection=envelope["collection"],
                         payload=envelope["payload"])
    if rtype == "CoordRecord":
        return CoordRecord(ts=ts, trace=trace,
                           kind_name=envelope["kind_name"],
                           payload=envelope["payload"])
    raise ValueError(f"unknown record type {rtype!r}")


def shard_channel(collection: str, shard: int) -> str:
    """Name of the WAL channel for one shard of one collection."""
    return f"wal/{collection}/shard-{shard}"
