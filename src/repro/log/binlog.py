"""Column-based binlog files (Section 3.3).

Data nodes convert row-based WAL batches into column-based binlogs: all
values of one field live together in one object-store blob, so a reader
(for example an index node building a vector index) fetches exactly the
field it needs and pays no read amplification.

Layout under the object store for a sealed segment::

    binlog/<collection>/<segment_id>/manifest.json
    binlog/<collection>/<segment_id>/<field>.col

``manifest.json`` records the row count, the primary keys, the field list
and the WAL progress (max LSN) of the segment, which time travel uses as the
segment's replay start position.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import StorageError
from repro.storage.object_store import ObjectStore

_COL_MAGIC = b"BCOL"


def _column_to_bytes(values: Any) -> bytes:
    """Encode one column: float32 matrices raw, everything else JSON."""
    arr = np.asarray(values)
    if arr.dtype.kind == "f" and arr.ndim == 2:
        head = json.dumps({"kind": "f32mat",
                           "shape": list(arr.shape)}).encode()
        body = np.ascontiguousarray(arr, dtype=np.float32).tobytes()
    else:
        head = json.dumps({"kind": "json"}).encode()
        body = json.dumps(arr.tolist()).encode()
    return _COL_MAGIC + struct.pack("<I", len(head)) + head + body


def _column_from_bytes(raw: bytes) -> Any:
    if raw[:4] != _COL_MAGIC:
        raise StorageError("not a binlog column blob")
    (head_len,) = struct.unpack_from("<I", raw, 4)
    head = json.loads(raw[8:8 + head_len].decode())
    body = raw[8 + head_len:]
    if head["kind"] == "f32mat":
        shape = tuple(head["shape"])
        return np.frombuffer(body, dtype=np.float32).reshape(shape).copy()
    return json.loads(body.decode())


@dataclass(frozen=True)
class BinlogManifest:
    """Metadata of one segment's binlog."""

    collection: str
    segment_id: str
    num_rows: int
    fields: tuple[str, ...]
    max_lsn: int
    pks: tuple

    def to_json(self) -> bytes:
        return json.dumps({
            "collection": self.collection,
            "segment_id": self.segment_id,
            "num_rows": self.num_rows,
            "fields": list(self.fields),
            "max_lsn": self.max_lsn,
            "pks": list(self.pks),
        }).encode()

    @staticmethod
    def from_json(raw: bytes) -> "BinlogManifest":
        data = json.loads(raw.decode())
        return BinlogManifest(
            collection=data["collection"],
            segment_id=data["segment_id"],
            num_rows=data["num_rows"],
            fields=tuple(data["fields"]),
            max_lsn=data["max_lsn"],
            pks=tuple(data["pks"]),
        )


def binlog_prefix(collection: str, segment_id: str) -> str:
    return f"binlog/{collection}/{segment_id}"


class BinlogSegmentSink:
    """Incremental conversion of one sealed segment, chunk by chunk.

    Data nodes feed fixed-size row chunks through :meth:`add_chunk`
    (each call converts just that slice — the pipelined alternative to a
    whole-segment stall), then :meth:`finish` concatenates the per-field
    chunks, writes the column blobs and the manifest, and returns the
    manifest.  The segment only becomes readable at :meth:`finish`:
    readers key off ``manifest.json``, so a crash mid-conversion leaves
    no partially-visible binlog.
    """

    def __init__(self, store: ObjectStore, collection: str,
                 segment_id: str) -> None:
        self._store = store
        self._collection = collection
        self._segment_id = segment_id
        self._pks: list = []
        self._chunks: dict[str, list] = {}
        self._finished = False

    @property
    def num_rows(self) -> int:
        return len(self._pks)

    def add_chunk(self, pks: Sequence,
                  columns: Mapping[str, Any]) -> None:
        """Convert one row chunk (all columns, aligned with ``pks``)."""
        if self._finished:
            raise StorageError("segment sink already finished")
        num_rows = len(pks)
        for name in sorted(columns):
            arr = np.asarray(columns[name])
            if arr.shape[0] != num_rows:
                raise StorageError(
                    f"column {name!r} has {arr.shape[0]} rows, "
                    f"chunk has {num_rows}")
            self._chunks.setdefault(name, []).append(arr)
        self._pks.extend(pks)

    def finish(self, max_lsn: int) -> BinlogManifest:
        """Write the column blobs plus the manifest; returns the manifest."""
        if self._finished:
            raise StorageError("segment sink already finished")
        self._finished = True
        prefix = binlog_prefix(self._collection, self._segment_id)
        fields = tuple(sorted(self._chunks))
        for name in fields:
            chunks = self._chunks[name]
            values = chunks[0] if len(chunks) == 1 \
                else np.concatenate(chunks, axis=0)
            self._store.put(f"{prefix}/{name}.col",
                            _column_to_bytes(values))
        manifest = BinlogManifest(self._collection, self._segment_id,
                                  len(self._pks), fields, max_lsn,
                                  tuple(self._pks))
        self._store.put(f"{prefix}/manifest.json", manifest.to_json())
        return manifest


class BinlogWriter:
    """Writes one sealed segment's columns to the object store."""

    def __init__(self, store: ObjectStore) -> None:
        self._store = store

    def open_segment(self, collection: str,
                     segment_id: str) -> BinlogSegmentSink:
        """Start a chunked conversion of one sealed segment."""
        return BinlogSegmentSink(self._store, collection, segment_id)

    def write_segment(self, collection: str, segment_id: str,
                      pks: Sequence, columns: Mapping[str, Any],
                      max_lsn: int) -> BinlogManifest:
        """Persist all columns plus the manifest; returns the manifest."""
        prefix = binlog_prefix(collection, segment_id)
        fields = tuple(sorted(columns))
        num_rows = len(pks)
        for name in fields:
            values = columns[name]
            arr = np.asarray(values)
            if arr.shape[0] != num_rows:
                raise StorageError(
                    f"column {name!r} has {arr.shape[0]} rows, "
                    f"segment has {num_rows}")
            self._store.put(f"{prefix}/{name}.col", _column_to_bytes(values))
        manifest = BinlogManifest(collection, segment_id, num_rows, fields,
                                  max_lsn, tuple(pks))
        self._store.put(f"{prefix}/manifest.json", manifest.to_json())
        return manifest


class BinlogReader:
    """Reads segment manifests and individual field columns."""

    def __init__(self, store: ObjectStore) -> None:
        self._store = store

    def read_manifest(self, collection: str,
                      segment_id: str) -> BinlogManifest:
        prefix = binlog_prefix(collection, segment_id)
        return BinlogManifest.from_json(
            self._store.get(f"{prefix}/manifest.json"))

    def read_field(self, collection: str, segment_id: str,
                   field: str) -> Any:
        """Fetch exactly one column (no read amplification)."""
        prefix = binlog_prefix(collection, segment_id)
        return _column_from_bytes(self._store.get(f"{prefix}/{field}.col"))

    def read_fields(self, collection: str, segment_id: str,
                    fields: Sequence[str]) -> dict[str, Any]:
        return {name: self.read_field(collection, segment_id, name)
                for name in fields}

    def segment_exists(self, collection: str, segment_id: str) -> bool:
        prefix = binlog_prefix(collection, segment_id)
        return self._store.exists(f"{prefix}/manifest.json")

    def list_segments(self, collection: str) -> list[str]:
        """Segment ids with a persisted binlog for ``collection``."""
        prefix = f"binlog/{collection}/"
        found: set[str] = set()
        for key in self._store.list(prefix):
            rest = key[len(prefix):]
            segment_id = rest.split("/", 1)[0]
            found.add(segment_id)
        return sorted(found)

    def delete_segment(self, collection: str, segment_id: str) -> None:
        """Drop all blobs of one segment (compaction / retention)."""
        prefix = binlog_prefix(collection, segment_id)
        for key in self._store.list(prefix + "/"):
            self._store.delete(key)
