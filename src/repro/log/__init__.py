"""The log backbone (Section 3.3).

Manu structures the whole system as log publishers and subscribers:

* :mod:`repro.log.broker` — the durable pub/sub message broker standing in
  for Kafka/Pulsar: named channels, offsets, consumer positions, replay;
* :mod:`repro.log.wal` — typed WAL records (insert / delete / DDL /
  coordination / time-tick) with binary serialization;
* :mod:`repro.log.hashring` — the consistent-hash ring placing shards on
  loggers;
* :mod:`repro.log.timetick` — periodic time-tick emission per channel;
* :mod:`repro.log.logger_node` — the loggers: verify requests, assign LSNs
  from the TSO, route entities to shards/segments, maintain the
  entity->segment LSM map;
* :mod:`repro.log.binlog` — column-based binlog files data nodes write to
  the object store.
"""

from repro.log.archive import WalArchiver
from repro.log.broker import LogBroker, Subscription
from repro.log.hashring import HashRing
from repro.log.wal import (
    WalRecord,
    InsertRecord,
    DeleteRecord,
    BatchRecord,
    TimeTickRecord,
    DdlRecord,
    CoordRecord,
)

__all__ = [
    "WalArchiver",
    "LogBroker",
    "Subscription",
    "HashRing",
    "WalRecord",
    "InsertRecord",
    "DeleteRecord",
    "BatchRecord",
    "TimeTickRecord",
    "DdlRecord",
    "CoordRecord",
]
