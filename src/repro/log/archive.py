"""WAL archival to object storage (Section 3.3).

The paper's WAL is a durable cloud service; our in-process broker holds
entries in memory, so durability across a broker loss comes from the
archiver: a plain log subscriber that serializes consumed records
(:func:`repro.log.wal.record_to_bytes`) into fixed-size chunk blobs under
``wal-archive/<channel>/<first-offset>.chunk``.  A fresh broker can be
re-populated from the archive with :meth:`WalArchiver.restore_channel`,
and time travel can replay beyond the broker's retention window.

Chunk format: ``WARC | count | (length, record-bytes)*`` with the chunk's
first offset encoded in its key, so chunks are independently readable and
the archive supports offset-ranged restores.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.errors import StorageError
from repro.log.broker import LogBroker, LogEntry, Subscription
from repro.log.wal import WalRecord, record_from_bytes, record_to_bytes
from repro.storage.object_store import ObjectStore

_MAGIC = b"WARC"


def _chunk_key(channel: str, first_offset: int) -> str:
    return f"wal-archive/{channel}/{first_offset:012d}.chunk"


def _encode_chunk(records: list[WalRecord]) -> bytes:
    parts = [_MAGIC, struct.pack("<I", len(records))]
    for record in records:
        blob = record_to_bytes(record)
        parts.append(struct.pack("<I", len(blob)))
        parts.append(blob)
    return b"".join(parts)


def _decode_chunk(raw: bytes) -> list[WalRecord]:
    if raw[:4] != _MAGIC:
        raise StorageError("not a WAL archive chunk")
    (count,) = struct.unpack_from("<I", raw, 4)
    offset = 8
    out: list[WalRecord] = []
    for _ in range(count):
        (length,) = struct.unpack_from("<I", raw, offset)
        offset += 4
        out.append(record_from_bytes(raw[offset:offset + length]))
        offset += length
    return out


class WalArchiver:
    """Archives one or more WAL channels into the object store."""

    def __init__(self, broker: LogBroker, store: ObjectStore,
                 chunk_records: int = 64) -> None:
        if chunk_records <= 0:
            raise ValueError("chunk_records must be positive")
        self._broker = broker
        self._store = store
        self.chunk_records = chunk_records
        self._subs: dict[str, Subscription] = {}
        self._pending: dict[str, list[tuple[int, WalRecord]]] = {}
        # Archive high-water mark per channel; kept across detach/attach
        # so a replayed or re-attached subscription cannot buffer (and
        # later chunk) offsets the archive already holds.
        self._next_offset: dict[str, int] = {}
        self.chunks_written = 0

    # ------------------------------------------------------------------
    # archiving
    # ------------------------------------------------------------------

    def attach(self, channel: str, from_offset: int = 0) -> None:
        """Start archiving a channel (idempotent)."""
        if channel in self._subs:
            return
        self._pending[channel] = []
        self._subs[channel] = self._broker.subscribe(
            channel, f"wal-archiver:{channel}", from_offset,
            callback=self._on_entry)

    def detach(self, channel: str) -> None:
        sub = self._subs.pop(channel, None)
        if sub is not None:
            sub.cancel()
        self.flush(channel)
        self._pending.pop(channel, None)

    def _on_entry(self, entry: LogEntry) -> None:
        if entry.offset < self._next_offset.get(entry.channel, 0):
            return  # replayed delivery below the archived watermark
        self._next_offset[entry.channel] = entry.offset + 1
        pending = self._pending[entry.channel]
        pending.append((entry.offset, entry.payload))
        if len(pending) >= self.chunk_records:
            self.flush(entry.channel)

    def flush(self, channel: Optional[str] = None) -> int:
        """Write pending records out; returns the number archived."""
        channels = [channel] if channel is not None else list(self._pending)
        written = 0
        for name in channels:
            pending = self._pending.get(name)
            if not pending:
                continue
            first_offset = pending[0][0]
            blob = _encode_chunk([record for _off, record in pending])
            self._store.put(_chunk_key(name, first_offset), blob)
            written += len(pending)
            self._pending[name] = []
            self.chunks_written += 1
        return written

    # ------------------------------------------------------------------
    # reading / restore
    # ------------------------------------------------------------------

    def archived_chunks(self, channel: str) -> list[int]:
        """First offsets of the channel's archived chunks, sorted."""
        prefix = f"wal-archive/{channel}/"
        out = []
        for key in self._store.list(prefix):
            name = key[len(prefix):]
            out.append(int(name.split(".")[0]))
        return sorted(out)

    def read_records(self, channel: str, from_offset: int = 0
                     ) -> list[tuple[int, WalRecord]]:
        """(offset, record) pairs archived at or past ``from_offset``."""
        out: list[tuple[int, WalRecord]] = []
        for first in self.archived_chunks(channel):
            raw = self._store.get(_chunk_key(channel, first))
            for i, record in enumerate(_decode_chunk(raw)):
                offset = first + i
                if offset >= from_offset:
                    out.append((offset, record))
        return out

    def restore_channel(self, target: LogBroker, channel: str) -> int:
        """Re-publish a channel's archive into a fresh broker.

        The target channel must be empty (offsets must line up with the
        archived ones); returns the number of records restored.
        """
        target.create_channel(channel)
        if target.end_offset(channel) != 0:
            raise StorageError(
                f"target channel {channel} is not empty; offsets would "
                "diverge from the archive")
        restored = 0
        for offset, record in self.read_records(channel):
            if offset != restored:
                raise StorageError(
                    f"archive of {channel} has a gap at offset {restored}")
            target.publish(channel, record)
            restored += 1
        return restored
