"""Loggers: the entry points for publishing data onto the WAL (Figure 4).

A logger owns one or more shard buckets of the consistent-hash ring.  For an
insert it verifies the request, obtains an LSN from the TSO, asks the data
coordinator's segment allocator which growing segment the rows belong to,
publishes the batch on the shard's WAL channel, and records the entity-id ->
segment-id mapping in the shard's LSM tree (flushed as SSTables to object
storage).  For a delete it consults the mapping to drop keys that were never
inserted, then publishes the deletion.

The :class:`LoggerService` is the routing front: it hashes primary keys to
shards, maps shards to loggers through the ring, and supports adding and
removing loggers at runtime — shard LSM state is keyed by shard (and backed
by the shared object store), so ownership changes never lose the mapping.
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Optional, Protocol

import numpy as np

from repro.core.entity import EntityBatch
from repro.core.tso import TimestampOracle
from repro.errors import ClusterStateError
from repro.log.broker import LogBroker
from repro.log.hashring import HashRing
from repro.log.wal import DeleteRecord, InsertRecord, shard_channel
from repro.storage.lsm import LsmTree
from repro.storage.object_store import ObjectStore
from repro.tracing import NOOP_TRACER, TraceCollector


class SegmentAllocator(Protocol):
    """Data-coordinator service assigning rows to growing segments."""

    def assign_segment(self, collection: str, shard: int,
                       num_rows: int) -> str:
        """Return the segment id the next ``num_rows`` rows should join."""
        ...

    def assign_segments(self, collection: str, shard: int,
                        num_rows: int) -> list[tuple[str, int]]:
        """Partition ``num_rows`` into (segment id, count) chunks so no
        growing segment exceeds the seal threshold."""
        ...


def shard_of(pk, num_shards: int) -> int:
    """Deterministic shard of a primary key (hash of its string form)."""
    digest = hashlib.blake2b(str(pk).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little") % num_shards


def shard_bucket_key(collection: str, shard: int) -> str:
    """Ring key of one shard's logical bucket."""
    return f"{collection}/shard-{shard}"


class Logger:
    """One logger node; operates on the shard states handed to it."""

    def __init__(self, name: str, tso: TimestampOracle,
                 broker: LogBroker,
                 tracer: Optional[TraceCollector] = None) -> None:
        self.name = name
        self._tso = tso
        self._broker = broker
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._component = f"logger:{name}"
        self.records_published = 0

    def publish_insert(self, collection: str, shard: int, segment_id: str,
                       pks: tuple, columns: Mapping,
                       mapping: LsmTree) -> int:
        """Publish one shard-batch; returns the packed LSN."""
        with self._tracer.span("logger.publish_insert", self._component,
                               collection=collection, shard=shard,
                               segment=segment_id, rows=len(pks)):
            ts = self._tso.allocate_packed()
            record = InsertRecord(ts=ts, collection=collection, shard=shard,
                                  segment_id=segment_id, pks=pks,
                                  columns=columns)
            self._broker.publish(shard_channel(collection, shard), record)
        for pk in pks:
            mapping.put(str(pk), segment_id)
        self.records_published += 1
        return ts

    def publish_delete(self, collection: str, shard: int, pks: tuple,
                       mapping: LsmTree) -> tuple[int, int]:
        """Publish deletions for keys that exist; returns (LSN, count).

        The logger "caches the segment mapping (e.g., for checking if the
        entity to delete exists)": unknown keys are silently dropped, so
        subscribers never process deletions of absent entities.
        """
        existing = tuple(pk for pk in pks if mapping.get(str(pk)) is not None)
        ts = self._tso.allocate_packed()
        if not existing:
            # Zero-effect ack: no entity matched, nothing was accepted,
            # so there is nothing a crash after this return could lose.
            return ts, 0  # manu-lint: disable=durability-ack-before-durable -- zero-effect ack: empty delete publishes nothing
        with self._tracer.span("logger.publish_delete",
                               self._component, collection=collection,
                               shard=shard, rows=len(existing)):
            record = DeleteRecord(ts=ts, collection=collection,
                                  shard=shard, pks=existing)
            self._broker.publish(shard_channel(collection, shard),
                                 record)
        for pk in existing:
            mapping.delete(str(pk))
        self.records_published += 1
        return ts, len(existing)


class LoggerService:
    """Routes data-manipulation requests to loggers via the hash ring."""

    def __init__(self, tso: TimestampOracle, broker: LogBroker,
                 store: ObjectStore, allocator: SegmentAllocator,
                 num_shards: int, logger_names: tuple[str, ...] = ("logger-0",),
                 lsm_memtable_limit: int = 1024,
                 tracer: Optional[TraceCollector] = None) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self._tso = tso
        self._broker = broker
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._store = store
        self._allocator = allocator
        self.num_shards = num_shards
        self._lsm_memtable_limit = lsm_memtable_limit
        self._ring = HashRing()
        self._loggers: dict[str, Logger] = {}
        # Shard LSM trees are keyed by (collection, shard) and outlive any
        # individual logger, mirroring SSTable persistence in object storage.
        self._mappings: dict[tuple[str, int], LsmTree] = {}
        for name in logger_names:
            self.add_logger(name)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    @property
    def logger_names(self) -> list[str]:
        return sorted(self._loggers)

    def add_logger(self, name: str) -> Logger:
        """Register a logger and place it on the ring."""
        if name in self._loggers:
            raise ClusterStateError(f"logger {name!r} already exists")
        logger = Logger(name, self._tso, self._broker,
                        tracer=self._tracer)
        self._loggers[name] = logger
        self._ring.add_node(name)
        return logger

    def remove_logger(self, name: str) -> None:
        """Remove a logger; its shards move to ring successors."""
        if name not in self._loggers:
            raise ClusterStateError(f"logger {name!r} does not exist")
        if len(self._loggers) == 1:
            raise ClusterStateError("cannot remove the last logger")
        del self._loggers[name]
        self._ring.remove_node(name)

    def logger_for_shard(self, collection: str, shard: int) -> Logger:
        owner = self._ring.owner(shard_bucket_key(collection, shard))
        return self._loggers[owner]

    def _mapping(self, collection: str, shard: int) -> LsmTree:
        key = (collection, shard)
        if key not in self._mappings:
            self._mappings[key] = LsmTree(
                memtable_limit=self._lsm_memtable_limit,
                store=self._store,
                store_prefix=f"mapping/{collection}/shard-{shard}")
        return self._mappings[key]

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    def ensure_channels(self, collection: str) -> list[str]:
        """Create the collection's WAL shard channels; returns their names."""
        channels = [shard_channel(collection, s)
                    for s in range(self.num_shards)]
        for channel in channels:
            self._broker.create_channel(channel)
        return channels

    def insert(self, collection: str, batch: EntityBatch) -> int:
        """Split a validated batch by shard and publish; returns max LSN."""
        by_shard: dict[int, list[int]] = {}
        for row, pk in enumerate(batch.pks):
            by_shard.setdefault(shard_of(pk, self.num_shards), []).append(row)

        max_ts = 0
        for shard in sorted(by_shard):
            rows = by_shard[shard]
            logger = self.logger_for_shard(collection, shard)
            mapping = self._mapping(collection, shard)
            # Large batches are partitioned across growing segments so no
            # segment exceeds the seal threshold.
            cursor = 0
            for segment_id, count in self._allocator.assign_segments(
                    collection, shard, len(rows)):
                chunk = rows[cursor:cursor + count]
                cursor += count
                pks = tuple(batch.pks[r] for r in chunk)
                columns = {name: _take_rows(values, chunk)
                           for name, values in batch.columns.items()}
                ts = logger.publish_insert(collection, shard, segment_id,
                                           pks, columns, mapping)
                max_ts = max(max_ts, ts)
        return max_ts

    def delete(self, collection: str, pks: tuple) -> tuple[int, int]:
        """Publish deletions by key; returns (max LSN, deleted count)."""
        by_shard: dict[int, list] = {}
        for pk in pks:
            by_shard.setdefault(shard_of(pk, self.num_shards), []).append(pk)
        max_ts = 0
        deleted = 0
        for shard in sorted(by_shard):
            logger = self.logger_for_shard(collection, shard)
            ts, count = logger.publish_delete(
                collection, shard, tuple(by_shard[shard]),
                self._mapping(collection, shard))
            max_ts = max(max_ts, ts)
            deleted += count
        return max_ts, deleted

    def lookup_segment(self, collection: str, pk) -> Optional[str]:
        """Segment currently holding ``pk`` (None when absent)."""
        shard = shard_of(pk, self.num_shards)
        value = self._mapping(collection, shard).get(str(pk))
        return value.decode() if value is not None else None

    def flush_mappings(self) -> None:
        """Flush all shard LSM memtables to SSTables (checkpointing)."""
        for mapping in self._mappings.values():
            mapping.flush()


def _take_rows(values, rows: list[int]):
    """Select a row subset from a column (numpy array or list)."""
    if isinstance(values, np.ndarray):
        return values[rows]
    return [values[r] for r in rows]
