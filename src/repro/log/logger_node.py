"""Loggers: the entry points for publishing data onto the WAL (Figure 4).

A logger owns one or more shard buckets of the consistent-hash ring.  For an
insert it verifies the request, obtains an LSN from the TSO, asks the data
coordinator's segment allocator which growing segment the rows belong to,
publishes the batch on the shard's WAL channel, and records the entity-id ->
segment-id mapping in the shard's LSM tree (flushed as SSTables to object
storage).  For a delete it consults the mapping to drop keys that were never
inserted, then publishes the deletion.

The :class:`LoggerService` is the routing front: it hashes primary keys to
shards, maps shards to loggers through the ring, and supports adding and
removing loggers at runtime — shard LSM state is keyed by shard (and backed
by the shared object store), so ownership changes never lose the mapping.

Group commit: instead of appending record-at-a-time, writes buffer into a
per-(collection, shard) :class:`CommitGroup` and go out as one coalesced
:class:`~repro.log.wal.BatchRecord` publish when a bound trips (row count,
payload bytes, commit window) or a sync caller forces a flush.  Writers
hold an :class:`AckFuture` that resolves with the batch LSN strictly after
the publish returned — acks never precede durability.  Commit groups are
keyed like the mappings, by shard, so logger churn never strands one.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Mapping, Optional, Protocol

import numpy as np

from repro.core.entity import EntityBatch
from repro.core.tso import TimestampOracle
from repro.errors import ClusterStateError, FencedWriteError
from repro.log.broker import LogBroker
from repro.log.hashring import HashRing
from repro.log.wal import BatchRecord, DeleteRecord, InsertRecord, \
    WalRecord, shard_channel
from repro.sim.events import EventLoop
from repro.storage.lsm import LsmTree
from repro.storage.object_store import ObjectStore
from repro.tracing import NOOP_TRACER, TraceCollector


class SegmentAllocator(Protocol):
    """Data-coordinator service assigning rows to growing segments."""

    def assign_segment(self, collection: str, shard: int,
                       num_rows: int) -> str:
        """Return the segment id the next ``num_rows`` rows should join."""
        ...

    def assign_segments(self, collection: str, shard: int,
                        num_rows: int) -> list[tuple[str, int]]:
        """Partition ``num_rows`` into (segment id, count) chunks so no
        growing segment exceeds the seal threshold."""
        ...


def shard_of(pk, num_shards: int) -> int:
    """Deterministic shard of a primary key (hash of its string form)."""
    digest = hashlib.blake2b(str(pk).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little") % num_shards


def shard_bucket_key(collection: str, shard: int) -> str:
    """Ring key of one shard's logical bucket."""
    return f"{collection}/shard-{shard}"


class AckFuture:
    """Single-shot write acknowledgement, resolved at group-commit flush.

    Writers buffered into a :class:`CommitGroup` get one of these back
    immediately; it resolves with the batch publish LSN (and the number
    of rows the write actually affected) only *after* the coalesced WAL
    publish returned — so an ack can never precede durability.
    """

    __slots__ = ("_lsn", "_rows", "_done", "_callbacks")

    def __init__(self) -> None:
        self._lsn = 0
        self._rows = 0
        self._done = False
        self._callbacks: list[Callable[["AckFuture"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def rows(self) -> int:
        """Rows the write affected (deletes: keys that existed)."""
        if not self._done:
            raise ClusterStateError("write not yet acknowledged")
        return self._rows

    def result(self) -> int:
        """The durable batch LSN; raises until the flush resolved it."""
        if not self._done:
            raise ClusterStateError("write not yet acknowledged")
        return self._lsn

    def set_result(self, lsn: int, rows: int) -> None:
        """Resolve with the batch publish LSN (flush path only)."""
        if self._done:
            raise ClusterStateError("ack future already resolved")
        self._lsn = lsn
        self._rows = rows
        self._done = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_done_callback(self,
                          callback: Callable[["AckFuture"], None]) -> None:
        """Run ``callback(self)`` on resolution (immediately if done)."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)


def merge_acks(children: list[AckFuture]) -> AckFuture:
    """Fan-in: a future resolving once every child resolved.

    The merged LSN is the max child LSN; the merged row count sums the
    children (a multi-shard write is acked when its last shard flush is
    durable).
    """
    children = list(children)
    if len(children) == 1:
        # Single-shard write (the overwhelmingly common case): the
        # child's resolution *is* the merged resolution — no fan-in
        # bookkeeping needed.
        return children[0]
    merged = AckFuture()
    if not children:
        merged.set_result(0, 0)
        return merged
    pending = {"left": len(children)}

    def _on_child(_child: AckFuture) -> None:
        pending["left"] -= 1
        if pending["left"] == 0:
            merged.set_result(max(c.result() for c in children),
                              sum(c.rows for c in children))

    for child in children:
        child.add_done_callback(_on_child)
    return merged


class _PendingOp:
    """One buffered write awaiting group-commit flush."""

    __slots__ = ("kind", "pks", "columns", "future")

    def __init__(self, kind: str, pks: tuple, columns: Optional[Mapping],
                 future: Optional[AckFuture]) -> None:
        self.kind = kind          # "insert" | "delete"
        self.pks = pks
        self.columns = columns    # insert only
        self.future = future      # None for sync writers


class CommitGroup:
    """Per-(collection, shard) buffer of not-yet-durable writes.

    Accumulates insert/delete ops until a flush bound trips — row count,
    estimated payload bytes, or the commit window timer — or a sync
    writer forces an explicit flush.  ``epoch`` increments on every
    flush so a stale window timer can recognise that its group already
    went out.
    """

    __slots__ = ("ops", "rows", "nbytes", "first_at", "epoch")

    def __init__(self) -> None:
        self.ops: list[_PendingOp] = []
        self.rows = 0
        self.nbytes = 0
        self.first_at = 0.0
        self.epoch = 0

    def reset(self) -> None:
        self.ops = []
        self.rows = 0
        self.nbytes = 0
        self.epoch += 1


def _estimate_nbytes(pks: tuple, columns: Optional[Mapping]) -> int:
    """Rough payload size of one buffered op (drives the byte bound)."""
    total = 8 * len(pks)
    if columns:
        for values in columns.values():
            if isinstance(values, np.ndarray):
                total += values.nbytes
            else:
                total += 8 * len(values)
    return total


class Logger:
    """One logger node; operates on the shard states handed to it."""

    def __init__(self, name: str, tso: TimestampOracle,
                 broker: LogBroker,
                 tracer: Optional[TraceCollector] = None) -> None:
        self.name = name
        self._tso = tso
        self._broker = broker
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._component = f"logger:{name}"
        # One publish call may carry a whole commit group: count WAL
        # appends and logical rows separately.
        self.batches_published = 0
        self.rows_published = 0
        # Epoch-fencing hook (wired by the LoggerService): called with
        # (collection, shard, logger_name) before every publish; raises
        # FencedWriteError when this logger lost the shard to a
        # migration — a stale cached handle must not append behind the
        # handoff LSN.
        self.fence_guard: Optional[Callable[[str, int, str], None]] = None

    def _check_fence(self, collection: str, shard: int) -> None:
        if self.fence_guard is not None:
            self.fence_guard(collection, shard, self.name)

    def publish_insert(self, collection: str, shard: int, segment_id: str,
                       pks: tuple, columns: Mapping,
                       mapping: LsmTree) -> int:
        """Publish one shard-batch; returns the packed LSN."""
        self._check_fence(collection, shard)
        with self._tracer.span("logger.publish_insert", self._component,
                               collection=collection, shard=shard,
                               segment=segment_id, rows=len(pks)):
            ts = self._tso.allocate_packed()
            record = InsertRecord(ts=ts, collection=collection, shard=shard,
                                  segment_id=segment_id, pks=pks,
                                  columns=columns)
            self._broker.publish(shard_channel(collection, shard), record)
        mapping.put_many((str(pk), segment_id) for pk in pks)
        self.batches_published += 1
        self.rows_published += len(pks)
        return ts

    def publish_delete(self, collection: str, shard: int, pks: tuple,
                       mapping: LsmTree) -> tuple[int, int]:
        """Publish deletions for keys that exist; returns (LSN, count).

        The logger "caches the segment mapping (e.g., for checking if the
        entity to delete exists)": unknown keys are silently dropped, so
        subscribers never process deletions of absent entities.
        """
        self._check_fence(collection, shard)
        existing = tuple(pk for pk in pks if mapping.get(str(pk)) is not None)
        ts = self._tso.allocate_packed()
        if not existing:
            # Zero-effect ack: no entity matched, nothing was accepted,
            # so there is nothing a crash after this return could lose.
            return ts, 0  # manu-lint: disable=durability-ack-before-durable -- zero-effect ack: empty delete publishes nothing
        with self._tracer.span("logger.publish_delete",
                               self._component, collection=collection,
                               shard=shard, rows=len(existing)):
            record = DeleteRecord(ts=ts, collection=collection,
                                  shard=shard, pks=existing)
            self._broker.publish(shard_channel(collection, shard),
                                 record)
        mapping.delete_many(str(pk) for pk in existing)
        self.batches_published += 1
        self.rows_published += len(existing)
        return ts, len(existing)

    def publish_batch(self, collection: str, shard: int,
                      records: tuple) -> int:
        """Publish one coalesced commit group; returns the batch LSN.

        ``records`` are pre-built insert/delete records in commit order
        with flush-time LSNs already assigned; the envelope's ``ts`` is
        the last (max) inner LSN, which is what acks resolve with.
        """
        self._check_fence(collection, shard)
        batch = BatchRecord(ts=records[-1].ts, collection=collection,
                            shard=shard, records=tuple(records))
        with self._tracer.span("logger.publish_batch", self._component,
                               collection=collection, shard=shard,
                               records=batch.num_records,
                               rows=batch.num_rows):
            self._broker.publish(shard_channel(collection, shard), batch)
        self.batches_published += 1
        self.rows_published += batch.num_rows
        return batch.ts


class LoggerService:
    """Routes data-manipulation requests to loggers via the hash ring."""

    def __init__(self, tso: TimestampOracle, broker: LogBroker,
                 store: ObjectStore, allocator: SegmentAllocator,
                 num_shards: int, logger_names: tuple[str, ...] = ("logger-0",),
                 lsm_memtable_limit: int = 1024,
                 tracer: Optional[TraceCollector] = None,
                 loop: Optional[EventLoop] = None,
                 group_commit_enabled: bool = True,
                 group_commit_rows: int = 64,
                 group_commit_bytes: int = 256 * 1024,
                 group_commit_window_ms: float = 2.0) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self._tso = tso
        self._broker = broker
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._store = store
        self._allocator = allocator
        self.num_shards = num_shards
        self._lsm_memtable_limit = lsm_memtable_limit
        self._ring = HashRing()
        self._loggers: dict[str, Logger] = {}
        # Shard LSM trees are keyed by (collection, shard) and outlive any
        # individual logger, mirroring SSTable persistence in object storage.
        self._mappings: dict[tuple[str, int], LsmTree] = {}
        # Group commit: per-(collection, shard) buffers, keyed like the
        # mappings so logger churn never strands a pending group.
        self._loop = loop
        self._gc_enabled = group_commit_enabled
        self._gc_rows = group_commit_rows
        self._gc_bytes = group_commit_bytes
        self._gc_window_ms = group_commit_window_ms
        self._groups: dict[tuple[str, int], CommitGroup] = {}
        # Tenancy hooks, wired by the cluster (the log layer never
        # imports tenancy): ``route_override`` maps a shard bucket key
        # to an explicit logger placement installed by the rebalancer
        # (consulted before the ring); ``fence_epoch_fn`` exposes the
        # directory's per-shard fence epoch so stale Logger handles can
        # be rejected after a bucket migration.
        self.route_override: Optional[
            Callable[[str], Optional[str]]] = None
        self.fence_epoch_fn: Optional[Callable[[str, int], int]] = None
        # Flush telemetry, drained by the cluster's sampler (the log
        # layer stays metrics-import-free): (reason, records, rows,
        # nbytes, window age in virtual ms).
        self._flush_log: list[tuple[str, int, int, int, float]] = []
        for name in logger_names:
            self.add_logger(name)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    @property
    def logger_names(self) -> list[str]:
        return sorted(self._loggers)

    def loggers(self) -> list[tuple[str, "Logger"]]:
        """(name, logger) pairs in name order, for telemetry export."""
        return sorted(self._loggers.items())

    def add_logger(self, name: str, weight: float = 1.0) -> Logger:
        """Register a logger and place it on the ring.

        ``weight`` scales its virtual-point count (split-shard
        placement: a weightier logger absorbs more buckets).
        """
        if name in self._loggers:
            raise ClusterStateError(f"logger {name!r} already exists")
        logger = Logger(name, self._tso, self._broker,
                        tracer=self._tracer)
        logger.fence_guard = self._fence_guard
        self._loggers[name] = logger
        self._ring.add_node(name, weight=weight)
        return logger

    def reweight_logger(self, name: str, weight: float) -> None:
        """Change a logger's ring weight in place (only adjacent buckets
        move — the consistent-hashing property)."""
        if name not in self._loggers:
            raise ClusterStateError(f"logger {name!r} does not exist")
        self._ring.add_node(name, weight=weight)

    def remove_logger(self, name: str) -> None:
        """Remove a logger; its shards move to ring successors."""
        if name not in self._loggers:
            raise ClusterStateError(f"logger {name!r} does not exist")
        if len(self._loggers) == 1:
            raise ClusterStateError("cannot remove the last logger")
        del self._loggers[name]
        self._ring.remove_node(name)

    def owner_name(self, collection: str, shard: int) -> str:
        """Current logger for a shard bucket: an explicit directory
        override when one is installed (and still points at a live
        logger), the consistent-hash ring otherwise."""
        key = shard_bucket_key(collection, shard)
        if self.route_override is not None:
            override = self.route_override(key)
            if override is not None and override in self._loggers:
                return override
        return self._ring.owner(key)

    def logger_for_shard(self, collection: str, shard: int) -> Logger:
        return self._loggers[self.owner_name(collection, shard)]

    def _fence_guard(self, collection: str, shard: int,
                     logger_name: str) -> None:
        """Reject publishes from a logger that lost the shard.

        Only fires for shards with a bumped fence epoch (i.e. shards
        the migration protocol has actually touched): a stale cached
        :class:`Logger` handle trying to append behind the handoff LSN
        gets :class:`FencedWriteError` instead of silently forking the
        channel's history.
        """
        if self.fence_epoch_fn is None:
            return
        epoch = self.fence_epoch_fn(collection, shard)
        if epoch <= 0:
            return
        owner = self.owner_name(collection, shard)
        if owner != logger_name:
            raise FencedWriteError(
                f"logger {logger_name!r} is fenced off "
                f"{collection}/shard-{shard} (epoch {epoch}, "
                f"owner {owner!r})")

    def flush_shard(self, collection: str, shard: int) -> int:
        """Drain one shard's pending commit group (migration handoff:
        every pre-fence write becomes WAL-durable under the old owner
        before the bucket moves).  Returns the flush LSN (0 if empty).
        """
        return self.flush_group(collection, shard, reason="migration")

    def _mapping(self, collection: str, shard: int) -> LsmTree:
        key = (collection, shard)
        if key not in self._mappings:
            self._mappings[key] = LsmTree(
                memtable_limit=self._lsm_memtable_limit,
                store=self._store,
                store_prefix=f"mapping/{collection}/shard-{shard}")
        return self._mappings[key]

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    def ensure_channels(self, collection: str) -> list[str]:
        """Create the collection's WAL shard channels; returns their names."""
        channels = [shard_channel(collection, s)
                    for s in range(self.num_shards)]
        for channel in channels:
            self._broker.create_channel(channel)
        return channels

    def insert(self, collection: str, batch: EntityBatch) -> int:
        """Split a validated batch by shard and publish; returns max LSN.

        With group commit enabled the rows join each shard's commit
        group (together with any async writes buffered before them) and
        the call blocks on an immediate explicit flush — same API, one
        coalesced WAL publish per shard.
        """
        max_ts = 0
        for shard, rows in self._rows_by_shard(batch):
            if self._gc_enabled:
                self._buffer_insert(collection, shard, batch, rows, None)
                ts = self.flush_group(collection, shard,
                                      reason="explicit")
            else:
                ts = self._insert_direct(
                    collection, shard, batch,
                    rows if rows is not None
                    else list(range(batch.num_rows)))
            max_ts = max(max_ts, ts)
        return max_ts

    def insert_async(self, collection: str,
                     batch: EntityBatch) -> AckFuture:
        """Buffer a validated batch into its shards' commit groups.

        Returns an :class:`AckFuture` that resolves with the durable
        batch LSN only after every touched shard's group flushed (row or
        byte bound, commit window, or an explicit flush) and its WAL
        publish returned.
        """
        if not self._gc_enabled:
            raise ClusterStateError("group commit is disabled")
        futures = []
        for shard, rows in self._rows_by_shard(batch):
            future = AckFuture()
            self._buffer_insert(collection, shard, batch, rows, future)
            futures.append(future)
            self._maybe_flush(collection, shard)
        return merge_acks(futures)

    def _rows_by_shard(self, batch: EntityBatch):
        """(shard, row indices) pairs for a batch; ``rows is None`` means
        the whole batch, letting buffering skip the row-subset copy."""
        if self.num_shards == 1:
            return [(0, None)]
        by_shard: dict[int, list[int]] = {}
        for row, pk in enumerate(batch.pks):
            by_shard.setdefault(shard_of(pk, self.num_shards), []).append(row)
        if len(by_shard) == 1:
            return [(next(iter(by_shard)), None)]
        return [(shard, by_shard[shard]) for shard in sorted(by_shard)]

    def delete(self, collection: str, pks: tuple) -> tuple[int, int]:
        """Publish deletions by key; returns (max LSN, deleted count)."""
        by_shard: dict[int, list] = {}
        for pk in pks:
            by_shard.setdefault(shard_of(pk, self.num_shards), []).append(pk)
        max_ts = 0
        deleted = 0
        for shard in sorted(by_shard):
            if self._gc_enabled:
                future = AckFuture()
                self._buffer_delete(collection, shard,
                                    tuple(by_shard[shard]), future)
                self.flush_group(collection, shard, reason="explicit")
                ts, count = future.result(), future.rows
            else:
                logger = self.logger_for_shard(collection, shard)
                ts, count = logger.publish_delete(
                    collection, shard, tuple(by_shard[shard]),
                    self._mapping(collection, shard))
            max_ts = max(max_ts, ts)
            deleted += count
        return max_ts, deleted

    def delete_async(self, collection: str, pks: tuple) -> AckFuture:
        """Buffer deletions into their shards' commit groups.

        The returned :class:`AckFuture` resolves with the durable batch
        LSN; ``rows`` carries how many keys existed at flush time.
        """
        if not self._gc_enabled:
            raise ClusterStateError("group commit is disabled")
        by_shard: dict[int, list] = {}
        for pk in pks:
            by_shard.setdefault(shard_of(pk, self.num_shards), []).append(pk)
        futures = []
        for shard in sorted(by_shard):
            future = AckFuture()
            self._buffer_delete(collection, shard,
                                tuple(by_shard[shard]), future)
            futures.append(future)
            self._maybe_flush(collection, shard)
        return merge_acks(futures)

    # ------------------------------------------------------------------
    # group commit
    # ------------------------------------------------------------------

    def _insert_direct(self, collection: str, shard: int,
                       batch: EntityBatch, rows: list[int]) -> int:
        """Record-at-a-time append path (group commit disabled)."""
        logger = self.logger_for_shard(collection, shard)
        mapping = self._mapping(collection, shard)
        # Large batches are partitioned across growing segments so no
        # segment exceeds the seal threshold.
        max_ts = 0
        cursor = 0
        for segment_id, count in self._allocator.assign_segments(
                collection, shard, len(rows)):
            chunk = rows[cursor:cursor + count]
            cursor += count
            pks = tuple(batch.pks[r] for r in chunk)
            columns = {name: _take_rows(values, chunk)
                       for name, values in batch.columns.items()}
            ts = logger.publish_insert(collection, shard, segment_id,
                                       pks, columns, mapping)
            max_ts = max(max_ts, ts)
        return max_ts

    def _buffer_insert(self, collection: str, shard: int,
                       batch: EntityBatch, rows: Optional[list[int]],
                       future: Optional[AckFuture]) -> None:
        if rows is None:
            # Whole batch lands on this shard: buffer the validated
            # batch's own pks/columns, no row-subset copy.
            pks = tuple(batch.pks)
            columns = batch.columns
        else:
            pks = tuple(batch.pks[r] for r in rows)
            columns = {name: _take_rows(values, rows)
                       for name, values in batch.columns.items()}
        self._buffer_op(collection, shard,
                        _PendingOp("insert", pks, columns, future),
                        _estimate_nbytes(pks, columns))

    def _buffer_delete(self, collection: str, shard: int, pks: tuple,
                       future: Optional[AckFuture]) -> None:
        self._buffer_op(collection, shard,
                        _PendingOp("delete", pks, None, future),
                        _estimate_nbytes(pks, None))

    def _buffer_op(self, collection: str, shard: int, op: _PendingOp,
                   nbytes: int) -> None:
        group = self._groups.setdefault((collection, shard),
                                        CommitGroup())
        group.ops.append(op)
        group.rows += len(op.pks)
        group.nbytes += nbytes
        if len(group.ops) == 1 and self._loop is not None:
            group.first_at = self._loop.now()
            if self._gc_window_ms > 0:
                epoch = group.epoch
                self._loop.call_after(
                    self._gc_window_ms,
                    lambda: self._window_flush(collection, shard, epoch),
                    name=f"group-commit:{collection}/shard-{shard}")

    def _maybe_flush(self, collection: str, shard: int) -> None:
        group = self._groups.get((collection, shard))
        if group is None or not group.ops:
            return
        if group.rows >= self._gc_rows:
            self.flush_group(collection, shard, reason="rows")
        elif group.nbytes >= self._gc_bytes:
            self.flush_group(collection, shard, reason="bytes")

    def _window_flush(self, collection: str, shard: int,
                      epoch: int) -> None:
        """Commit-window timer target; detached (no ambient parent
        span).  A stale timer — the group it armed for flushed through
        a bound or an explicit call — sees a bumped epoch and no-ops."""
        with self._tracer.detached():
            group = self._groups.get((collection, shard))
            if group is not None and group.ops and group.epoch == epoch:
                self.flush_group(collection, shard, reason="window")

    def flush_group(self, collection: str, shard: int,
                    reason: str = "explicit") -> int:
        """Flush one commit group as a single coalesced WAL publish.

        Inner records get their LSNs here, at flush time (allocation and
        publish happen back to back with no event-loop yield, keeping
        the per-channel monotonicity contract); buffered deletes are
        existence-filtered against the mapping *plus* the inserts
        buffered ahead of them in the same group.  Ack futures resolve
        with the batch LSN only after the publish returned.  Returns the
        batch LSN (0 when the group was empty).
        """
        group = self._groups.get((collection, shard))
        if group is None or not group.ops:
            return 0
        ops = group.ops
        rows, nbytes = group.rows, group.nbytes
        age = (self._loop.now() - group.first_at) \
            if self._loop is not None else 0.0
        group.reset()
        mapping = self._mapping(collection, shard)
        records: list[WalRecord] = []
        # Flush-time overlay over the mapping: pk -> segment id, or None
        # once a buffered delete hit it.
        overlay: dict[str, Optional[str]] = {}
        acks: list[tuple[Optional[AckFuture], int]] = []
        index = 0
        while index < len(ops):
            op = ops[index]
            if op.kind == "insert":
                # Coalesce the run of consecutive inserts into as few
                # inner records as the segment allocator allows — one
                # merged record per assigned (segment, chunk), not one
                # per writer.  Downstream consumers then append whole
                # chunks instead of row-at-a-time.
                run = [op]
                while (index + 1 < len(ops)
                       and ops[index + 1].kind == "insert"):
                    index += 1
                    run.append(ops[index])
                pks, columns = _merge_insert_run(run)
                assigned = self._allocator.assign_segments(
                    collection, shard, len(pks))
                cursor = 0
                for segment_id, count in assigned:
                    if count == len(pks):
                        chunk_pks, chunk_columns = pks, columns
                    else:
                        chunk_pks = pks[cursor:cursor + count]
                        chunk_columns = {
                            name: values[cursor:cursor + count]
                            for name, values in columns.items()}
                    cursor += count
                    records.append(InsertRecord(
                        ts=self._tso.allocate_packed(),
                        collection=collection, shard=shard,
                        segment_id=segment_id, pks=chunk_pks,
                        columns=chunk_columns))
                    for pk in chunk_pks:
                        overlay[str(pk)] = segment_id
                for merged in run:
                    acks.append((merged.future, len(merged.pks)))
            else:
                existing = tuple(
                    pk for pk in op.pks
                    if (overlay[str(pk)] is not None
                        if str(pk) in overlay
                        else mapping.get(str(pk)) is not None))
                if existing:
                    records.append(DeleteRecord(
                        ts=self._tso.allocate_packed(),
                        collection=collection, shard=shard,
                        pks=existing))
                    for pk in existing:
                        overlay[str(pk)] = None
                acks.append((op.future, len(existing)))
            index += 1
        if records:
            logger = self.logger_for_shard(collection, shard)
            batch_ts = logger.publish_batch(collection, shard,
                                            tuple(records))
            puts = [(key, value) for key, value in overlay.items()
                    if value is not None]
            dels = [key for key, value in overlay.items()
                    if value is None]
            if puts:
                mapping.put_many(puts)
            if dels:
                mapping.delete_many(dels)
            self._flush_log.append(
                (reason, len(records), rows, nbytes, age))
            for future, count in acks:
                if future is not None:
                    future.set_result(batch_ts, count)
            return batch_ts
        # Zero-effect group: every buffered delete missed.  Nothing was
        # accepted, so there is nothing a crash after this ack could
        # lose (same contract as Logger.publish_delete's empty case).
        ts = self._tso.allocate_packed()
        for future, _count in acks:
            if future is not None:
                future.set_result(ts, 0)  # manu-lint: disable=durability-ack-before-durable -- zero-effect ack: empty flush publishes nothing
        return ts

    def flush_all_groups(self, reason: str = "explicit") -> None:
        """Flush every pending commit group (quiesce/shutdown path)."""
        for collection, shard in sorted(self._groups):
            self.flush_group(collection, shard, reason=reason)

    def pending_group_rows(self) -> int:
        """Rows buffered in commit groups, not yet durable (telemetry)."""
        return sum(group.rows for group in self._groups.values())

    def drain_flush_log(self) -> list[tuple[str, int, int, int, float]]:
        """Group-commit flush telemetry accumulated since the last
        drain: (reason, records, rows, bytes, window age ms) per flush.
        Consumed by the cluster's sampler, keeping this layer
        metrics-import-free."""
        log, self._flush_log = self._flush_log, []
        return log

    def lookup_segment(self, collection: str, pk) -> Optional[str]:
        """Segment currently holding ``pk`` (None when absent)."""
        shard = shard_of(pk, self.num_shards)
        value = self._mapping(collection, shard).get(str(pk))
        return value.decode() if value is not None else None

    def flush_mappings(self) -> None:
        """Flush all shard LSM memtables to SSTables (checkpointing)."""
        for mapping in self._mappings.values():
            mapping.flush()


def _merge_insert_run(run: list[_PendingOp]) -> tuple[tuple, dict]:
    """Concatenate a run of buffered insert ops into one (pks, columns).

    Zero-copy for a run of one (the op's own payload is returned); a
    longer run concatenates columns once, so the flush emits one merged
    inner record per segment chunk instead of one per writer.
    """
    if len(run) == 1:
        return run[0].pks, dict(run[0].columns)
    pks = tuple(pk for op in run for pk in op.pks)
    columns: dict = {}
    for name in run[0].columns:
        parts = [op.columns[name] for op in run]
        if isinstance(parts[0], np.ndarray):
            columns[name] = np.concatenate(parts)
        else:
            merged: list = []
            for part in parts:
                merged.extend(part)
            columns[name] = merged
    return pks, columns


def _take_rows(values, rows: list[int]):
    """Select a row subset from a column (numpy array or list)."""
    if isinstance(values, np.ndarray):
        return values[rows]
    return [values[r] for r in rows]
